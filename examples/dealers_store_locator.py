"""DEALERS walkthrough: web-scale store-name extraction, end to end.

Generates a slice of the synthetic DEALERS dataset (the paper's 330
dealer-locator websites), annotates every site with the shared business
dictionary, fits the ranking models on half the sites, and compares
NAIVE vs NTW on the other half — the Fig. 2(d) experiment in miniature,
with per-site detail and the learned xpath rules printed.

Run:  python examples/dealers_store_locator.py
"""

from repro.annotators.base import measure_noise
from repro.datasets import generate_dealers
from repro.evaluation import SingleTypeExperiment
from repro.evaluation.metrics import prf
from repro.framework.naive import NaiveWrapperLearner
from repro.framework.ntw import NoiseTolerantWrapper
from repro.wrappers import XPathInductor


def main() -> None:
    dataset = generate_dealers(n_sites=16, pages_per_site=8, seed=11)
    annotator = dataset.annotator()
    print(f"generated {len(dataset.sites)} dealer-locator sites")
    print(f"dictionary size: {len(dataset.dictionary)} business names")

    # Measure the annotator's empirical noise profile (paper: 0.95/0.24).
    precisions, recalls = [], []
    for generated in dataset.sites:
        labels = annotator.annotate(generated.site)
        precision, recall = measure_noise(
            labels, generated.gold["name"], generated.site.total_text_nodes()
        )
        if labels:
            precisions.append(precision)
        recalls.append(recall)
    print(
        f"annotator profile: precision~{sum(precisions) / len(precisions):.2f} "
        f"recall~{sum(recalls) / len(recalls):.2f}"
    )

    experiment = SingleTypeExperiment(
        dataset.sites, annotator, XPathInductor(), gold_type="name"
    )
    print(
        f"\nfitted models on {len(experiment.train)} training sites: "
        f"{experiment.models.annotation!r}"
    )

    naive_learner = NaiveWrapperLearner(XPathInductor())
    ntw_learner = NoiseTolerantWrapper(
        XPathInductor(), experiment.scorer_for("ntw")
    )
    print("\nper-site comparison on the held-out half:")
    for generated in experiment.test:
        labels = annotator.annotate(generated.site)
        gold = generated.gold["name"]
        naive_extracted = naive_learner.extract(generated.site, labels)
        ntw_result = ntw_learner.learn(generated.site, labels)
        naive_f1 = prf(naive_extracted, gold).f1
        ntw_f1 = prf(ntw_result.extracted, gold).f1
        rule = (
            ntw_result.best.wrapper.rule() if ntw_result.best else "(no wrapper)"
        )
        print(
            f"  {generated.name} [{generated.metadata['layout']:13s}] "
            f"naive f1={naive_f1:.2f}  ntw f1={ntw_f1:.2f}  rule: {rule}"
        )

    outcomes = experiment.run(methods=("naive", "ntw"))
    print("\naggregate (held-out half):")
    for method in ("naive", "ntw"):
        print(f"  {method:5s} {outcomes[method].overall}")


if __name__ == "__main__":
    main()
