"""Quickstart: learn a noise-tolerant wrapper for one small website.

Mirrors the paper's Section 1 narrative on the albanyindustries.com
dealer-locator example: a dictionary annotator produces noisy labels
(including a false positive), the naive inductor over-generalizes, and
the noise-tolerant framework recovers the correct rule.

Run:  python examples/quickstart.py
"""

from repro import (
    AnnotationModel,
    DictionaryAnnotator,
    NaiveWrapperLearner,
    NoiseTolerantWrapper,
    PublicationModel,
    Site,
    WrapperScorer,
    XPathInductor,
)

PAGES = [
    """
    <html><body>
    <div class="dealerlinks"><table>
      <tr><td><u>PORTER FURNITURE</u><br>201 HWY. 30 WEST<br>NEW ALBANY, MS 38652</td></tr>
      <tr><td><u>WOODLAND FURNITURE</u><br>123 MAIN ST.<br>WOODLAND, MS 39776</td></tr>
      <tr><td><u>SUMMIT INTERIORS</u><br>77 LAKE AVE.<br>TUPELO, MS 38801</td></tr>
    </table></div>
    <div class="promo"><p>BESTBUY</p></div>
    </body></html>
    """,
    """
    <html><body>
    <div class="dealerlinks"><table>
      <tr><td><u>HOUSE OF VALUES</u><br>2565 SO EL CAMINO REAL<br>SAN MATEO, CA 94403</td></tr>
      <tr><td><u>LULLABY LANE</u><br>532 SAN MATEO AVE.<br>SAN BRUNO, CA 94066</td></tr>
    </table></div>
    <div class="promo"><p>OFFICE DEPOT</p></div>
    </body></html>
    """,
]

# A small dictionary of popular business names.  It covers only some of
# the dealers (low recall) and also matches the promo boxes (noise).
DICTIONARY = [
    "PORTER FURNITURE",
    "HOUSE OF VALUES",
    "LULLABY LANE",
    "BESTBUY",
    "OFFICE DEPOT",
]


def main() -> None:
    site = Site.from_html("albany-industries", PAGES)
    labels = DictionaryAnnotator(DICTIONARY).annotate(site)
    print(f"dictionary annotator labeled {len(labels)} text nodes:")
    for node_id in sorted(labels):
        print(f"  page {node_id.page}: {site.text_node(node_id).text!r}")

    inductor = XPathInductor()

    naive = NaiveWrapperLearner(inductor)
    naive_wrapper = naive.learn(site, labels)
    print(f"\nNAIVE rule: {naive_wrapper.rule()}")
    print(f"NAIVE extracts {len(naive_wrapper.extract(site))} nodes (over-general!)")

    # The true dealer list on these pages: one name per row, three text
    # attributes per record.  We hand the models the paper's DEALERS
    # annotator profile and a prior fitted on the (tiny) gold list.
    gold = frozenset(
        node_id
        for name in (
            "PORTER FURNITURE",
            "WOODLAND FURNITURE",
            "SUMMIT INTERIORS",
            "HOUSE OF VALUES",
            "LULLABY LANE",
        )
        for node_id in site.find_text_nodes(name)
        if site.text_node(node_id).parent.tag == "u"
    )
    scorer = WrapperScorer(
        AnnotationModel.from_rates(p=0.95, r=0.6),
        PublicationModel.fit([(site, gold)]),
    )
    ntw = NoiseTolerantWrapper(inductor, scorer)
    result = ntw.learn(site, labels)
    print(f"\nNTW considered {len(result.ranked)} candidate wrappers")
    print(f"NTW rule:  {result.best.wrapper.rule()}")
    extracted = result.extracted
    print(f"NTW extracts {len(extracted)} nodes:")
    for node_id in sorted(extracted):
        print(f"  page {node_id.page}: {site.text_node(node_id).text!r}")
    assert extracted == gold, "NTW should recover exactly the dealer names"
    print("\nNTW recovered the exact dealer-name list despite the noise.")


if __name__ == "__main__":
    main()
