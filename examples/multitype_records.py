"""Multi-type record extraction: (store name, zipcode) pairs.

Reproduces the Appendix A experiment in miniature: a business-name
dictionary annotates names, a regular expression annotates zipcodes
(both noisy), and records are assembled from the interleaved per-type
extractions.  The naive inductor learns an over-general rule for at
least one type and fails to assemble any records, while the
noise-tolerant framework ranks per-type wrapper combinations jointly —
typed tokens inside the segment alignment enforce that names and
zipcodes interleave consistently — and recovers clean records.

Run:  python examples/multitype_records.py
"""

from repro.annotators.regex import zipcode_annotator
from repro.datasets import generate_dealers
from repro.evaluation.runner import split_sites
from repro.framework import MultiTypeNTW, NaiveMultiType
from repro.ranking.annotation import AnnotationModel
from repro.ranking.publication import PublicationModel
from repro.wrappers import XPathInductor


def fit_joint_models(train, name_annotator, zip_annotator):
    triples = {"name": [], "zipcode": []}
    pairs, type_maps = [], []
    for generated in train:
        total = generated.site.total_text_nodes()
        triples["name"].append(
            (name_annotator.annotate(generated.site), generated.gold["name"], total)
        )
        triples["zipcode"].append(
            (zip_annotator.annotate(generated.site), generated.gold["zipcode"], total)
        )
        type_map = {n: "name" for n in generated.gold["name"]} | {
            z: "zipcode" for z in generated.gold["zipcode"]
        }
        pairs.append((generated.site, frozenset(type_map)))
        type_maps.append(type_map)
    annotation = {t: AnnotationModel.estimate(ts) for t, ts in triples.items()}
    publication = PublicationModel.fit(
        pairs, type_maps=type_maps, boundary_type="name"
    )
    return annotation, publication


def main() -> None:
    dataset = generate_dealers(
        n_sites=10, pages_per_site=6, seed=11, separate_zip=True
    )
    name_annotator = dataset.annotator()
    zip_annotator = zipcode_annotator()
    train, test = split_sites(dataset.sites)
    annotation, publication = fit_joint_models(train, name_annotator, zip_annotator)
    print(f"name annotator model:    {annotation['name']!r}")
    print(f"zipcode annotator model: {annotation['zipcode']!r}")

    inductor = XPathInductor()
    for generated in test:
        labels = {
            "name": name_annotator.annotate(generated.site),
            "zipcode": zip_annotator.annotate(generated.site),
        }
        naive = NaiveMultiType(inductor, primary="name").learn(
            generated.site, labels
        )
        naive_records = naive.extract_records(generated.site) if naive else []
        result = MultiTypeNTW(
            inductor, annotation, publication, primary="name"
        ).learn(generated.site, labels)
        print(
            f"\n{generated.name}: naive assembled {len(naive_records)} records, "
            f"ntw assembled {len(result.records)} records"
        )
        for record in result.records[:3]:
            name_node = record.get("name")
            zip_node = record.get("zipcode")
            name = generated.site.text_node(name_node).text if name_node else "?"
            zipcode = generated.site.text_node(zip_node).text if zip_node else "-"
            print(f"    ({name!r}, {zipcode!r})")
        if result.best is not None:
            print(f"    rule: {result.best.rule()}")


if __name__ == "__main__":
    main()
