"""Extraction-as-a-service round trip: daemon, tenants, restart-resume.

Drives the full service stack the way an operator would, as a real OS
process (the in-process paths are covered by tests/test_service_server.py):

1. start ``repro serve`` as a subprocess, armed with the DEALERS
   dataset's annotator and a registry directory;
2. run two concurrent tenants — each applies every site of the fleet,
   the first apply per fingerprint triggering learn-on-miss (stored
   exactly once however the tenants race);
3. kill the daemon, restart it on the same registry directory with
   learning *disabled* — and show every site still served, straight
   from the file store.

Run:  PYTHONPATH=src python examples/service_roundtrip.py
"""

import re
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

from repro.api import load_dataset
from repro.service import ServiceClient

SITES, PAGES = 8, 5
DATASET_ARGS = [
    "--dataset", "dealers", "--sites", str(SITES), "--pages", str(PAGES),
]


def start_daemon(registry: Path, armed: bool) -> tuple[subprocess.Popen, tuple]:
    command = [
        sys.executable, "-m", "repro", "serve",
        "--registry", str(registry), "--workers", "2",
    ]
    if armed:
        command += DATASET_ARGS
    daemon = subprocess.Popen(
        command, stdout=subprocess.PIPE, text=True
    )
    banner = daemon.stdout.readline().strip()
    match = re.match(r"serving on (.+):(\d+)", banner)
    if match is None:
        daemon.terminate()
        raise RuntimeError(f"daemon failed to start: {banner!r}")
    print(f"  {banner}")
    print(f"  {daemon.stdout.readline().strip()}")
    return daemon, (match.group(1), int(match.group(2)))


def stop_daemon(daemon: subprocess.Popen) -> None:
    """SIGTERM runs the daemon's clean shutdown; SIGKILL is the backstop."""
    daemon.terminate()
    try:
        daemon.wait(timeout=30)
    except subprocess.TimeoutExpired:
        daemon.kill()
        daemon.wait(timeout=10)


def main() -> int:
    bundle = load_dataset("dealers", sites=SITES, pages=PAGES, seed=11)
    fleet = [
        (g.name, [page.source for page in g.site.pages]) for g in bundle.sites
    ]
    registry = Path(tempfile.mkdtemp(prefix="repro-registry-")) / "store"

    print(f"== daemon up (armed), registry at {registry}")
    daemon, address = start_daemon(registry, armed=True)
    results: dict[str, dict] = {}
    failures: list[Exception] = []

    def tenant(name: str) -> None:
        try:
            with ServiceClient(address, timeout=120) as client:
                for site, pages in fleet:
                    response = client.apply(site, pages)
                    assert response["ok"], response
                    results[f"{name}:{site}"] = response
        except Exception as error:  # pragma: no cover - surfaced below
            failures.append(error)

    try:
        print(f"== two tenants extract the {len(fleet)}-site fleet")
        threads = [
            threading.Thread(target=tenant, args=(f"tenant-{i}",))
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not failures, failures
        assert len(results) == 2 * len(fleet)
        learned = sum(
            1 for r in results.values() if r["source"] == "learned"
        )
        print(f"   {len(results)} applies ok; {learned} learn-on-miss")
        # Exactly one stored version per site however the tenants raced.
        stored = sorted(path.stem for path in registry.glob("*.json"))
        assert len(stored) == len(fleet), (stored, len(fleet))
    finally:
        stop_daemon(daemon)

    print("== daemon killed; restart on the same registry, learning OFF")
    daemon, address = start_daemon(registry, armed=False)
    try:
        with ServiceClient(address, timeout=120) as client:
            for site, pages in fleet:
                response = client.apply(site, pages)
                assert response["ok"] and response["source"] == "fingerprint"
                reference = results[f"tenant-0:{site}"]
                assert response["nodes"] == reference["nodes"]
            stats = client.stats()
        assert stats["server"]["can_learn"] is False
        print(
            f"   fleet served from the store without relearning "
            f"({stats['registry']['fingerprints']} wrappers)"
        )
    finally:
        stop_daemon(daemon)
    print("== service round trip OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
