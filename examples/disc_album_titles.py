"""DISC walkthrough: track lists and single-entity album titles.

Exercises two of the paper's tasks on the synthetic discography sites:

1. single-type track extraction with the 11-seed-album dictionary
   (Fig. 2f) — the annotator misses decorated titles and fires inside
   review quotes, NTW recovers the exact track list rule;
2. single-entity album-title extraction (Appendix B.2) — enumerate,
   discard multi-match wrappers, keep the label-coverage maximisers;
   sites typically return several co-ranked correct wrappers.

Run:  python examples/disc_album_titles.py
"""

from repro.datasets import generate_disc
from repro.evaluation import SingleTypeExperiment
from repro.framework import SingleEntityLearner
from repro.wrappers import XPathInductor


def main() -> None:
    dataset = generate_disc(n_sites=8, seed=23)
    print(
        f"generated {len(dataset.sites)} discography sites; "
        f"seed dictionary: {len(dataset.track_dictionary())} tracks "
        f"from {len(dataset.seed_albums)} albums"
    )

    # -- task 1: track extraction ------------------------------------------
    experiment = SingleTypeExperiment(
        dataset.sites, dataset.annotator(), XPathInductor(), gold_type="track"
    )
    outcomes = experiment.run(methods=("naive", "ntw"))
    print("\ntrack extraction (held-out half):")
    for method in ("naive", "ntw"):
        print(f"  {method:5s} {outcomes[method].overall}")

    # -- task 2: single-entity album titles --------------------------------
    print("\nalbum-title extraction (single entity per page):")
    learner = SingleEntityLearner(XPathInductor())
    title_annotator = dataset.title_annotator()
    for generated in dataset.sites:
        labels = title_annotator.annotate(generated.site)
        if not labels:
            print(f"  {generated.name}: no seed albums annotated, skipped")
            continue
        result = learner.learn(generated.site, labels)
        extracted = result.extracted(generated.site)
        correct = any(
            extracted == variant
            for variant in generated.gold_variants["album_title"]
        )
        rules = "; ".join(w.rule() for w in result.winners[:3])
        print(
            f"  {generated.name}: correct={correct} "
            f"co-ranked wrappers={len(result.winners)}"
        )
        print(f"    e.g. {rules}")


if __name__ == "__main__":
    main()
