"""Enumeration walkthrough: the paper's Examples 1-3 step by step.

Builds the 5x4 table of Example 1, places the five labels (two of them
wrong), and enumerates the wrapper space three ways — exhaustively,
with the blackbox BottomUp algorithm (Algorithm 1), and with the
feature-based TopDown algorithm (Algorithm 2) — showing the 8 unique
wrappers of Equation (2) and the call counts of Theorems 2 and 3.

Run:  python examples/enumeration_walkthrough.py
"""

from repro.enumeration import (
    enumerate_bottom_up,
    enumerate_naive,
    enumerate_top_down,
)
from repro.wrappers import Grid, TableInductor


def main() -> None:
    grid = Grid(5, 4)
    inductor = TableInductor()
    # Example 1: rows are business listings, column 0 holds the names.
    # Labels: n1, n2, n4 (correct), a4 and z5 (wrong).
    labels = frozenset(
        {
            grid.cell(0, 0),  # n1
            grid.cell(1, 0),  # n2
            grid.cell(3, 0),  # n4
            grid.cell(3, 1),  # a4  <- incorrect
            grid.cell(4, 2),  # z5  <- incorrect
        }
    )
    print(f"labels: {len(labels)} (two of them incorrect)")
    print(f"naive enumeration would need 2^{len(labels)} - 1 = "
          f"{2 ** len(labels) - 1} inductor calls\n")

    for name, enumerate_fn in (
        ("Naive   ", enumerate_naive),
        ("BottomUp", enumerate_bottom_up),
        ("TopDown ", enumerate_top_down),
    ):
        result = enumerate_fn(inductor, grid, labels)
        rules = sorted(w.rule() for w in result.wrappers)
        print(
            f"{name}: {result.size} unique wrappers, "
            f"{result.inductor_calls} inductor calls"
        )
        print(f"          {rules}")

    print(
        "\nAll three agree on the 8 wrappers of Equation (2): the five"
        "\nsingleton cells, the first column (the correct rule), the"
        "\nfourth row, and the whole table."
    )

    # Example 3: TABLE as a feature-based inductor.
    shared = inductor.shared_features(
        grid, frozenset({grid.cell(0, 0), grid.cell(1, 0), grid.cell(3, 0)})
    )
    print(f"\nExample 3: features shared by {{n1, n2, n4}}: {shared}")
    print("-> generalizes to the entire first column, as in the paper.")


if __name__ == "__main__":
    main()
