"""Web-scale extraction: compile a business database from many sites.

The paper's motivating application (Sec. 1): "extract business listings
from all the store locator pages on the Web... Compiling such a
database can be immensely useful".  This example runs the pipeline the
way a production deployment would, via the :mod:`repro.api` facade:

1. **learn phase** — one wrapper per site per field (name, zipcode),
   learned from noisy automatic annotations and saved to disk as JSON
   :class:`~repro.api.WrapperArtifact` files;
2. **apply phase** — the artifacts are loaded back and re-applied with
   *no relearning* (on a real crawl this is the step that runs over
   millions of pages), records are assembled, and the combined
   (site, name, zipcode) database is emitted as CSV with per-site audit
   numbers against the generator's gold labels.

Run:  python examples/build_business_database.py [output.csv] [wrapper_dir]
"""

import csv
import io
import sys
from pathlib import Path

from repro.annotators.regex import zipcode_annotator
from repro.api import Extractor, ExtractorConfig, WrapperArtifact
from repro.datasets import generate_dealers
from repro.evaluation.metrics import prf
from repro.evaluation.runner import split_sites
from repro.framework.multitype import assemble_records


def learn_and_save(train, test, annotators, gold_type_of, wrapper_dir: Path) -> None:
    """Learn one artifact per (site, field) and save them all as JSON."""
    print("learn phase: one wrapper per site per field, saved to disk")
    for field, annotator in annotators.items():
        extractor = Extractor(ExtractorConfig(inductor="xpath", method="ntw"))
        extractor.fit(train, annotator, gold_type_of[field])
        result = extractor.learn_many(test, annotator=annotator)
        for outcome in result.failures:
            print(f"  {outcome.site}/{field}: FAILED ({outcome.error})")
        for outcome in result.successes:
            outcome.artifact.save(wrapper_dir / f"{outcome.site}--{field}.json")
        print(f"  {field}: {result.summary()}")


def apply_and_emit(test, gold_type_of, wrapper_dir: Path) -> tuple[str, int]:
    """Load saved artifacts, re-extract (no relearning), build the CSV."""
    print("apply phase: reloading artifacts, extracting records:")
    # One artifact per (site, field): key by filename stem, not site name.
    artifacts = {
        path.stem: WrapperArtifact.load(path)
        for path in sorted(wrapper_dir.glob("*.json"))
    }
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["site", "business_name", "zipcode"])
    total_rows = 0
    for generated in test:
        extractions = {}
        for field in gold_type_of:
            artifact = artifacts.get(f"{generated.name}--{field}")
            if artifact is not None:
                extractions[field] = artifact.apply(generated.site)
        if "name" not in extractions:
            continue
        records = (
            assemble_records(extractions, primary="name", site=generated.site)
            or []
        )
        names = frozenset(
            record.get("name") for record in records if record.get("name")
        )
        audit = prf(names, generated.gold["name"])
        for record in records:
            name_node = record.get("name")
            zip_node = record.get("zipcode")
            writer.writerow(
                [
                    generated.name,
                    generated.site.text_node(name_node).text if name_node else "",
                    generated.site.text_node(zip_node).text if zip_node else "",
                ]
            )
        total_rows += len(records)
        print(
            f"  {generated.name}: {len(records):3d} records "
            f"(name audit vs gold: P={audit.precision:.2f} R={audit.recall:.2f})"
        )
    return buffer.getvalue(), total_rows


def main() -> None:
    # separate_zip renders zipcodes as their own text nodes, enabling
    # multi-field (name, zipcode) records.
    dataset = generate_dealers(
        n_sites=14, pages_per_site=6, seed=11, separate_zip=True
    )
    annotators = {"name": dataset.annotator(), "zipcode": zipcode_annotator()}
    gold_type_of = {"name": "name", "zipcode": "zipcode"}
    train, test = split_sites(dataset.sites)

    wrapper_dir = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("business_wrappers")
    wrapper_dir.mkdir(parents=True, exist_ok=True)
    learn_and_save(train, test, annotators, gold_type_of, wrapper_dir)
    output, total_rows = apply_and_emit(test, gold_type_of, wrapper_dir)

    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"\nwrote {total_rows} records to {sys.argv[1]}")
    else:
        preview = output.splitlines()
        print(f"\nbuilt a database of {total_rows} records; first rows:")
        for line in preview[:8]:
            print(f"  {line}")
    print(f"wrappers persisted in {wrapper_dir}/ — rerun apply without relearning")


if __name__ == "__main__":
    main()
