"""Web-scale extraction: compile a business database from many sites.

The paper's motivating application (Sec. 1): "extract business listings
from all the store locator pages on the Web... Compiling such a
database can be immensely useful".  This example runs the full
unsupervised pipeline over a fleet of generated dealer-locator sites —
one wrapper learned per site, no per-site human labels — and emits the
combined (site, name, zipcode) database as CSV, with per-site audit
numbers against the generator's gold labels.

Run:  python examples/build_business_database.py [output.csv]
"""

import csv
import io
import sys

from repro.annotators.regex import zipcode_annotator
from repro.datasets import generate_dealers
from repro.evaluation.metrics import prf
from repro.evaluation.runner import split_sites
from repro.framework import MultiTypeNTW
from repro.ranking.annotation import AnnotationModel
from repro.ranking.publication import PublicationModel
from repro.wrappers import XPathInductor


def fit_models(train, name_annotator, zip_annotator):
    triples = {"name": [], "zipcode": []}
    pairs, type_maps = [], []
    for generated in train:
        total = generated.site.total_text_nodes()
        triples["name"].append(
            (name_annotator.annotate(generated.site), generated.gold["name"], total)
        )
        triples["zipcode"].append(
            (zip_annotator.annotate(generated.site), generated.gold["zipcode"], total)
        )
        type_map = {n: "name" for n in generated.gold["name"]} | {
            z: "zipcode" for z in generated.gold["zipcode"]
        }
        pairs.append((generated.site, frozenset(type_map)))
        type_maps.append(type_map)
    annotation = {t: AnnotationModel.estimate(ts) for t, ts in triples.items()}
    publication = PublicationModel.fit(
        pairs, type_maps=type_maps, boundary_type="name"
    )
    return annotation, publication


def main() -> None:
    dataset = generate_dealers(
        n_sites=14, pages_per_site=6, seed=11, separate_zip=True
    )
    name_annotator = dataset.annotator()
    zip_annotator = zipcode_annotator()
    train, test = split_sites(dataset.sites)
    annotation, publication = fit_models(train, name_annotator, zip_annotator)
    learner = MultiTypeNTW(
        XPathInductor(), annotation, publication, primary="name"
    )

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["site", "business_name", "zipcode"])
    total_rows = 0
    print("learning one wrapper per site, extracting records:")
    for generated in test:
        labels = {
            "name": name_annotator.annotate(generated.site),
            "zipcode": zip_annotator.annotate(generated.site),
        }
        result = learner.learn(generated.site, labels)
        names = frozenset(
            record.get("name")
            for record in result.records
            if record.get("name") is not None
        )
        audit = prf(names, generated.gold["name"])
        for record in result.records:
            name_node = record.get("name")
            zip_node = record.get("zipcode")
            writer.writerow(
                [
                    generated.name,
                    generated.site.text_node(name_node).text if name_node else "",
                    generated.site.text_node(zip_node).text if zip_node else "",
                ]
            )
        total_rows += len(result.records)
        print(
            f"  {generated.name}: {len(result.records):3d} records "
            f"(name audit vs gold: P={audit.precision:.2f} R={audit.recall:.2f})"
        )

    output = buffer.getvalue()
    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"\nwrote {total_rows} records to {sys.argv[1]}")
    else:
        preview = output.splitlines()
        print(f"\nbuilt a database of {total_rows} records; first rows:")
        for line in preview[:8]:
            print(f"  {line}")


if __name__ == "__main__":
    main()
