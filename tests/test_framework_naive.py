"""Tests for the NAIVE baseline learner."""

import pytest

from repro.framework.naive import NaiveWrapperLearner
from repro.site import Site
from repro.wrappers.lr import LRInductor
from repro.wrappers.xpath_inductor import XPathInductor


@pytest.fixture()
def site():
    return Site.from_html(
        "naive",
        [
            "<table><tr><td><u>N1</u></td><td>A1</td></tr>"
            "<tr><td><u>N2</u></td><td>A2</td></tr></table>"
        ],
    )


class TestNaiveLearner:
    def test_learn_returns_inductor_wrapper(self, site):
        labels = frozenset(site.find_text_nodes("N1"))
        learner = NaiveWrapperLearner(XPathInductor())
        wrapper = learner.learn(site, labels)
        assert wrapper == XPathInductor().induce(site, labels)

    def test_learn_empty_labels_returns_none(self, site):
        assert NaiveWrapperLearner(XPathInductor()).learn(site, frozenset()) is None

    def test_extract_empty_labels_returns_empty(self, site):
        assert (
            NaiveWrapperLearner(LRInductor()).extract(site, frozenset())
            == frozenset()
        )

    def test_extract_covers_labels(self, site):
        labels = frozenset(
            site.find_text_nodes("N1") + site.find_text_nodes("A2")
        )
        extracted = NaiveWrapperLearner(XPathInductor()).extract(site, labels)
        assert labels <= extracted

    def test_single_bad_label_floods_extraction(self, site):
        clean = frozenset(
            site.find_text_nodes("N1") + site.find_text_nodes("N2")
        )
        noisy = clean | frozenset(site.find_text_nodes("A1"))
        learner = NaiveWrapperLearner(XPathInductor())
        assert len(learner.extract(site, noisy)) > len(learner.extract(site, clean))
