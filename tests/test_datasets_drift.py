"""Template-drift mutations: text preservation, gold remap, scenarios.

The drift generator simulates site redesigns without touching character
data, so gold labels carry over exactly — which is what makes the
detect/repair scenarios in this file checkable against ground truth:
for every (wrapper family x severity) cell, either the mutation broke
the wrapper (then the detector must fire and the repair cascade must
restore seed-equivalent extraction quality) or it did not (then the
detector must stay quiet).
"""

import pytest

from repro.api import Extractor, ExtractorConfig
from repro.datasets.sitegen import (
    DRIFT_SEVERITIES,
    DriftConfig,
    DriftError,
    drift_html,
    drift_site,
)
from repro.evaluation.metrics import prf
from repro.htmldom.dom import TextNode
from repro.lifecycle import DriftDetector, RepairPolicy


@pytest.fixture(scope="module")
def fleet(small_dealers):
    """(train, test) halves of the shared small DEALERS dataset."""
    sites = small_dealers.sites
    return sites[::2], sites[1::2]


def _texts(site):
    return [
        node.text
        for page in site.pages
        for node in page.nodes
        if isinstance(node, TextNode)
    ]


class TestMutations:
    def test_mutations_preserve_text_nodes(self, small_dealers):
        generated = small_dealers.sites[0]
        for severity in DRIFT_SEVERITIES:
            drifted = drift_site(generated, severity=severity, seed=3)
            assert _texts(drifted.site) == _texts(generated.site)

    def test_mutations_are_deterministic(self, small_dealers):
        sources = [p.source for p in small_dealers.sites[0].site.pages]
        assert drift_html(sources, severity="medium", seed=5) == drift_html(
            sources, severity="medium", seed=5
        )
        assert drift_html(sources, severity="medium", seed=5) != drift_html(
            sources, severity="medium", seed=6
        )

    def test_severities_mutate_increasingly(self, small_dealers):
        source = small_dealers.sites[0].site.pages[0].source
        low, medium, high = (
            drift_html([source], severity=severity, seed=1)[0]
            for severity in DRIFT_SEVERITIES
        )
        assert low != source  # attribute churn happened
        assert 'class="v2-' not in low  # no renames at low severity
        assert 'class="v2-' in medium  # renames kick in at medium
        assert "skin-l0" not in medium
        assert "skin-l0" in high and "skin-l1" in high  # body wrappers

    def test_renames_are_site_consistent(self, small_dealers):
        generated = small_dealers.sites[0]
        sources = [p.source for p in generated.site.pages]
        mutated = drift_html(
            sources, seed=1, config=DriftConfig(class_rename_rate=1.0)
        )
        # Every original class value is gone from every page.
        import re

        originals = {
            m.group(1)
            for src in sources
            for m in re.finditer(r'class="([^"]*)"', src)
        }
        for new_source in mutated:
            for value in originals:
                assert f'class="{value}"' not in new_source

    def test_gold_remaps_to_same_text(self, small_dealers):
        generated = small_dealers.sites[1]
        drifted = drift_site(generated, severity="high", seed=2)
        for type_name, labels in generated.gold.items():
            remapped = drifted.gold[type_name]
            assert len(remapped) == len(labels)
            old_texts = sorted(
                generated.site.text_node(n).text for n in labels
            )
            new_texts = sorted(drifted.site.text_node(n).text for n in remapped)
            assert old_texts == new_texts

    def test_drift_metadata_and_identity(self, small_dealers):
        generated = small_dealers.sites[0]
        drifted = drift_site(generated, severity="low", seed=9)
        assert drifted.name == generated.name  # same site, later in time
        assert drifted.metadata["drift"] == {"severity": "low", "seed": 9}
        assert generated.metadata.get("drift") is None  # original untouched

    def test_unknown_severity_rejected(self, small_dealers):
        with pytest.raises(ValueError, match="unknown drift severity"):
            drift_site(small_dealers.sites[0], severity="catastrophic")

    def test_sourceless_site_rejected(self):
        from repro.datasets.sitegen import GeneratedSite, SiteSpec
        from repro.htmldom.dom import Document, ElementNode, TextNode as TN
        from repro.site import Site

        root = ElementNode("html")
        root.append(TN("hello"))
        site = Site("built", [Document(root, "", page_index=0)])
        generated = GeneratedSite(
            spec=SiteSpec(name="built", domain="t", seed=0), site=site, gold={}
        )
        with pytest.raises(DriftError, match="without HTML sources"):
            drift_site(generated)


class TestDriftScenarios:
    """severity x wrapper-family matrix: detect fires iff the wrapper
    broke, and the repair cascade restores seed-equivalent extraction."""

    FAMILIES = ("xpath", "lr", "hlrt")

    @pytest.fixture(scope="class")
    def extractors(self, small_dealers, fleet):
        train, _ = fleet
        annotator = small_dealers.annotator()
        return {
            family: Extractor(
                ExtractorConfig(inductor=family, method="ntw")
            ).fit(train, annotator, "name")
            for family in self.FAMILIES
        }

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("severity", DRIFT_SEVERITIES)
    def test_detect_and_repair_restore_seed_quality(
        self, small_dealers, fleet, extractors, family, severity
    ):
        annotator = small_dealers.annotator()
        extractor = extractors[family]
        checked = broke = 0
        for generated in fleet[1][:2]:
            labels = annotator.annotate(generated.site)
            artifact = extractor.learn(
                generated.site, labels, site_name=generated.name
            )
            gold = generated.gold["name"]
            pre = prf(artifact.apply(generated.site), gold)
            drifted = drift_site(generated, severity=severity, seed=1)
            extracted = artifact.apply(drifted.site)
            post = prf(extracted, drifted.gold["name"])
            verdict = DriftDetector(artifact.baseline).observe_site(
                drifted.site, extracted, annotator=annotator
            )
            checked += 1
            if post.f1 >= pre.f1:
                # The mutation did not break this wrapper: a repair
                # would be wrong, so the detector must stay quiet.
                assert not verdict.drifted, (family, severity, verdict.reasons)
                continue
            broke += 1
            assert verdict.drifted, (family, severity, pre.f1, post.f1)
            report = RepairPolicy(
                annotator=annotator, extractor=extractor
            ).repair(artifact, drifted.site, drift=verdict)
            assert report.ok, (family, severity, report.error)
            assert report.strategy in ("alternate", "relearn")
            fixed = prf(
                report.artifact.apply(drifted.site), drifted.gold["name"]
            )
            # Seed-equivalent: repaired quality matches the pre-drift
            # wrapper (tiny epsilon for relearn tie-breaks).
            assert fixed.f1 >= pre.f1 - 1e-9, (
                family,
                severity,
                report.strategy,
                pre.f1,
                fixed.f1,
            )
            # The repaired artifact carries a refreshed baseline: a
            # detector seeded from it sees the repaired stream healthy.
            assert not DriftDetector(report.artifact.baseline).observe_site(
                drifted.site,
                report.artifact.apply(drifted.site),
                annotator=annotator,
            ).drifted
        assert checked == 2
        if severity in ("medium", "high"):
            # The heavier severities must actually break these families
            # (otherwise this matrix tests nothing).
            assert broke > 0, (family, severity)
