"""Tests for the HTML tokenizer, including span bookkeeping."""

from hypothesis import given
from hypothesis import strategies as st

from repro.htmldom.tokenizer import Token, TokenKind, tokenize


def kinds(tokens: list[Token]) -> list[TokenKind]:
    return [t.kind for t in tokens]


class TestBasicTokens:
    def test_simple_element(self):
        tokens = tokenize("<b>hi</b>")
        assert kinds(tokens) == [
            TokenKind.START_TAG,
            TokenKind.TEXT,
            TokenKind.END_TAG,
        ]
        assert tokens[0].name == "b"
        assert tokens[1].data == "hi"
        assert tokens[2].name == "b"

    def test_tag_names_are_lowercased(self):
        tokens = tokenize("<DIV></DIV>")
        assert tokens[0].name == "div"
        assert tokens[1].name == "div"

    def test_text_spans_are_exact(self):
        source = "<td>PORTER FURNITURE</td>"
        tokens = tokenize(source)
        text = tokens[1]
        assert source[text.start : text.end] == "PORTER FURNITURE"

    def test_all_spans_tile_the_input(self):
        source = '<div class="a">x<br>y</div><!--c--><p>z</p>'
        tokens = tokenize(source)
        position = 0
        for token in tokens:
            assert token.start == position
            position = token.end
        assert position == len(source)

    def test_text_entities_decoded(self):
        tokens = tokenize("<p>Smith &amp; Sons</p>")
        assert tokens[1].data == "Smith & Sons"

    def test_out_of_range_numeric_reference_is_replacement_char(self):
        tokens = tokenize("<p>x&#x110000;y</p>")
        assert tokens[1].data == "x�y"

    def test_surrogate_numeric_reference_is_replacement_char(self):
        tokens = tokenize("<p>x&#xD800;y&#xDFFF;z</p>")
        assert tokens[1].data == "x�y�z"
        tokens[1].data.encode("utf-8")  # no lone surrogates survive

    def test_null_numeric_reference_is_replacement_char(self):
        tokens = tokenize("<p>a&#0;b</p>")
        assert tokens[1].data == "a�b"

    def test_huge_decimal_reference_is_replacement_char(self):
        tokens = tokenize("<p>a&#99999999;b</p>")
        assert tokens[1].data == "a�b"

    def test_attribute_value_bad_reference_is_replacement_char(self):
        tokens = tokenize('<a title="x&#xDABC;y">')
        assert tokens[0].attrs == {"title": "x�y"}

    def test_comment(self):
        tokens = tokenize("<!-- hello -->")
        assert kinds(tokens) == [TokenKind.COMMENT]
        assert tokens[0].data == " hello "

    def test_unterminated_comment_runs_to_eof(self):
        tokens = tokenize("<!-- oops")
        assert kinds(tokens) == [TokenKind.COMMENT]
        assert tokens[0].end == len("<!-- oops")

    def test_doctype(self):
        tokens = tokenize("<!DOCTYPE html><p>x</p>")
        assert tokens[0].kind is TokenKind.DOCTYPE

    def test_self_closing_tag(self):
        tokens = tokenize("<br/>")
        assert tokens[0].kind is TokenKind.START_TAG
        assert tokens[0].self_closing


class TestAttributes:
    def test_double_quoted(self):
        tokens = tokenize('<div class="dealer links">')
        assert tokens[0].attrs == {"class": "dealer links"}

    def test_single_quoted(self):
        tokens = tokenize("<div class='dealerlinks'>")
        assert tokens[0].attrs == {"class": "dealerlinks"}

    def test_unquoted(self):
        tokens = tokenize("<td colspan=2>")
        assert tokens[0].attrs == {"colspan": "2"}

    def test_bare_attribute(self):
        tokens = tokenize("<input disabled>")
        assert tokens[0].attrs == {"disabled": ""}

    def test_multiple_attributes(self):
        tokens = tokenize('<a href="#" class="x" id="y">')
        assert tokens[0].attrs == {"href": "#", "class": "x", "id": "y"}

    def test_attribute_names_lowercased(self):
        tokens = tokenize('<div CLASS="x">')
        assert tokens[0].attrs == {"class": "x"}

    def test_first_attribute_occurrence_wins(self):
        tokens = tokenize('<div class="a" class="b">')
        assert tokens[0].attrs == {"class": "a"}

    def test_attribute_value_entities_decoded(self):
        tokens = tokenize('<a title="a&amp;b">')
        assert tokens[0].attrs == {"title": "a&b"}

    def test_whitespace_around_equals(self):
        tokens = tokenize('<div class = "x">')
        assert tokens[0].attrs == {"class": "x"}


class TestLenientParsing:
    def test_bare_less_than_is_text(self):
        tokens = tokenize("1 < 2")
        assert kinds(tokens) == [TokenKind.TEXT]
        assert tokens[0].data == "1 < 2"

    def test_less_than_digit_is_text(self):
        tokens = tokenize("<5 items>")
        assert tokens[0].kind is TokenKind.TEXT

    def test_stray_end_tag_is_tokenized(self):
        tokens = tokenize("</none>")
        assert kinds(tokens) == [TokenKind.END_TAG]

    def test_empty_input(self):
        assert tokenize("") == []

    def test_unclosed_tag_at_eof(self):
        tokens = tokenize("<div class='x'")
        assert tokens[0].kind is TokenKind.START_TAG
        assert tokens[0].attrs == {"class": "x"}

    def test_script_content_is_raw(self):
        tokens = tokenize("<script>if (a < b) { x(); }</script>")
        assert kinds(tokens) == [
            TokenKind.START_TAG,
            TokenKind.TEXT,
            TokenKind.END_TAG,
        ]
        assert tokens[1].data == "if (a < b) { x(); }"

    def test_style_content_is_raw(self):
        tokens = tokenize("<style>a > b {}</style>")
        assert tokens[1].data == "a > b {}"

    def test_unclosed_script_runs_to_eof(self):
        tokens = tokenize("<script>var x = 1;")
        assert tokens[1].data == "var x = 1;"


class TestTokenizeProperties:
    @given(st.text(max_size=300))
    def test_total_on_arbitrary_input(self, text):
        tokens = tokenize(text)
        for token in tokens:
            assert 0 <= token.start <= token.end <= len(text)

    @given(st.text(max_size=300))
    def test_spans_are_monotonic(self, text):
        tokens = tokenize(text)
        for first, second in zip(tokens, tokens[1:]):
            assert first.end <= second.start

    @given(
        st.lists(
            st.sampled_from(["<b>", "</b>", "text", "<td a='1'>", "&amp;", "<"]),
            max_size=30,
        )
    )
    def test_markup_soup_never_crashes(self, parts):
        tokenize("".join(parts))
