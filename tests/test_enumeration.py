"""Tests for the enumeration algorithms (paper Sec. 4, Theorems 1-3).

The key property: Naive, BottomUp and TopDown produce identical wrapper
spaces; TopDown makes exactly k inductor calls; BottomUp makes at most
k * |L|.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration import (
    enumerate_bottom_up,
    enumerate_naive,
    enumerate_top_down,
)
from repro.enumeration.naive import MAX_NAIVE_LABELS, naive_call_count
from repro.site import Site
from repro.wrappers.lr import LRInductor
from repro.wrappers.table import Grid, TableInductor
from repro.wrappers.xpath_inductor import XPathInductor

GRID = Grid(5, 4)

_SITE = Site.from_html(
    "enum",
    [
        "<div><table>"
        "<tr><td><u>N1</u></td><td>S1</td></tr>"
        "<tr><td><u>N2</u></td><td>S2</td></tr>"
        "</table><p>promo</p></div>",
        "<div><table><tr><td><u>N3</u></td><td>S3</td></tr></table><p>ad</p></div>",
    ],
)
_SITE_IDS = sorted(_SITE.iter_text_node_ids())

grid_labels = st.sets(
    st.sampled_from(sorted(GRID.all_cells())), min_size=1, max_size=7
).map(frozenset)

site_labels = st.sets(st.sampled_from(_SITE_IDS), min_size=1, max_size=5).map(
    frozenset
)


class TestPaperExample2:
    """Example 2 walks BottomUp over the Example 1 labels."""

    def test_wrapper_space_is_exactly_eight(self, paper_grid, paper_labels):
        result = enumerate_naive(TableInductor(), paper_grid, paper_labels)
        assert result.size == 8

    def test_bottom_up_matches_naive(self, paper_grid, paper_labels):
        naive = enumerate_naive(TableInductor(), paper_grid, paper_labels)
        bottom_up = enumerate_bottom_up(TableInductor(), paper_grid, paper_labels)
        assert set(naive.wrappers) == set(bottom_up.wrappers)

    def test_top_down_matches_naive(self, paper_grid, paper_labels):
        naive = enumerate_naive(TableInductor(), paper_grid, paper_labels)
        top_down = enumerate_top_down(TableInductor(), paper_grid, paper_labels)
        assert set(naive.wrappers) == set(top_down.wrappers)

    def test_expected_rules(self, paper_grid, paper_labels):
        result = enumerate_top_down(TableInductor(), paper_grid, paper_labels)
        rules = sorted(w.rule() for w in result.wrappers)
        assert rules == [
            "cell[0,0]",
            "cell[1,0]",
            "cell[3,0]",
            "cell[3,1]",
            "cell[4,2]",
            "col[0]",
            "row[3]",
            "table",
        ]

    def test_top_down_call_count_is_k(self, paper_grid, paper_labels):
        result = enumerate_top_down(TableInductor(), paper_grid, paper_labels)
        assert result.inductor_calls == result.size == 8

    def test_bottom_up_call_bound(self, paper_grid, paper_labels):
        result = enumerate_bottom_up(TableInductor(), paper_grid, paper_labels)
        assert result.inductor_calls <= result.size * len(paper_labels)


class TestNaive:
    def test_call_count_formula(self):
        labels = frozenset({GRID.cell(0, 0), GRID.cell(1, 1), GRID.cell(2, 2)})
        result = enumerate_naive(TableInductor(), GRID, labels)
        assert result.inductor_calls == naive_call_count(labels) == 7

    def test_refuses_oversized_label_sets(self):
        big_grid = Grid(6, 6)
        labels = frozenset(sorted(big_grid.all_cells())[: MAX_NAIVE_LABELS + 1])
        with pytest.raises(ValueError):
            enumerate_naive(TableInductor(), big_grid, labels)

    def test_empty_label_set(self):
        result = enumerate_naive(TableInductor(), GRID, frozenset())
        assert result.size == 0
        assert result.inductor_calls == 0


class TestAgreementProperties:
    @settings(max_examples=50, deadline=None)
    @given(grid_labels)
    def test_three_algorithms_agree_on_grids(self, labels):
        inductor = TableInductor()
        naive = enumerate_naive(inductor, GRID, labels)
        bottom_up = enumerate_bottom_up(inductor, GRID, labels)
        top_down = enumerate_top_down(inductor, GRID, labels)
        assert set(naive.wrappers) == set(bottom_up.wrappers)
        assert set(naive.wrappers) == set(top_down.wrappers)

    @settings(max_examples=25, deadline=None)
    @given(site_labels)
    def test_three_algorithms_agree_for_xpath(self, labels):
        inductor = XPathInductor()
        naive = enumerate_naive(inductor, _SITE, labels)
        bottom_up = enumerate_bottom_up(inductor, _SITE, labels)
        top_down = enumerate_top_down(inductor, _SITE, labels)
        assert set(naive.wrappers) == set(bottom_up.wrappers)
        assert set(naive.wrappers) == set(top_down.wrappers)

    @settings(max_examples=25, deadline=None)
    @given(site_labels)
    def test_three_algorithms_agree_for_lr(self, labels):
        inductor = LRInductor()
        naive = enumerate_naive(inductor, _SITE, labels)
        bottom_up = enumerate_bottom_up(inductor, _SITE, labels)
        top_down = enumerate_top_down(inductor, _SITE, labels)
        assert set(naive.wrappers) == set(bottom_up.wrappers)
        assert set(naive.wrappers) == set(top_down.wrappers)

    @settings(max_examples=50, deadline=None)
    @given(grid_labels)
    def test_theorem3_exactly_k_calls(self, labels):
        result = enumerate_top_down(TableInductor(), GRID, labels)
        assert result.inductor_calls == result.size

    @settings(max_examples=50, deadline=None)
    @given(grid_labels)
    def test_theorem2_call_bound(self, labels):
        result = enumerate_bottom_up(TableInductor(), GRID, labels)
        assert result.inductor_calls <= max(1, result.size * len(labels))

    @settings(max_examples=25, deadline=None)
    @given(site_labels)
    def test_full_label_wrapper_always_present(self, labels):
        inductor = XPathInductor()
        full = inductor.induce(_SITE, labels)
        result = enumerate_top_down(inductor, _SITE, labels)
        assert full in set(result.wrappers)

    @settings(max_examples=25, deadline=None)
    @given(site_labels)
    def test_singleton_wrappers_always_present(self, labels):
        inductor = XPathInductor()
        result = enumerate_top_down(inductor, _SITE, labels)
        wrappers = set(result.wrappers)
        for node_id in labels:
            assert inductor.induce(_SITE, frozenset({node_id})) in wrappers


class TestTopDownGuards:
    def test_requires_feature_based(self):
        class NotFeatureBased:
            pass

        with pytest.raises(TypeError):
            enumerate_top_down(NotFeatureBased(), GRID, frozenset())

    def test_empty_labels(self):
        result = enumerate_top_down(TableInductor(), GRID, frozenset())
        assert result.size == 0
