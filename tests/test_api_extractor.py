"""Extractor facade: config validation, method wiring, scorer weights."""

import pytest

from repro.annotators.dictionary import DictionaryAnnotator
from repro.api import Extractor, ExtractorConfig, ExtractorError
from repro.ranking.annotation import AnnotationModel
from repro.ranking.publication import PublicationModel
from repro.ranking.scorer import WrapperScorer


@pytest.fixture(scope="module")
def labels(dealer_site, dealer_names):
    return DictionaryAnnotator(dealer_names[:6] + ["Contact"]).annotate(dealer_site)


@pytest.fixture(scope="module")
def gold(dealer_site):
    return frozenset(
        node_id
        for node_id in dealer_site.iter_text_node_ids()
        if dealer_site.text_node(node_id).parent.tag == "u"
    )


@pytest.fixture(scope="module")
def publication_model(dealer_site, gold):
    return PublicationModel.fit([(dealer_site, gold)])


class TestExtractorConfig:
    def test_defaults_valid(self):
        ExtractorConfig().validate()

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"method": "magic"}, "unknown method"),
            ({"inductor": "magic"}, "unknown inductor"),
            ({"enumerator": "sideways"}, "unknown enumerator"),
            ({"max_labels": 0}, "max_labels"),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            ExtractorConfig(**kwargs).validate()

    def test_dict_roundtrip(self):
        config = ExtractorConfig(inductor="lr", method="ntw-l", max_labels=12)
        assert ExtractorConfig.from_dict(config.to_dict()) == config

    def test_from_dict_ignores_unknown_keys(self):
        config = ExtractorConfig.from_dict(
            {"inductor": "lr", "some_future_knob": True}
        )
        assert config.inductor == "lr"

    def test_invalid_config_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown method"):
            Extractor(ExtractorConfig(method="magic"))


class TestMethodWiring:
    def test_ntw_requires_publication_model(self, dealer_site, labels):
        extractor = Extractor(ExtractorConfig(method="ntw"))
        with pytest.raises(ExtractorError, match="publication model"):
            extractor.learn(dealer_site, labels)

    def test_ntw_l_works_without_publication_model(
        self, dealer_site, dealer_names, gold
    ):
        # Annotation-only ranking (no publication prior) recovers gold
        # from a partial dictionary, as long as no chrome collision makes
        # the noise structurally consistent across pages.
        clean_labels = DictionaryAnnotator(dealer_names[:6]).annotate(dealer_site)
        extractor = Extractor(ExtractorConfig(method="ntw-l"))
        artifact = extractor.learn(dealer_site, clean_labels)
        assert artifact.apply(dealer_site) == gold
        assert artifact.method == "ntw-l"
        assert "total" in artifact.score

    def test_naive_artifact_has_no_score(self, dealer_site, labels):
        extractor = Extractor(ExtractorConfig(method="naive"))
        artifact = extractor.learn(dealer_site, labels)
        assert artifact.score == {}
        assert artifact.method == "naive"
        # Naive over-generalizes on noisy labels but still extracts.
        assert artifact.apply(dealer_site)

    def test_empty_labels_rejected(self, dealer_site):
        extractor = Extractor(ExtractorConfig(method="naive"))
        with pytest.raises(ExtractorError, match="no labels"):
            extractor.learn(dealer_site, frozenset())

    def test_provenance_records_run(self, dealer_site, labels, publication_model):
        extractor = Extractor(
            ExtractorConfig(method="ntw"), publication_model=publication_model
        )
        artifact = extractor.learn(dealer_site, labels)
        assert artifact.provenance["n_labels"] == len(labels)
        assert artifact.provenance["n_pages"] == len(dealer_site)
        assert artifact.provenance["config"]["method"] == "ntw"
        assert artifact.provenance["wrapper_space"] >= 1

    def test_annotate_and_learn(self, dealer_site, dealer_names, gold):
        extractor = Extractor(ExtractorConfig(method="ntw-l"))
        artifact = extractor.annotate_and_learn(
            dealer_site, DictionaryAnnotator(dealer_names[:6])
        )
        assert artifact.apply(dealer_site) == gold

    def test_fit_estimates_models(self):
        from repro.api import load_dataset
        from repro.evaluation.runner import split_sites

        bundle = load_dataset("dealers", sites=4, pages=4, seed=11)
        train, _ = split_sites(bundle.sites)
        extractor = Extractor(ExtractorConfig(method="ntw"))
        extractor.fit(train, bundle.annotator, bundle.gold_type)
        assert extractor.annotation_model is not None
        assert extractor.publication_model is not None
        assert extractor.scorer() is not None


class TestScorerWeights:
    def test_weights_scale_components(self, dealer_site, labels, gold, publication_model):
        annotation = AnnotationModel.from_rates(p=0.95, r=0.5)
        plain = WrapperScorer(annotation, publication_model)
        weighted = WrapperScorer(
            annotation,
            publication_model,
            annotation_weight=2.0,
            publication_weight=0.5,
        )
        base = plain.score_wrapper(dealer_site, _IdentityWrapper(gold), labels)
        scaled = weighted.score_wrapper(dealer_site, _IdentityWrapper(gold), labels)
        assert scaled.log_annotation == pytest.approx(2.0 * base.log_annotation)
        assert scaled.log_publication == pytest.approx(0.5 * base.log_publication)

    def test_negative_weight_rejected(self, publication_model):
        with pytest.raises(ValueError, match="annotation_weight"):
            WrapperScorer(
                AnnotationModel.from_rates(p=0.9, r=0.5),
                publication_model,
                annotation_weight=-1.0,
            )

    def test_config_weights_reach_scorer(self, publication_model):
        extractor = Extractor(
            ExtractorConfig(method="ntw", annotation_weight=3.0, publication_weight=0.5),
            publication_model=publication_model,
        )
        scorer = extractor.scorer()
        assert scorer.annotation_weight == 3.0
        assert scorer.publication_weight == 0.5


class _IdentityWrapper:
    """A stub wrapper extracting a fixed node set (scorer only needs that)."""

    def __init__(self, nodes):
        self._nodes = nodes

    def extract(self, _site):
        return self._nodes

    def rule(self):
        return "identity"
