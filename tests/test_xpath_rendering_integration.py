"""Integration property: learned XPATH wrappers render to xpaths whose
evaluation reproduces feature-based extraction, across the full variety
of generated site templates.

This ties the three substrates together: the dataset generator's
rendering scripts, the feature-based inductor, and the xpath engine.
"""

import pytest

from repro.framework.ntw import subsample_labels
from repro.wrappers.xpath_inductor import XPathInductor
from repro.xpathlang import evaluate


def _check_equivalence(site, labels):
    inductor = XPathInductor()
    wrapper = inductor.induce(site, labels)
    if not wrapper.exactly_renderable:
        pytest.skip("wrapper has a childnum constraint without a tag")
    path = wrapper.to_xpath()
    evaluated = set()
    for page in site.pages:
        evaluated |= {node.node_id for node in evaluate(path, page)}
    assert evaluated == set(wrapper.extract(site))


class TestRenderingEquivalenceAcrossTemplates:
    def test_dealers_gold_wrappers(self, small_dealers):
        for generated in small_dealers.sites:
            _check_equivalence(generated.site, generated.gold["name"])

    def test_dealers_phone_wrappers(self, small_dealers):
        for generated in small_dealers.sites:
            _check_equivalence(generated.site, generated.gold["phone"])

    def test_disc_track_wrappers(self, small_disc):
        for generated in small_disc.sites:
            _check_equivalence(generated.site, generated.gold["track"])

    def test_products_name_wrappers(self, small_products):
        for generated in small_products.sites:
            _check_equivalence(generated.site, generated.gold["name"])

    def test_noisy_label_wrappers(self, small_dealers):
        """Equivalence holds for wrappers induced from noisy labels too."""
        annotator = small_dealers.annotator()
        for generated in small_dealers.sites[:4]:
            labels = subsample_labels(
                annotator.annotate(generated.site), 12
            )
            if labels:
                _check_equivalence(generated.site, labels)

    def test_singleton_label_wrappers(self, small_dealers):
        for generated in small_dealers.sites[:3]:
            first = min(generated.gold["name"])
            _check_equivalence(generated.site, frozenset({first}))
