"""Tests for the Sec. 6 annotator-flipping remark.

When ``1 - p > r`` the annotator labels wrong nodes more often than
right ones; Eq. 4 is then maximised by the complement of the label set,
so flipping the annotator's output restores an informative signal.
"""

import pytest

from repro.annotators import FlippedAnnotator, OracleNoiseAnnotator
from repro.ranking.annotation import AnnotationModel, NoiseProfile
from repro.site import Site


@pytest.fixture()
def site():
    rows = "".join(
        f"<tr><td><u>N{i}</u></td><td>A{i}</td></tr>" for i in range(1, 7)
    )
    return Site.from_html("flip", [f"<table>{rows}</table>"])


@pytest.fixture()
def gold(site):
    return frozenset(
        node_id
        for i in range(1, 7)
        for node_id in site.find_text_nodes(f"N{i}")
    )


class TestEq4FlipIdentity:
    def test_uninformative_profile_prefers_complement(self, site, gold):
        """With 1-p > r, Eq. 4 scores the complement of L above L."""
        model = AnnotationModel(NoiseProfile(p=0.3, r=0.4))  # 1-p=0.7 > r
        universe = site.text_node_ids()
        labels = gold  # pretend the annotator emitted these
        complement = universe - labels
        assert model.log_likelihood(labels, complement) > model.log_likelihood(
            labels, labels
        )

    def test_informative_profile_prefers_labels(self, site, gold):
        model = AnnotationModel(NoiseProfile(p=0.9, r=0.4))
        universe = site.text_node_ids()
        assert model.log_likelihood(gold, gold) > model.log_likelihood(
            gold, universe - gold
        )


class TestFlippedAnnotatorRecoversSignal:
    def test_flip_of_anti_annotator_is_informative(self, site, gold):
        """An annotator that labels mostly *non*-gold nodes becomes a
        decent gold annotator after flipping."""
        anti = OracleNoiseAnnotator(gold, p1=0.05, p2=0.95, seed=13)
        flipped = FlippedAnnotator(anti)
        labels = flipped.annotate(site)
        hit_rate = len(labels & gold) / len(gold)
        universe = site.text_node_ids()
        false_rate = len(labels - gold) / max(1, len(universe - gold))
        assert hit_rate > 0.7
        assert false_rate < 0.3

    def test_double_flip_is_identity(self, site, gold):
        anti = OracleNoiseAnnotator(gold, p1=0.2, p2=0.8, seed=5)
        once = FlippedAnnotator(anti)
        twice = FlippedAnnotator(once)
        assert twice.annotate(site) == anti.annotate(site)
