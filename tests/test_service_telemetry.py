"""Observability end to end: request traces over a live daemon, the
``metrics`` op, the enriched ``stats`` op, and the ``repro stats``
CLI contract."""

import json
import re
import signal
import subprocess
import sys
import time

import pytest

from repro import telemetry
from repro.annotators.dictionary import DictionaryAnnotator
from repro.api import Extractor, ExtractorConfig
from repro.cli import main
from repro.service import ExtractionServer, ServiceClient

NAMES = [f"PRODUCT-{index:02d}" for index in range(20)]

TRACE_STAGES = {
    "admission_wait",
    "resolve",
    "queue_wait",
    "hydrate",
    "extract",
    "result_flush",
}


def _page(names):
    rows = "".join(
        f"<tr><td class='item'><u>{name}</u></td></tr>" for name in names
    )
    return f"<html><body><table>{rows}</table></body></html>"


def _extractor():
    return Extractor(ExtractorConfig(inductor="xpath", method="naive"))


@pytest.fixture(autouse=True)
def fresh_registry(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    telemetry.set_registry(None)
    yield
    telemetry.set_registry(None)


@pytest.fixture()
def traced_server(tmp_path):
    trace_path = tmp_path / "trace.ndjson"
    with ExtractionServer(
        "memory",
        extractor=_extractor(),
        annotator=DictionaryAnnotator(NAMES),
        max_workers=1,
        trace_log=str(trace_path),
        trace_seed=0,
    ) as server:
        server._trace_path = trace_path
        yield server


@pytest.fixture()
def client(traced_server):
    with ServiceClient(traced_server.address) as cli:
        yield cli


def _trace_events(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestRequestTracing:
    def test_warm_apply_trace_tiles_the_wall_clock(
        self, traced_server, client
    ):
        """The acceptance bar: a warm apply's trace names >= 5 stages
        and their durations sum to the request wall-clock (exact tiling,
        asserted within 10%)."""
        pages = [_page(NAMES[:2]), _page(NAMES[2:3])]
        first = client.apply("shop", pages)
        assert first["ok"] and first["source"] == "learned"
        warm = client.apply("shop", pages)
        assert warm["ok"] and warm["source"] == "fingerprint"

        events = _trace_events(traced_server._trace_path)
        traces = [e for e in events if e["event"] == "trace"]
        assert len(traces) == 2
        trace = traces[-1]
        assert trace["op"] == "apply"
        assert trace["ok"] is True
        assert trace["site"] == "shop"
        stages = trace["stages"]
        assert len(stages) >= 5
        assert {s["stage"] for s in stages} <= TRACE_STAGES
        total = trace["total_s"]
        assert total > 0
        tiled = sum(s["dur_s"] for s in stages)
        assert tiled == pytest.approx(total, rel=0.10)
        # Tiling is contiguous: each stage starts where the previous
        # ended, relative to the request's first stamp.
        edge = 0.0
        for stage in stages:
            assert stage["start_s"] == pytest.approx(edge, abs=1e-6)
            edge += stage["dur_s"]

    def test_slowest_requests_flush_ranked_on_close(self, tmp_path):
        trace_path = tmp_path / "trace.ndjson"
        server = ExtractionServer(
            "memory",
            extractor=_extractor(),
            annotator=DictionaryAnnotator(NAMES),
            max_workers=1,
            trace_log=str(trace_path),
        )
        server.start()
        try:
            with ServiceClient(server.address) as cli:
                for index in range(3):
                    response = cli.apply(
                        f"shop-{index}", [_page(NAMES[index : index + 2])]
                    )
                    assert response["ok"]
        finally:
            server.close()
        events = _trace_events(trace_path)
        slow = [e for e in events if e["event"] == "slow"]
        assert slow, "close() must flush the slowest-N capture"
        assert [e["rank"] for e in slow] == list(range(1, len(slow) + 1))
        totals = [e["total_s"] for e in slow]
        assert totals == sorted(totals, reverse=True)


class TestMetricsOp:
    def test_snapshot_counts_the_requests_that_produced_it(self, client):
        response = client.apply("shop", [_page(NAMES[:2])])
        assert response["ok"]
        snapshot = client.metrics()
        requests = snapshot["server.requests"]
        assert requests["type"] == "counter"
        assert requests["values"].get("op=apply") == 1
        latency = snapshot["server.apply_latency_s"]
        assert latency["type"] == "histogram"
        series = latency["values"][""]
        assert series["count"] == 1
        assert series["sum"] > 0
        stage = snapshot["server.stage_s"]
        assert set(stage["values"]) <= {
            f"stage={name}" for name in TRACE_STAGES
        }

    def test_prometheus_format_renders_exposition_text(self, client):
        client.apply("shop", [_page(NAMES[:2])])
        text = client.metrics(format="prometheus")
        assert isinstance(text, str)
        assert "# TYPE repro_server_requests counter" in text
        assert "# TYPE repro_server_apply_latency_s histogram" in text
        assert 'repro_server_apply_latency_s_bucket{le="+Inf"} 1' in text
        assert "# HELP repro_server_requests" in text


class TestStatsOp:
    def test_stats_carry_uptime_and_collection_stamp(self, client):
        before = time.time()
        stats = client.stats()["server"]
        assert stats["uptime_s"] >= 0.0
        assert stats["uptime_s"] < 300.0
        assert abs(stats["collected_at"] - before) < 60.0

    def test_derived_rollups_are_cached_between_polls(self, traced_server):
        now = time.monotonic()
        first = traced_server._derived_rollups(now)
        second = traced_server._derived_rollups(now + 0.5)
        assert second is first  # served from the ~1s cache
        third = traced_server._derived_rollups(now + 10.0)
        assert third is not first


class TestStatsCli:
    def test_json_rollup_reports_nonzero_latency_quantiles(
        self, traced_server, client, capsys
    ):
        pages = [_page(NAMES[:2])]
        client.apply("shop", pages)
        client.apply("shop", pages)
        host, port = traced_server.address
        assert (
            main(
                ["stats", "--host", host, "--port", str(port), "--json"]
            )
            == 0
        )
        rollup = json.loads(capsys.readouterr().out)
        apply_latency = rollup["latency"]["apply"]
        assert apply_latency["count"] == 2
        assert apply_latency["p50_s"] > 0
        assert apply_latency["p99_s"] >= apply_latency["p50_s"] > 0
        assert apply_latency["mean_s"] > 0
        assert rollup["uptime_s"] >= 0.0
        assert rollup["server"]["responses"] == 2
        assert rollup["workers"]["jobs"] >= 2
        assert rollup["workers"]["deaths"] == 0

    def test_watch_emits_one_line_per_iteration(
        self, traced_server, client, capsys
    ):
        client.apply("shop", [_page(NAMES[:2])])
        host, port = traced_server.address
        assert (
            main(
                [
                    "stats",
                    "--host",
                    host,
                    "--port",
                    str(port),
                    "--json",
                    "--watch",
                    "--iterations",
                    "2",
                    "--interval",
                    "0.01",
                ]
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        polls = [json.loads(line) for line in lines]
        assert polls[1]["uptime_s"] >= polls[0]["uptime_s"]

    def test_human_view_renders_the_headline_lines(
        self, traced_server, client, capsys
    ):
        client.apply("shop", [_page(NAMES[:2])])
        host, port = traced_server.address
        assert main(["stats", "--host", host, "--port", str(port)]) == 0
        out = capsys.readouterr().out
        assert "apply latency: p50" in out
        assert "registry:" in out
        assert "uptime" in out

    def test_prometheus_passthrough(self, traced_server, client, capsys):
        client.apply("shop", [_page(NAMES[:2])])
        host, port = traced_server.address
        assert (
            main(
                [
                    "stats",
                    "--host",
                    host,
                    "--port",
                    str(port),
                    "--prometheus",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "# TYPE repro_server_requests counter" in out


class TestServeSubprocess:
    def test_live_daemon_writes_traces_and_serves_stats(self, tmp_path):
        """`repro serve --trace-log` as a real OS process: warm apply
        through the daemon, `repro stats --json` against it, and the
        NDJSON trace on disk after a clean SIGTERM shutdown."""
        trace_path = tmp_path / "serve-trace.ndjson"
        daemon = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--workers",
                "1",
                "--dataset",
                "dealers",
                "--sites",
                "2",
                "--pages",
                "2",
                "--trace-log",
                str(trace_path),
            ],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            banner = daemon.stdout.readline().strip()
            match = re.match(r"serving on (.+):(\d+)", banner)
            assert match, f"daemon failed to start: {banner!r}"
            address = (match.group(1), int(match.group(2)))
            from repro.api import load_dataset

            bundle = load_dataset("dealers", sites=2, pages=2, seed=11)
            group = bundle.sites[0]
            site = group.name
            pages = [page.source for page in group.site.pages]
            with ServiceClient(address, timeout=120) as cli:
                first = cli.apply(site, pages)
                assert first["ok"] and first["source"] == "learned"
                warm = cli.apply(site, pages)
                assert warm["ok"] and warm["source"] == "fingerprint"
                snapshot = cli.metrics()
                assert snapshot["server.requests"]["values"]["op=apply"] == 2
            host, port = address
            code = main(
                ["stats", "--host", host, "--port", str(port), "--json"]
            )
            assert code == 0
        finally:
            daemon.send_signal(signal.SIGTERM)
            try:
                daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.wait(timeout=10)
        traces = [
            e for e in _trace_events(trace_path) if e["event"] == "trace"
        ]
        assert len(traces) == 2
        warm_trace = traces[-1]
        assert len(warm_trace["stages"]) >= 5
        assert sum(
            s["dur_s"] for s in warm_trace["stages"]
        ) == pytest.approx(warm_trace["total_s"], rel=0.10)
