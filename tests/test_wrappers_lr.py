"""Tests for the WIEN LR inductor."""

import pytest

from repro.site import Site
from repro.wrappers.lr import LRInductor, LRWrapper, _common_prefix, _common_suffix


@pytest.fixture()
def site():
    return Site.from_html(
        "shop",
        [
            "<table><tr><td><u>ALPHA</u></td><td>one</td></tr>"
            "<tr><td><u>BETA</u></td><td>two</td></tr></table>",
            "<table><tr><td><u>GAMMA</u></td><td>three</td></tr></table>",
        ],
    )


def label_with_text(site, text):
    (node_id,) = site.find_text_nodes(text)
    return node_id


class TestCommonStrings:
    def test_common_prefix(self):
        assert _common_prefix(iter(["abcd", "abxy", "abz"])) == "ab"

    def test_common_prefix_empty(self):
        assert _common_prefix(iter(["abc", "xyz"])) == ""

    def test_common_suffix(self):
        assert _common_suffix(iter(["xyzd>", "ab d>", "d>"])) == "d>"

    def test_common_suffix_whole_string(self):
        assert _common_suffix(iter(["abc", "abc"])) == "abc"

    def test_empty_iterator(self):
        assert _common_prefix(iter([])) == ""
        assert _common_suffix(iter([])) == ""


class TestInduction:
    def test_delimiters_from_u_labels(self, site):
        inductor = LRInductor()
        labels = frozenset(
            {label_with_text(site, "ALPHA"), label_with_text(site, "BETA")}
        )
        wrapper = inductor.induce(site, labels)
        assert wrapper.left.endswith("<u>")
        assert wrapper.right.startswith("</u>")

    def test_extraction_covers_all_u_nodes(self, site):
        inductor = LRInductor()
        labels = frozenset(
            {label_with_text(site, "ALPHA"), label_with_text(site, "BETA")}
        )
        extracted = inductor.induce(site, labels).extract(site)
        texts = sorted(site.text_node(n).text for n in extracted)
        assert texts == ["ALPHA", "BETA", "GAMMA"]

    def test_single_label_learns_long_context(self, site):
        inductor = LRInductor()
        labels = frozenset({label_with_text(site, "GAMMA")})
        wrapper = inductor.induce(site, labels)
        # Context extends beyond the immediate <u> tag.
        assert len(wrapper.left) > len("<u>")

    def test_noisy_label_overgeneralizes(self, site):
        # Adding a non-name label (different context) shortens the
        # delimiters and floods the extraction — Sec. 1's failure mode.
        inductor = LRInductor()
        clean = frozenset(
            {label_with_text(site, "ALPHA"), label_with_text(site, "BETA")}
        )
        noisy = clean | {label_with_text(site, "two")}
        clean_count = len(inductor.induce(site, clean).extract(site))
        noisy_count = len(inductor.induce(site, noisy).extract(site))
        assert noisy_count > clean_count

    def test_empty_labels_rejected(self, site):
        with pytest.raises(ValueError):
            LRInductor().induce(site, frozenset())

    def test_delimiter_cap_respected(self, site):
        inductor = LRInductor(max_delimiter_length=4)
        labels = frozenset({label_with_text(site, "GAMMA")})
        wrapper = inductor.induce(site, labels)
        assert len(wrapper.left) <= 4
        assert len(wrapper.right) <= 4


class TestFeatureView:
    def test_feature_values_match_context(self, site):
        inductor = LRInductor()
        node_id = label_with_text(site, "ALPHA")
        assert inductor.value(site, node_id, ("L", 3)) == "<u>"
        assert inductor.value(site, node_id, ("R", 4)) == "</u>"

    def test_value_none_beyond_document_start(self, site):
        inductor = LRInductor()
        first_text = sorted(site.iter_text_node_ids())[0]
        node = site.text_node(first_text)
        too_long = node.start + 1
        assert inductor.value(site, first_text, ("L", too_long)) is None

    def test_feature_map_agrees_with_value(self, site):
        inductor = LRInductor(max_delimiter_length=16)
        node_id = label_with_text(site, "BETA")
        features = inductor.feature_map(site, node_id)
        for attr, value in features.items():
            assert inductor.value(site, node_id, attr) == value

    def test_wrapper_for_features_takes_longest(self, site):
        inductor = LRInductor()
        wrapper = inductor.wrapper_for_features(
            site, {("L", 1): ">", ("L", 3): "<u>", ("R", 2): "</"}
        )
        assert wrapper == LRWrapper(left="<u>", right="</")

    def test_attribute_stream_is_finite(self, site):
        inductor = LRInductor()
        labels = frozenset(
            {label_with_text(site, "ALPHA"), label_with_text(site, "one")}
        )
        attrs = list(inductor.attribute_stream(site, labels))
        assert attrs
        assert len(attrs) < 1000


class TestScanExtraction:
    def test_scan_finds_minimal_spans(self):
        wrapper = LRWrapper(left="<td>", right="</td>")
        spans = wrapper.scan_page("<td>a</td><td>bb</td>")
        assert spans == [(4, 5), (14, 16)]

    def test_scan_empty_delimiters(self):
        assert LRWrapper(left="", right="x").scan_page("xyz") == []

    def test_scan_no_match(self):
        assert LRWrapper(left="<q>", right="</q>").scan_page("<td>a</td>") == []

    def test_scan_agrees_with_extract_on_clean_markup(self, site):
        inductor = LRInductor()
        labels = frozenset(
            {label_with_text(site, "ALPHA"), label_with_text(site, "BETA")}
        )
        wrapper = inductor.induce(site, labels)
        for page in site.pages:
            node_spans = {
                (site.text_node(n).start, site.text_node(n).end)
                for n in wrapper.extract(site)
                if n.page == page.page_index
            }
            scan_spans = set(wrapper.scan_page(page.source))
            # Every extracted node's span is found by the classic scan.
            assert node_spans <= scan_spans
