"""End-to-end service resilience under injected faults: reconnect +
replay, request deadlines, draining restarts, crash storms, quarantine
over the wire, orphan reaping."""

import multiprocessing
import os
import time

import pytest

from repro import faults
from repro.annotators.dictionary import DictionaryAnnotator
from repro.api import Extractor, ExtractorConfig
from repro.service import (
    ExtractionServer,
    RequestTimeout,
    ServerDraining,
    ServiceClient,
    ServiceError,
    WrapperRegistry,
)

NAMES = [f"PRODUCT-{index:02d}" for index in range(40)]


@pytest.fixture(autouse=True)
def disarm():
    faults.clear()
    yield
    faults.clear()


def _page(names):
    rows = "".join(
        f"<tr><td class='item'><u>{name}</u></td></tr>" for name in names
    )
    return (
        "<html><body><p>Welcome to the shop</p>"
        f"<table>{rows}</table>"
        "<p>Call us today</p></body></html>"
    )


def _site_pages(seed: int) -> list[str]:
    first = NAMES[seed % 20], NAMES[(seed + 1) % 20]
    second = (NAMES[(seed + 2) % 20],)
    return [_page(first), _page(second)]


def _annotator():
    return DictionaryAnnotator(NAMES)


def _extractor():
    return Extractor(ExtractorConfig(inductor="xpath", method="naive"))


def _server(**overrides):
    options = dict(
        extractor=_extractor(), annotator=_annotator(), max_workers=1
    )
    options.update(overrides)
    return ExtractionServer("memory", **options)


class TestReconnectReplay:
    def test_connection_drop_is_ridden_out_by_replay(self):
        """The server eats the response and resets the connection: the
        client must reconnect, replay the unanswered request, and hand
        the caller the (idempotent) result as if nothing happened."""
        with _server() as server:
            with ServiceClient(server.address, timeout=30) as client:
                plan = faults.FaultPlan(seed=1)
                plan.add(faults.CONN_DROP, at=[1], match="apply:")
                faults.install(plan)
                response = client.apply("shop-drop", _site_pages(3))
                assert response["ok"]
                assert client.reconnects == 1
                assert client.replays >= 1
                # The connection is live again: next request sails.
                assert client.apply("shop-drop", _site_pages(3))["ok"]
                assert client.reconnects == 1

    def test_mid_frame_truncation_is_ridden_out(self):
        """Half a response frame then reset — the torn frame must not
        be mistaken for an answer; the replay produces a whole one."""
        with _server() as server:
            with ServiceClient(server.address, timeout=30) as client:
                plan = faults.FaultPlan(seed=1)
                plan.add(faults.CONN_TRUNCATE, at=[1], match="apply:")
                faults.install(plan)
                response = client.apply("shop-torn", _site_pages(4))
                assert response["ok"]
                assert client.reconnects == 1

    def test_retries_disabled_surfaces_transport_error(self):
        from repro.service import TransportError

        with _server() as server:
            with ServiceClient(
                server.address, timeout=30, retries=0
            ) as client:
                plan = faults.FaultPlan(seed=1)
                plan.add(faults.CONN_DROP, at=[1], match="apply:")
                faults.install(plan)
                with pytest.raises(TransportError):
                    client.apply("shop-raw", _site_pages(5))


class TestRequestDeadline:
    def test_deadline_answers_instead_of_hanging_the_client(self):
        """A worker hangs mid-learn: the client gets a structured
        ``deadline`` error when the server's per-request deadline
        elapses — long before the hang resolves — and the server keeps
        serving."""
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.WORKER_HANG, at=[1], match="slowpoke", delay=1.5)
        faults.install(plan)  # before start(): workers fork the plan
        # max_workers=2: a one-worker pool executes inline in the
        # parent, where a hang would stall the dispatcher itself.
        with _server(request_deadline=0.3, max_workers=2) as server:
            with ServiceClient(server.address, timeout=30) as client:
                start = time.monotonic()
                with pytest.raises(RequestTimeout) as excinfo:
                    client.apply("slowpoke", _site_pages(6))
                elapsed = time.monotonic() - start
                assert elapsed < 1.5  # answered by deadline, not by hang
                assert excinfo.value.response["code"] == "deadline"
                # The connection and the server both stay usable.
                assert client.ping()
                # Once the hang resolves, the worker serves again (a
                # request racing the hung worker's queue would get the
                # same deadline answer — that is the contract).
                time.sleep(max(0.0, 1.6 - (time.monotonic() - start)))
                response = client.apply("prompt-site", _site_pages(7))
                assert response["ok"]
                stats = client.stats()
                assert stats["server"]["deadline_expired"] >= 1
                assert stats["server"]["request_deadline"] == 0.3


class TestDraining:
    def test_draining_refusal_raises_without_retries(self):
        with _server() as server:
            with ServiceClient(
                server.address, timeout=30, retries=0
            ) as client:
                assert client.ping()
                server._draining = True
                with pytest.raises(ServerDraining):
                    client.apply("shop-late", _site_pages(8))
                # Liveness probes still answer during a drain.
                assert client.ping()

    def test_generation_handoff_loses_no_acknowledged_results(
        self, tmp_path
    ):
        """Kill a generation mid-stream via drain: the successor binds
        the same AF_UNIX address and shares the registry; a retrying
        client chases it and every submitted request is answered
        exactly once."""
        path = str(tmp_path / "repro-serve.sock")
        registry = WrapperRegistry("memory")
        annotator = _annotator()
        gen1 = ExtractionServer(
            registry,
            extractor=_extractor(),
            annotator=annotator,
            socket_path=path,
            max_workers=1,
        ).start()
        client = ServiceClient(path, timeout=60, retries=8, backoff=0.05)
        try:
            ids = [
                client.submit("apply", site=f"fleet-{seed}", pages=_site_pages(seed))
                for seed in range(10)
            ]
            collected = {ids[0]: client.wait(ids[0])}
            assert collected[ids[0]]["ok"]
            # Old generation hands off: in-flight finishes and answers,
            # queued work is refused with code "draining".
            assert gen1.drain(timeout=60) is True
            gen2 = ExtractionServer(
                registry,
                extractor=_extractor(),
                annotator=annotator,
                socket_path=path,
                max_workers=1,
            ).start()
            try:
                for request_id in ids[1:]:
                    collected[request_id] = client.wait(request_id)
                assert sorted(collected) == sorted(ids)
                assert all(r["ok"] for r in collected.values())
                # Every response answers the request it echoes.
                assert all(
                    r["id"] == request_id
                    for request_id, r in collected.items()
                )
                # Exactly-once at the client boundary: nothing is still
                # unanswered, nothing extra arrived.
                assert not client._sent
                assert not client._pending
                assert client.reconnects >= 1
            finally:
                gen2.close()
        finally:
            client.close()
            gen1.close()


class TestCrashStorms:
    def test_sigkill_mid_learn_while_client_waits(self):
        """Both original workers are killed mid-learn; respawned
        replacements pick the job up and the blocked client still gets
        its answer — no hang, no error."""
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.WORKER_CRASH, at=[1], match="w0:learn")
        plan.add(faults.WORKER_CRASH, at=[1], match="w1:learn")
        faults.install(plan)
        with _server(max_workers=2) as server:
            with ServiceClient(server.address, timeout=60) as client:
                response = client.apply("crashy", _site_pages(9))
                assert response["ok"]
                stats = client.stats()["server"]
                assert 1 <= stats["worker_deaths"] <= 2
                assert stats["respawns"] >= 1
                assert stats["quarantined"] == 0
                assert server._pool.workers_alive == 2

    def test_quarantine_surfaces_as_structured_failure(self):
        """A site whose job kills every worker it touches is reported
        as a ``quarantined`` failure over the wire; other tenants'
        sites keep extracting on the respawned fleet."""
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.WORKER_CRASH, at=[1], match=":poison")
        faults.install(plan)
        with _server(max_workers=2, crash_retry_limit=1) as server:
            with ServiceClient(server.address, timeout=60) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.apply("poison", _site_pages(10))
                assert excinfo.value.response["code"] == "quarantined"
                assert "quarantined" in str(excinfo.value)
                # Survivors (and respawns) keep the service healthy.
                response = client.apply("bystander", _site_pages(11))
                assert response["ok"]
                stats = client.stats()["server"]
                assert stats["quarantined"] == 1
                assert stats["worker_deaths"] == 2  # limit + 1


class TestOrphanReaping:
    @staticmethod
    def _dead_pid() -> int:
        process = multiprocessing.get_context("fork").Process(target=int)
        process.start()
        process.join()
        return process.pid

    def test_startup_and_periodic_reap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARENA_DIR", str(tmp_path))
        orphan = tmp_path / f"repro-arena-{self._dead_pid()}-0-feed.arena"
        orphan.write_bytes(b"stale segment")
        with _server(extractor=None, annotator=None, reap_interval=0.05) as server:
            assert not orphan.exists()  # startup sweep got it
            assert server.arena_reaped >= 1
            # A segment orphaned while the daemon runs dies on the tick.
            late = tmp_path / f"repro-arena-{self._dead_pid()}-1-cafe.arena"
            late.write_bytes(b"stale segment")
            deadline = time.monotonic() + 10.0
            while late.exists() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert not late.exists()
            with ServiceClient(server.address, timeout=30) as client:
                stats = client.stats()["server"]
                assert stats["arena"]["orphans_reaped"] >= 2
