"""Integration tests: the paper's narrative end-to-end on all datasets.

Each test asserts a *shape* claim from the evaluation section — who wins
and roughly by how much — on small deterministic dataset slices.
"""

import pytest

from repro.annotators import OracleNoiseAnnotator
from repro.evaluation import SingleTypeExperiment
from repro.evaluation.runner import split_sites
from repro.framework.ntw import NoiseTolerantWrapper
from repro.ranking.scorer import WrapperScorer
from repro.wrappers.lr import LRInductor
from repro.wrappers.xpath_inductor import XPathInductor


class TestDealersNarrative:
    """Fig. 2(d,e): NTW ~perfect; NAIVE keeps recall, loses precision."""

    @pytest.fixture(scope="class")
    def outcomes_xpath(self, small_dealers):
        experiment = SingleTypeExperiment(
            small_dealers.sites, small_dealers.annotator(), XPathInductor()
        )
        return experiment.run(methods=("naive", "ntw", "ntw-l", "ntw-x"))

    def test_ntw_precision_near_one(self, outcomes_xpath):
        assert outcomes_xpath["ntw"].overall.precision >= 0.95

    def test_ntw_recall_near_one(self, outcomes_xpath):
        assert outcomes_xpath["ntw"].overall.recall >= 0.95

    def test_naive_recall_perfect_precision_poor(self, outcomes_xpath):
        naive = outcomes_xpath["naive"].overall
        assert naive.recall >= 0.99
        assert naive.precision < outcomes_xpath["ntw"].overall.precision

    def test_variants_do_not_beat_full_ntw(self, outcomes_xpath):
        full = outcomes_xpath["ntw"].overall.f1
        assert outcomes_xpath["ntw-l"].overall.f1 <= full + 1e-9
        assert outcomes_xpath["ntw-x"].overall.f1 <= full + 1e-9


class TestLRvsXPath:
    """Fig. 2(e): LR over-generalizes more severely than XPATH."""

    def test_naive_lr_precision_below_naive_xpath(self, small_dealers):
        xpath_exp = SingleTypeExperiment(
            small_dealers.sites, small_dealers.annotator(), XPathInductor()
        )
        lr_exp = SingleTypeExperiment(
            small_dealers.sites, small_dealers.annotator(), LRInductor()
        )
        xpath_naive = xpath_exp.run(methods=("naive",))["naive"].overall
        lr_naive = lr_exp.run(methods=("naive",))["naive"].overall
        assert lr_naive.precision <= xpath_naive.precision


class TestDiscNarrative:
    """Fig. 2(f,g): near-perfect NTW accuracy on DISC."""

    def test_ntw_high_accuracy(self, small_disc):
        experiment = SingleTypeExperiment(
            small_disc.sites,
            small_disc.annotator(),
            XPathInductor(),
            gold_type="track",
        )
        outcomes = experiment.run(methods=("naive", "ntw"))
        assert outcomes["ntw"].overall.f1 >= 0.95
        assert outcomes["ntw"].overall.f1 > outcomes["naive"].overall.f1


class TestProductsNarrative:
    """Fig. 3(c): same behaviour on the PRODUCTS domain."""

    def test_ntw_high_accuracy(self, small_products):
        experiment = SingleTypeExperiment(
            small_products.sites,
            small_products.annotator(),
            XPathInductor(),
            gold_type="name",
        )
        outcomes = experiment.run(methods=("naive", "ntw"))
        assert outcomes["ntw"].overall.f1 >= 0.9
        assert outcomes["ntw"].overall.f1 > outcomes["naive"].overall.f1


class TestControlledAnnotators:
    """Sec. 7.4 / Table 1: graceful degradation with annotator quality."""

    def test_accuracy_grows_with_recall(self, small_dealers):
        train, test = split_sites(small_dealers.sites)
        from repro.evaluation.runner import fit_models

        results = {}
        for r in (0.05, 0.3):
            scores = []
            for generated in test:
                gold = generated.gold["name"]
                annotator = OracleNoiseAnnotator(
                    gold, p1=r, p2=0.002, seed=generated.spec.seed
                )
                models = fit_models(train, annotator, "name")
                learner = NoiseTolerantWrapper(
                    XPathInductor(),
                    WrapperScorer(models.annotation, models.publication),
                )
                labels = annotator.annotate(generated.site)
                extracted = learner.learn(generated.site, labels).extracted
                from repro.evaluation.metrics import prf

                scores.append(prf(extracted, gold).f1)
            results[r] = sum(scores) / len(scores)
        assert results[0.3] >= results[0.05]
