"""Batch layer: deterministic ordering, error isolation, executors."""

import pytest

from repro.api import (
    Extractor,
    ExtractorConfig,
    ProcessPoolExecutor,
    SerialExecutor,
    apply_many,
    learn_many,
    load_dataset,
    resolve_executor,
)


@pytest.fixture(scope="module")
def bundle():
    return load_dataset("dealers", sites=6, pages=4, seed=11)


@pytest.fixture(scope="module")
def fitted_extractor(bundle):
    train = bundle.sites[::2]
    extractor = Extractor(ExtractorConfig(inductor="xpath", method="ntw"))
    return extractor.fit(train, bundle.annotator, bundle.gold_type)


@pytest.fixture(scope="module")
def test_sites(bundle):
    return bundle.sites[1::2]


class TestLearnMany:
    def test_all_sites_succeed_in_order(self, fitted_extractor, bundle, test_sites):
        result = learn_many(fitted_extractor, test_sites, annotator=bundle.annotator)
        assert len(result) == len(test_sites)
        assert not result.failures
        assert [o.site for o in result.outcomes] == [s.name for s in test_sites]
        assert [o.index for o in result.outcomes] == list(range(len(test_sites)))
        for outcome in result.outcomes:
            assert outcome.artifact is not None
            assert outcome.artifact.site == outcome.site

    def test_unparsable_site_is_isolated(self, fitted_extractor, bundle, test_sites):
        """A site whose pages fail to parse is a per-site failure only."""
        mixed = [test_sites[0], ("broken", [None]), test_sites[1]]
        result = learn_many(fitted_extractor, mixed, annotator=bundle.annotator)
        assert len(result) == 3
        assert [o.ok for o in result.outcomes] == [True, False, True]
        failure = result.outcomes[1]
        assert failure.site == "broken"
        assert failure.artifact is None
        assert failure.error
        # The healthy sites still produced artifacts.
        assert len(result.artifacts) == 2

    def test_empty_labels_site_is_isolated(self, fitted_extractor, test_sites):
        labels = [frozenset()] * len(test_sites)
        result = learn_many(fitted_extractor, test_sites, labels=labels)
        assert not result.successes
        assert all("no labels" in o.error for o in result.failures)

    def test_explicit_labels_must_pair_up(self, fitted_extractor, test_sites):
        with pytest.raises(ValueError, match="must pair up"):
            learn_many(fitted_extractor, test_sites, labels=[frozenset()])

    def test_no_labels_no_annotator_is_per_site_failure(
        self, fitted_extractor, test_sites
    ):
        result = learn_many(fitted_extractor, test_sites[:1])
        assert not result.successes
        assert "no labels and no annotator" in result.failures[0].error

    def test_process_pool_matches_serial(self, fitted_extractor, bundle, test_sites):
        serial = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator,
            executor=SerialExecutor(),
        )
        pooled = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator,
            executor=ProcessPoolExecutor(max_workers=2),
        )
        assert [o.artifact.rule for o in serial.successes] == [
            o.artifact.rule for o in pooled.successes
        ]


class TestApplyMany:
    def test_apply_matches_direct_extraction(
        self, fitted_extractor, bundle, test_sites
    ):
        learned = learn_many(fitted_extractor, test_sites, annotator=bundle.annotator)
        applied = apply_many(learned.artifacts, test_sites)
        assert not applied.failures
        for outcome, generated in zip(applied.outcomes, test_sites):
            assert outcome.extracted == outcome.artifact.apply(generated.site)

    def test_apply_isolates_bad_sites(self, fitted_extractor, bundle, test_sites):
        learned = learn_many(fitted_extractor, test_sites, annotator=bundle.annotator)
        artifacts = learned.artifacts[:2]
        targets = [test_sites[0], ("broken", [None])]
        result = apply_many(artifacts, targets)
        assert [o.ok for o in result.outcomes] == [True, False]
        assert result.outcomes[1].error

    def test_length_mismatch_rejected(self, fitted_extractor, bundle, test_sites):
        learned = learn_many(fitted_extractor, test_sites, annotator=bundle.annotator)
        with pytest.raises(ValueError, match="must pair up"):
            apply_many(learned.artifacts, test_sites[:1])


class TestExecutors:
    def test_resolve_shorthands(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("process"), ProcessPoolExecutor)
        custom = SerialExecutor()
        assert resolve_executor(custom) is custom

    def test_resolve_rejects_garbage(self):
        with pytest.raises(ValueError, match="executor"):
            resolve_executor(42)

    def test_chunksize_scales_with_batch(self):
        """Chunks scale to len(items) / workers (4 chunks per worker)
        instead of concurrent.futures' default of 1."""
        pool = ProcessPoolExecutor(max_workers=4)
        assert pool._chunksize(1) == 1
        assert pool._chunksize(16) == 1
        assert pool._chunksize(64) == 4
        assert pool._chunksize(1000) == 63  # ceil(1000 / 16)
