"""Scaling regressions for enumeration (paper Sec. 3's n x n remark).

"If given all possible n^2 labels on an n x n table, the 2^(n^2) subsets
result in only n^2 + 2n + 1 unique wrappers" — check the closed form,
and that call counts track the theorems as the instance grows.
"""

import pytest

from repro.enumeration import enumerate_bottom_up, enumerate_top_down
from repro.wrappers.table import Grid, TableInductor


@pytest.mark.parametrize("n", [2, 3, 4])
class TestFullGridWrapperSpace:
    def test_closed_form_size(self, n):
        grid = Grid(n, n)
        labels = grid.all_cells()
        result = enumerate_top_down(TableInductor(), grid, labels)
        assert result.size == n * n + 2 * n + 1

    def test_top_down_calls_equal_k(self, n):
        grid = Grid(n, n)
        result = enumerate_top_down(TableInductor(), grid, grid.all_cells())
        assert result.inductor_calls == result.size

    def test_bottom_up_within_bound(self, n):
        grid = Grid(n, n)
        labels = grid.all_cells()
        result = enumerate_bottom_up(TableInductor(), grid, labels)
        assert result.inductor_calls <= result.size * len(labels)

    def test_bottom_up_agrees_with_top_down(self, n):
        grid = Grid(n, n)
        labels = grid.all_cells()
        bottom_up = enumerate_bottom_up(TableInductor(), grid, labels)
        top_down = enumerate_top_down(TableInductor(), grid, labels)
        assert set(bottom_up.wrappers) == set(top_down.wrappers)


class TestRectangularGrids:
    def test_rows_by_cols_closed_form(self):
        # For an r x c grid with all labels: every cell, every row,
        # every column, plus the whole table.
        grid = Grid(3, 5)
        result = enumerate_top_down(TableInductor(), grid, grid.all_cells())
        assert result.size == 3 * 5 + 3 + 5 + 1

    def test_single_row_grid(self):
        """With one row, every label shares row=0, so the whole-table
        wrapper is unreachable: the space is the 4 cells plus the row."""
        grid = Grid(1, 4)
        result = enumerate_top_down(TableInductor(), grid, grid.all_cells())
        rules = {w.rule() for w in result.wrappers}
        assert rules == {
            "cell[0,0]",
            "cell[0,1]",
            "cell[0,2]",
            "cell[0,3]",
            "row[0]",
        }
