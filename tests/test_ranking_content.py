"""Tests for the domain-specific content-feature extension (Sec. 6.1)."""

import pytest

from repro.ranking.annotation import AnnotationModel
from repro.ranking.content import (
    HAS_PHONE,
    HAS_ZIPCODE,
    ContentFeature,
    ContentModel,
    regex_feature,
)
from repro.ranking.publication import PublicationModel
from repro.ranking.scorer import WrapperScorer
from repro.site import Site
from repro.wrappers.xpath_inductor import XPathInductor


@pytest.fixture()
def site():
    rows = "".join(
        f"<tr><td><u>STORE {i}</u></td><td>{i} MAIN ST</td>"
        f"<td>{38650 + i}</td><td>662-534-{1000 + i}</td></tr>"
        for i in range(1, 6)
    )
    return Site.from_html("content", [f"<table>{rows}</table>"])


def nodes_of_column(site, column):
    """Node ids of the column-th td text in every row (1-based)."""
    found = []
    for node_id in site.iter_text_node_ids():
        node = site.text_node(node_id)
        parent = node.parent if node.parent.tag != "u" else node.parent.parent
        if parent.tag == "td" and parent.child_number() == column:
            found.append(node_id)
    return frozenset(found)


class TestContentFeature:
    def test_zipcode_fraction(self, site):
        zips = nodes_of_column(site, 3)
        assert HAS_ZIPCODE.fraction(site, zips) == 1.0
        names = nodes_of_column(site, 1)
        assert HAS_ZIPCODE.fraction(site, names) == 0.0

    def test_phone_fraction(self, site):
        phones = nodes_of_column(site, 4)
        assert HAS_PHONE.fraction(site, phones) == 1.0

    def test_empty_extraction(self, site):
        assert HAS_ZIPCODE.fraction(site, frozenset()) == 0.0

    def test_regex_feature_factory(self):
        feature = regex_feature("digits", r"^\d+$")
        assert feature.name == "digits"
        assert feature.predicate("123")
        assert not feature.predicate("x")

    def test_custom_predicate(self, site):
        caps = ContentFeature("all-caps", lambda t: t.isupper())
        names = nodes_of_column(site, 1)
        assert caps.fraction(site, names) == 1.0


class TestContentModel:
    def test_fit_and_score(self, site):
        names = nodes_of_column(site, 1)
        zips = nodes_of_column(site, 3)
        model = ContentModel.fit([HAS_ZIPCODE], [(site, names)])
        # Gold name lists contain no zipcodes; a zip-free candidate
        # scores higher than an all-zip candidate.
        assert model.log_prob(site, names) > model.log_prob(site, zips)

    def test_fit_requires_features(self, site):
        with pytest.raises(ValueError):
            ContentModel.fit([], [(site, nodes_of_column(site, 1))])

    def test_fit_requires_gold(self, site):
        with pytest.raises(ValueError):
            ContentModel.fit([HAS_ZIPCODE], [(site, frozenset())])


class TestScorerIntegration:
    def test_content_term_enters_score(self, site):
        names = nodes_of_column(site, 1)
        content = ContentModel.fit([HAS_ZIPCODE], [(site, names)])
        scorer = WrapperScorer(
            AnnotationModel.from_rates(p=0.9, r=0.5),
            PublicationModel.fit([(site, names)]),
            content_model=content,
        )
        wrapper = XPathInductor().induce(site, names)
        ranked = scorer.score_wrapper(site, wrapper, names)
        assert ranked.log_content != 0.0
        assert ranked.score == pytest.approx(
            ranked.log_annotation + ranked.log_publication + ranked.log_content
        )

    def test_content_breaks_structural_ties(self, site):
        """Names and zip columns are structurally symmetric; the content
        feature is what separates them for a label-free scorer."""
        names = nodes_of_column(site, 1)
        zips = nodes_of_column(site, 3)
        content = ContentModel.fit(
            [HAS_ZIPCODE], [(site, names)]
        )
        scorer = WrapperScorer(
            None,
            PublicationModel.fit([(site, names)]),
            content_model=content,
        )
        inductor = XPathInductor()
        candidates = [
            inductor.induce(site, names),
            inductor.induce(site, zips),
        ]
        ranked = scorer.rank(site, candidates, frozenset())
        assert ranked[0].extracted == names
