"""Evaluator equivalence: compiled/indexed evaluation vs the reference.

Property-style suites over sitegen-generated pages (DEALERS, DISC,
PRODUCTS) plus adversarial hand-written pages:

- the compiled xpath evaluator must match the tree-walking interpreter
  node-for-node (same node objects, same order) for child/descendant
  steps, positional and attribute predicates, and ``text()`` tails —
  on a fixed fragment-covering path catalog and on seeded random paths
  generated from each page's own tags/attributes;
- engine-backed wrapper extraction (posting trie / span tables) must
  be bitwise identical to the seed per-call semantics, re-implemented
  here verbatim as oracles.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import EvaluationEngine
from repro.htmldom.dom import TextNode
from repro.xpathlang import compile_xpath, evaluate, parse_xpath
from repro.wrappers.hlrt import HLRTInductor
from repro.wrappers.lr import LRInductor
from repro.wrappers.xpath_inductor import XPathInductor, _index_for

#: Fragment-covering catalog: child + descendant axes, positional and
#: attribute predicates (alone, stacked, and ordered), text() tails,
#: wildcards, and paths that match nothing.
PATH_CATALOG = [
    "/html",
    "//html",
    "//*",
    "//table",
    "//td",
    "//td[1]",
    "//td[2]",
    "//td[7]",
    "//tr[2]/td",
    "//table[1]/tr/td",
    "//tr/td[1]",
    "//td/text()",
    "//tr/td[2]/text()",
    "//u/text()",
    "/html/body//u/text()",
    "//div//tr/td[1]",
    "//*[2]",
    "//*[2]/text()",
    "//div[@class='dealerlinks']//td/text()",
    "//td[@class='missing']",
    "//span[@class='name']/text()",
    "//li[3]",
    "//table//td[2]",
    "//nosuchtag//td",
    "//body/*[1]",
]


def _sample_pages():
    """A spread of generated pages from every dataset family."""
    from repro.datasets.dealers import generate_dealers
    from repro.datasets.disc import generate_disc
    from repro.datasets.products import generate_products

    pages = []
    for generated in generate_dealers(n_sites=4, pages_per_site=3, seed=11).sites:
        pages.extend(generated.site.pages)
    for generated in generate_disc(n_sites=2, seed=23).sites:
        pages.extend(generated.site.pages[:3])
    for generated in generate_products(n_sites=2, pages_per_site=3, seed=37).sites:
        pages.extend(generated.site.pages)
    return pages


def _sample_sites():
    from repro.datasets.dealers import generate_dealers

    return [g.site for g in generate_dealers(n_sites=5, pages_per_site=4, seed=7).sites]


def _assert_same_nodes(path, page, reference, compiled):
    assert len(reference) == len(compiled), (str(path), page.page_index)
    for expected, got in zip(reference, compiled):
        assert expected is got, (str(path), page.page_index, expected, got)


class TestCompiledPathEquivalence:
    def test_catalog_paths_match_interpreter_node_for_node(self):
        pages = _sample_pages()
        assert len(pages) >= 20
        for page in pages:
            for path in PATH_CATALOG:
                _assert_same_nodes(
                    path, page, evaluate(path, page), compile_xpath(path).evaluate(page)
                )

    def test_random_paths_match_interpreter(self):
        """Seeded random paths built from each page's own vocabulary."""
        rng = random.Random(1234)
        pages = _sample_pages()
        for page in pages:
            tags = sorted({e.tag for e in page.root.iter_elements()})
            attrs = sorted(
                {
                    (name, value)
                    for e in page.root.iter_elements()
                    for name, value in e.attrs.items()
                }
            )
            for _ in range(30):
                steps = []
                for depth in range(rng.randint(1, 4)):
                    axis = rng.choice(["/", "//"]) if depth else "//"
                    test = rng.choice(tags + ["*"])
                    predicates = ""
                    if rng.random() < 0.4:
                        predicates += f"[{rng.randint(1, 4)}]"
                    if attrs and rng.random() < 0.4:
                        name, value = rng.choice(attrs)
                        quoted = value.replace("\\", "\\\\").replace("'", "\\'")
                        predicates += f"[@{name}='{quoted}']"
                    steps.append(f"{axis}{test}{predicates}")
                text = "/text()" if rng.random() < 0.5 else ""
                path = "".join(steps) + text
                _assert_same_nodes(
                    path, page, evaluate(path, page), compile_xpath(path).evaluate(page)
                )

    def test_learned_wrapper_paths_match_interpreter(self):
        """Rendered rules of induced wrappers, evaluated both ways."""
        inductor = XPathInductor()
        for site in _sample_sites():
            universe = sorted(inductor.candidates(site))
            rng = random.Random(99)
            for _ in range(10):
                labels = frozenset(rng.sample(universe, k=rng.randint(1, 5)))
                wrapper = inductor.induce(site, labels)
                path = wrapper.to_xpath()
                for page in site.pages:
                    _assert_same_nodes(
                        path,
                        page,
                        evaluate(path, page),
                        compile_xpath(path).evaluate(page),
                    )

    def test_memoized_evaluation_is_stable(self):
        page = _sample_pages()[0]
        compiled = compile_xpath("//td/text()")
        first = compiled.evaluate_cached(page)
        second = compiled.evaluate_cached(page)
        assert first is second  # memo hit, shared tuple
        assert list(first) == evaluate("//td/text()", page)

    def test_compile_xpath_deduplicates(self):
        a = compile_xpath("//tr/td[2]/text()")
        b = compile_xpath(parse_xpath("//tr/td[2]/text()"))
        assert a is b


# -- wrapper extraction vs seed semantics -----------------------------------


def _seed_xpath_extract(wrapper, site):
    """The seed's per-call subset test, verbatim."""
    index = _index_for(site)
    wanted = wrapper.features
    return frozenset(
        node_id
        for node_id, feature_set in index.as_set.items()
        if wanted <= feature_set
    )


def _seed_lr_extract(wrapper, site):
    """The seed's page-walking LR extraction, verbatim."""
    found = set()
    for page in site.pages:
        source = page.source
        for node in page.nodes:
            if not isinstance(node, TextNode) or node.start < 0:
                continue
            if node.start < len(wrapper.left):
                continue
            if not source.startswith(wrapper.left, node.start - len(wrapper.left)):
                continue
            if not source.startswith(wrapper.right, node.end):
                continue
            found.add(node.node_id)
    return frozenset(found)


def _seed_hlrt_extract(wrapper, site):
    """The seed's windowed HLRT extraction, verbatim."""
    found = set()
    for page in site.pages:
        source = page.source
        window_start = 0
        window_end = len(source)
        if wrapper.head:
            at = source.find(wrapper.head)
            if at == -1:
                continue
            window_start = at + len(wrapper.head)
        if wrapper.tail:
            at = source.find(wrapper.tail, window_start)
            if at != -1:
                window_end = at
        for node in page.nodes:
            if not isinstance(node, TextNode) or node.start < 0:
                continue
            if node.start < window_start or node.end > window_end:
                continue
            if node.start < len(wrapper.left):
                continue
            if not source.startswith(wrapper.left, node.start - len(wrapper.left)):
                continue
            if not source.startswith(wrapper.right, node.end):
                continue
            found.add(node.node_id)
    return frozenset(found)


@pytest.mark.parametrize(
    "inductor,oracle",
    [
        (XPathInductor(), _seed_xpath_extract),
        (LRInductor(), _seed_lr_extract),
        (HLRTInductor(), _seed_hlrt_extract),
    ],
    ids=["xpath", "lr", "hlrt"],
)
def test_engine_extraction_matches_seed_semantics(inductor, oracle):
    engine = EvaluationEngine()
    for site in _sample_sites():
        universe = sorted(inductor.candidates(site))
        rng = random.Random(4321)
        wrappers = [
            inductor.induce(site, frozenset(rng.sample(universe, k=k)))
            for k in (1, 1, 2, 3, 5, 8)
        ]
        batched = engine.batch_extract(site, wrappers)
        for wrapper, extracted in zip(wrappers, batched):
            expected = oracle(wrapper, site)
            assert extracted == expected, wrapper.rule()
            # Single-path and memoized extraction agree with the batch.
            assert engine.extract(site, wrapper) == expected
            assert wrapper.extract(site) == expected


@pytest.mark.parametrize(
    "inductor,oracle",
    [
        (XPathInductor(), _seed_xpath_extract),
        (LRInductor(), _seed_lr_extract),
        (HLRTInductor(), _seed_hlrt_extract),
    ],
    ids=["xpath", "lr", "hlrt"],
)
def test_arena_backed_extraction_matches_dict_backed(tmp_path, inductor, oracle):
    """The PR-7 correctness bar: a site attached from its packed arena
    segment must extract bitwise-identically to the dict-backed site —
    and both must match the seed oracles run over the attached pages."""
    from repro.arena import ensure_arena, load_site

    engine = EvaluationEngine()
    for site in _sample_sites():
        universe = sorted(inductor.candidates(site))
        rng = random.Random(8765)
        wrappers = [
            inductor.induce(site, frozenset(rng.sample(universe, k=k)))
            for k in (1, 2, 3, 5)
        ]
        expected = [engine.extract(site, wrapper) for wrapper in wrappers]
        binding = ensure_arena(
            site, directory=str(tmp_path), include_postings=True
        )
        attached = load_site(binding.handle)
        arena_engine = EvaluationEngine()
        for wrapper, reference in zip(wrappers, expected):
            assert arena_engine.extract(attached, wrapper) == reference
            assert wrapper.extract(attached) == reference
            assert oracle(wrapper, attached) == reference


def test_empty_feature_wrapper_extracts_every_text_node():
    """No constraints -> the whole candidate universe (seed behavior)."""
    from repro.wrappers.xpath_inductor import XPathWrapper

    site = _sample_sites()[0]
    wrapper = XPathWrapper(features=frozenset())
    assert wrapper.extract(site) == site.text_node_ids()


def test_foreign_site_features_extract_nothing():
    """Features absent from a site have empty postings -> empty result."""
    from repro.wrappers.xpath_inductor import XPathWrapper

    site = _sample_sites()[0]
    wrapper = XPathWrapper(features=frozenset({((1, "tag"), "nosuchtag")}))
    assert wrapper.extract(site) == frozenset()
