"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_parses(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.dataset == "dealers"
        assert args.inductor == "xpath"
        assert args.methods == "naive,ntw"

    def test_experiment_custom(self):
        args = build_parser().parse_args(
            ["experiment", "--dataset", "disc", "--inductor", "lr", "--sites", "4"]
        )
        assert args.dataset == "disc"
        assert args.inductor == "lr"
        assert args.sites == 4

    def test_unknown_inductor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--inductor", "magic"])


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "NAIVE rule" in out
        assert "NTW rule" in out
        assert "PORTER FURNITURE" in out

    def test_experiment_runs(self, capsys):
        code = main(
            [
                "experiment",
                "--dataset",
                "dealers",
                "--sites",
                "6",
                "--pages",
                "4",
                "--per-site",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "naive" in out
        assert "ntw" in out
        assert "f1" in out

    def test_experiment_lr(self, capsys):
        assert (
            main(
                [
                    "experiment",
                    "--dataset",
                    "dealers",
                    "--inductor",
                    "lr",
                    "--sites",
                    "4",
                    "--pages",
                    "4",
                    "--methods",
                    "ntw",
                ]
            )
            == 0
        )
        assert "ntw" in capsys.readouterr().out

    def test_enumerate_runs(self, capsys):
        assert (
            main(
                ["enumerate", "--sites", "3", "--pages", "4", "--max-labels", "12"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "TopDown" in out
        assert "BottomUp" in out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--dataset", "nope", "--sites", "2"])
