"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_parses(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.dataset == "dealers"
        assert args.inductor == "xpath"
        assert args.methods == "naive,ntw"

    def test_experiment_custom(self):
        args = build_parser().parse_args(
            ["experiment", "--dataset", "disc", "--inductor", "lr", "--sites", "4"]
        )
        assert args.dataset == "disc"
        assert args.inductor == "lr"
        assert args.sites == 4

    def test_unknown_inductor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--inductor", "magic"])


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "NAIVE rule" in out
        assert "NTW rule" in out
        assert "PORTER FURNITURE" in out

    def test_experiment_runs(self, capsys):
        code = main(
            [
                "experiment",
                "--dataset",
                "dealers",
                "--sites",
                "6",
                "--pages",
                "4",
                "--per-site",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "naive" in out
        assert "ntw" in out
        assert "f1" in out

    def test_experiment_lr(self, capsys):
        assert (
            main(
                [
                    "experiment",
                    "--dataset",
                    "dealers",
                    "--inductor",
                    "lr",
                    "--sites",
                    "4",
                    "--pages",
                    "4",
                    "--methods",
                    "ntw",
                ]
            )
            == 0
        )
        assert "ntw" in capsys.readouterr().out

    def test_enumerate_runs(self, capsys):
        assert (
            main(
                ["enumerate", "--sites", "3", "--pages", "4", "--max-labels", "12"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "TopDown" in out
        assert "BottomUp" in out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--dataset", "nope", "--sites", "2"])


class TestLearnApply:
    """The learn -> save -> load -> apply loop, end to end on dealers."""

    DATASET_ARGS = ["--dataset", "dealers", "--sites", "4", "--pages", "4"]

    def test_learn_then_apply(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert (
            main(["learn", *self.DATASET_ARGS, "--out", str(out_dir)]) == 0
        )
        out = capsys.readouterr().out
        assert "learned 2/2 sites ok" in out
        saved = sorted(path.name for path in out_dir.glob("*.json"))
        assert saved == ["dealers-001.json", "dealers-003.json"]

        assert (
            main(["apply", *self.DATASET_ARGS, "--artifacts", str(out_dir)]) == 0
        )
        out = capsys.readouterr().out
        assert "applied 2/2 sites ok" in out
        assert "F1=" in out

    def test_learn_naive_method(self, tmp_path, capsys):
        out_dir = tmp_path / "naive"
        code = main(
            ["learn", *self.DATASET_ARGS, "--method", "naive", "--out", str(out_dir)]
        )
        assert code == 0
        assert list(out_dir.glob("*.json"))

    def test_apply_missing_artifacts_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no artifacts"):
            main(["apply", *self.DATASET_ARGS, "--artifacts", str(tmp_path)])

    def test_apply_unmatched_artifacts_exits(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["learn", *self.DATASET_ARGS, "--out", str(out_dir)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="no artifact matches"):
            main(
                [
                    "apply",
                    "--dataset",
                    "disc",
                    "--sites",
                    "2",
                    "--artifacts",
                    str(out_dir),
                ]
            )


class TestRegistryFlows:
    """learn/apply/monitor through ``--registry`` (the wrapper store)."""

    DATASET_ARGS = ["--dataset", "dealers", "--sites", "4", "--pages", "4"]

    def test_learn_into_registry_then_apply_and_monitor(
        self, tmp_path, capsys
    ):
        store = tmp_path / "registry"
        assert (
            main(["learn", *self.DATASET_ARGS, "--registry", str(store)]) == 0
        )
        out = capsys.readouterr().out
        assert "learned 2/2 sites ok" in out
        assert f"registry {store}/" in out
        assert " v1" in out

        from repro.service import WrapperRegistry

        fleet = WrapperRegistry(store).artifacts_by_site()
        assert sorted(fleet) == ["dealers-001", "dealers-003"]

        assert (
            main(["apply", *self.DATASET_ARGS, "--registry", str(store)]) == 0
        )
        assert "applied 2/2 sites ok" in capsys.readouterr().out
        assert (
            main(["monitor", *self.DATASET_ARGS, "--registry", str(store)])
            == 0
        )
        assert "2 healthy" in capsys.readouterr().out

    def test_save_repaired_appends_registry_versions(self, tmp_path, capsys):
        store = tmp_path / "registry"
        assert (
            main(["learn", *self.DATASET_ARGS, "--registry", str(store)]) == 0
        )
        capsys.readouterr()
        code = main(
            [
                "apply",
                *self.DATASET_ARGS,
                "--registry",
                str(store),
                "--drift",
                "high",
                "--self-repair",
                "--save-repaired",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "-> registry v2" in out

        from repro.service import WrapperRegistry

        registry = WrapperRegistry(store)
        for fingerprint in registry.fingerprints():
            chain = registry.versions(fingerprint)
            assert [r.origin for r in chain] == ["learn", "repair"]
            assert chain[-1].parent_version == 1

    def test_apply_needs_artifacts_or_registry(self):
        with pytest.raises(SystemExit, match="--artifacts DIR or --registry"):
            main(["apply", *self.DATASET_ARGS])
        with pytest.raises(SystemExit, match="--artifacts DIR or --registry"):
            main(["monitor", *self.DATASET_ARGS])

    def test_empty_registry_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no wrappers registered"):
            main(
                [
                    "apply",
                    *self.DATASET_ARGS,
                    "--registry",
                    str(tmp_path / "empty"),
                ]
            )

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.registry is None and args.dataset == "none"
        assert args.port == 0 and args.workers == 2
        assert args.max_inflight_per_client == 8


class TestApplyStream:
    """apply --stream: NDJSON page records in, NDJSON outcomes out."""

    @pytest.fixture()
    def artifact_dir(self, tmp_path):
        """One saved artifact for a tiny hand-rolled site."""
        from repro.annotators.dictionary import DictionaryAnnotator
        from repro.api import Extractor, ExtractorConfig
        from repro.site import Site

        site = Site.from_html("shop", [self.page("ALPHA", "BETA")])
        labels = DictionaryAnnotator(["ALPHA", "BETA"]).annotate(site)
        extractor = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
        artifact = extractor.learn(site, labels, site_name="shop")
        out_dir = tmp_path / "wrappers"
        out_dir.mkdir()
        artifact.save(out_dir / "shop.json")
        return out_dir

    @staticmethod
    def page(*names):
        rows = "".join(f"<tr><td><u>{name}</u></td></tr>" for name in names)
        return f"<div class='x'><table>{rows}</table></div>"

    def run_stream(self, monkeypatch, capsys, artifact_dir, lines, extra=()):
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(line + "\n" for line in lines))
        )
        code = main(
            ["apply", "--artifacts", str(artifact_dir), "--stream", *extra]
        )
        out = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        return code, out

    def test_stream_extracts_per_record(
        self, monkeypatch, capsys, artifact_dir
    ):
        import json

        lines = [
            json.dumps({"site": "shop", "pages": [self.page("GAMMA", "DELTA")]}),
            json.dumps({"site": "shop", "pages": [self.page("EPSILON")]}),
        ]
        code, out = self.run_stream(monkeypatch, capsys, artifact_dir, lines)
        assert code == 0
        assert [record["ok"] for record in out] == [True, True]
        assert sorted(record["count"] for record in out) == [1, 2]
        for record in out:
            assert all(
                isinstance(pair, list) and len(pair) == 2
                for pair in record["nodes"]
            )

    def test_stream_texts_resolves_extractions(
        self, monkeypatch, capsys, artifact_dir
    ):
        import json

        lines = [
            json.dumps({"site": "shop", "pages": [self.page("GAMMA", "DELTA")]})
        ]
        code, out = self.run_stream(
            monkeypatch, capsys, artifact_dir, lines, extra=["--texts"]
        )
        assert code == 0
        assert out[0]["texts"] == ["GAMMA", "DELTA"]

    def test_stream_isolates_bad_lines_and_unknown_sites(
        self, monkeypatch, capsys, artifact_dir
    ):
        import json

        lines = [
            "not json at all",
            json.dumps({"site": "never-learned", "pages": ["<p>x</p>"]}),
            json.dumps({"site": "shop", "pages": [self.page("ZETA")]}),
        ]
        code, out = self.run_stream(monkeypatch, capsys, artifact_dir, lines)
        assert code == 0  # the good record succeeded
        by_ok = {record["ok"] for record in out}
        assert by_ok == {True, False}
        errors = [record["error"] for record in out if not record["ok"]]
        assert any("bad page record" in error for error in errors)
        assert any("no artifact" in error for error in errors)
        # Pre-submission rejects carry the stdin line number instead of
        # a submission index.
        assert sorted(
            record["line"] for record in out if not record["ok"]
        ) == [1, 2]
        assert [record["index"] for record in out if record["ok"]] == [0]

    def test_stream_all_failures_exit_nonzero(
        self, monkeypatch, capsys, artifact_dir
    ):
        code, out = self.run_stream(
            monkeypatch, capsys, artifact_dir, ["{broken"]
        )
        assert code == 1
        assert not out[0]["ok"]

    def test_stream_rejects_non_list_pages(
        self, monkeypatch, capsys, artifact_dir
    ):
        """A string 'pages' value must be a bad-record error, not be
        iterated character by character into garbage pages."""
        import json

        lines = [json.dumps({"site": "shop", "pages": "<p>x</p>"})]
        code, out = self.run_stream(monkeypatch, capsys, artifact_dir, lines)
        assert code == 1
        assert not out[0]["ok"]
        assert "must be a list" in out[0]["error"]

    def test_stream_parallel_workers_cover_every_record(
        self, monkeypatch, capsys, artifact_dir
    ):
        import json

        lines = [
            json.dumps({"site": "shop", "pages": [self.page(f"NAME{i}")]})
            for i in range(6)
        ]
        code, out = self.run_stream(
            monkeypatch, capsys, artifact_dir, lines, extra=["--workers", "2"]
        )
        assert code == 0
        assert len(out) == 6
        assert all(record["ok"] and record["count"] == 1 for record in out)
        # Submission indices pair outcomes to inputs even when the same
        # site name recurs and completions interleave across workers.
        assert sorted(record["index"] for record in out) == list(range(6))


class TestListComponents:
    def test_lists_all_registries(self, capsys):
        assert main(["list-components"]) == 0
        out = capsys.readouterr().out
        for expected in ("inductors:", "annotators:", "enumerators:", "datasets:"):
            assert expected in out
        assert "xpath" in out
        assert "dealers" in out
        assert "ntw" in out


class TestLifecycleCommands:
    """monitor + apply --self-repair: the wrapper lifecycle from the shell."""

    DATASET_ARGS = ["--dataset", "dealers", "--sites", "6", "--pages", "5"]

    @pytest.fixture(scope="class")
    def artifact_dir(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("lifecycle-artifacts")
        assert main(["learn", *self.DATASET_ARGS, "--out", str(out_dir)]) == 0
        return out_dir

    def test_monitor_healthy_exits_zero(self, capsys, artifact_dir):
        code = main(
            ["monitor", *self.DATASET_ARGS, "--artifacts", str(artifact_dir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 drifted" in out
        assert "ok" in out

    def test_monitor_drift_drill_exits_nonzero(self, capsys, artifact_dir):
        code = main(
            [
                "monitor",
                *self.DATASET_ARGS,
                "--artifacts",
                str(artifact_dir),
                "--drift",
                "medium",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "DRIFTED" in out

    def test_monitor_json_mode(self, capsys, artifact_dir):
        import json

        code = main(
            [
                "monitor",
                *self.DATASET_ARGS,
                "--artifacts",
                str(artifact_dir),
                "--drift",
                "high",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        # NDJSON contract: every stdout line parses; prose goes to stderr.
        records = [json.loads(line) for line in captured.out.splitlines()]
        assert records and all(record["drifted"] for record in records)
        assert all("signals" in record for record in records)
        assert "monitored" in captured.err

    def test_apply_self_repair_drill_restores_f1(self, capsys, artifact_dir):
        """The CLI acceptance loop: drift the dataset, self-repair, and
        the post-repair mean F1 matches the healthy apply."""
        assert (
            main(
                ["apply", *self.DATASET_ARGS, "--artifacts", str(artifact_dir)]
            )
            == 0
        )
        healthy = capsys.readouterr().out
        code = main(
            [
                "apply",
                *self.DATASET_ARGS,
                "--artifacts",
                str(artifact_dir),
                "--drift",
                "medium",
                "--self-repair",
            ]
        )
        repaired = capsys.readouterr().out
        assert code == 0
        assert "[repaired:" in repaired
        assert "repaired" in repaired.splitlines()[-1]

        def mean_f1(text):
            for line in text.splitlines():
                if "mean F1 vs gold:" in line:
                    return float(line.split("mean F1 vs gold:")[1].split(";")[0])
            raise AssertionError(f"no mean F1 in {text!r}")

        assert mean_f1(repaired) >= mean_f1(healthy) - 1e-9

    def test_apply_drift_without_repair_degrades(self, capsys, artifact_dir):
        code = main(
            [
                "apply",
                *self.DATASET_ARGS,
                "--artifacts",
                str(artifact_dir),
                "--drift",
                "medium",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # extraction "succeeds" — that is the problem
        assert "[repaired" not in out
        assert "F1=0.00" in out  # silently extracting garbage

    def test_save_repaired_writes_back(
        self, capsys, artifact_dir, tmp_path
    ):
        import shutil

        work = tmp_path / "artifacts"
        shutil.copytree(artifact_dir, work)
        before = {p.name: p.read_text() for p in work.glob("*.json")}
        code = main(
            [
                "apply",
                *self.DATASET_ARGS,
                "--artifacts",
                str(work),
                "--drift",
                "medium",
                "--self-repair",
                "--save-repaired",
            ]
        )
        capsys.readouterr()
        assert code == 0
        after = {p.name: p.read_text() for p in work.glob("*.json")}
        assert set(after) == set(before)
        assert any(after[name] != before[name] for name in after)
        # Repaired artifacts record their lineage.
        import json

        repaired = [
            json.loads(text)
            for name, text in after.items()
            if text != before[name]
        ]
        assert all(
            payload["provenance"]["repairs"][-1]["strategy"]
            in ("alternate", "relearn")
            for payload in repaired
        )


class TestStreamSelfRepair:
    """apply --stream --self-repair: structural ladder repair mid-crawl."""

    @staticmethod
    def page(cls, *names):
        rows = "".join(
            f"<tr><td class='{cls}'><u>{name}</u></td></tr>" for name in names
        )
        return f"<html><body><table>{rows}</table></body></html>"

    @pytest.fixture()
    def laddered_artifact_dir(self, tmp_path):
        """A class-keyed winner with a structure-keyed alternate: the
        redesign drill the ladder exists for."""
        from repro.annotators.dictionary import DictionaryAnnotator
        from repro.api import WrapperArtifact
        from repro.lifecycle import baseline_from_extraction
        from repro.site import Site
        from repro.wrappers.xpath_inductor import XPathWrapper

        site = Site.from_html(
            "shop", [self.page("item", "ALPHA", "BETA"), self.page("item", "GAMMA")]
        )
        labels = DictionaryAnnotator(["ALPHA", "GAMMA"]).annotate(site)
        winner = XPathWrapper(
            features=frozenset(
                {((1, "tag"), "u"), ((2, "tag"), "td"), ((2, "@class"), "item")}
            )
        )
        alternate = XPathWrapper(features=frozenset({((1, "tag"), "u")}))
        artifact = WrapperArtifact(
            wrapper_spec=winner.to_spec(),
            rule=winner.rule(),
            site="shop",
            inductor="xpath",
            method="ntw",
            alternates=[
                {
                    "wrapper_spec": alternate.to_spec(),
                    "rule": alternate.rule(),
                    "score": {},
                }
            ],
            baseline=baseline_from_extraction(
                winner.extract(site), len(site), labels=labels
            ).to_dict(),
        )
        out_dir = tmp_path / "wrappers"
        out_dir.mkdir()
        artifact.save(out_dir / "shop.json")
        return out_dir

    def run_stream(self, monkeypatch, capsys, artifact_dir, lines, extra=()):
        import io
        import json

        monkeypatch.setattr(
            "sys.stdin", io.StringIO("".join(line + "\n" for line in lines))
        )
        code = main(
            ["apply", "--artifacts", str(artifact_dir), "--stream", *extra]
        )
        out = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        return code, out

    def test_drifted_stream_promotes_alternate_and_recovers(
        self, monkeypatch, capsys, laddered_artifact_dir
    ):
        import json

        lines = [
            json.dumps({"site": "shop", "pages": [self.page("item", "ONE", "TWO")]}),
            # The redesign: the winner's class key is renamed.
            json.dumps({"site": "shop", "pages": [self.page("cell", "THREE", "FOUR")]}),
            json.dumps({"site": "shop", "pages": [self.page("cell", "FIVE", "SIX")]}),
        ]
        code, out = self.run_stream(
            monkeypatch, capsys, laddered_artifact_dir, lines,
            extra=["--self-repair", "--texts"],
        )
        assert code == 0
        repairs = [record for record in out if "repair" in record]
        outcomes = {
            record["index"]: record for record in out if "index" in record
        }
        assert len(repairs) == 1
        assert repairs[0]["repair"]["ok"]
        assert repairs[0]["repair"]["strategy"] == "alternate"
        assert outcomes[0]["texts"] == ["ONE", "TWO"]       # healthy
        assert outcomes[1]["count"] == 0                    # the drifted miss
        assert outcomes[2]["texts"] == ["FIVE", "SIX"]      # repaired, live

    def test_healthy_stream_never_repairs(
        self, monkeypatch, capsys, laddered_artifact_dir
    ):
        import json

        lines = [
            json.dumps({"site": "shop", "pages": [self.page("item", "ONE")]})
            for _ in range(3)
        ]
        code, out = self.run_stream(
            monkeypatch, capsys, laddered_artifact_dir, lines,
            extra=["--self-repair"],
        )
        assert code == 0
        assert not [record for record in out if "repair" in record]

    def test_failed_repair_backs_off(
        self, monkeypatch, capsys, tmp_path
    ):
        """An unrepairable site pays the cascade once, not per record."""
        import json

        from repro.annotators.dictionary import DictionaryAnnotator
        from repro.api import WrapperArtifact
        from repro.lifecycle import baseline_from_extraction
        from repro.site import Site
        from repro.wrappers.xpath_inductor import XPathWrapper

        site = Site.from_html("shop", [self.page("item", "ALPHA", "BETA")])
        labels = DictionaryAnnotator(["ALPHA"]).annotate(site)
        winner = XPathWrapper(
            features=frozenset({((1, "tag"), "u"), ((2, "@class"), "item")})
        )
        dead = XPathWrapper(
            features=frozenset({((1, "tag"), "u"), ((1, "childnum"), 99)})
        )
        artifact = WrapperArtifact(
            wrapper_spec=winner.to_spec(),
            rule=winner.rule(),
            site="shop",
            alternates=[
                {"wrapper_spec": dead.to_spec(), "rule": dead.rule(), "score": {}}
            ],
            baseline=baseline_from_extraction(
                winner.extract(site), len(site), labels=labels
            ).to_dict(),
        )
        out_dir = tmp_path / "wrappers"
        out_dir.mkdir()
        artifact.save(out_dir / "shop.json")
        lines = [
            json.dumps({"site": "shop", "pages": [self.page("cell", "X", "Y")]})
            for _ in range(3)
        ]
        code, out = self.run_stream(
            monkeypatch, capsys, out_dir, lines, extra=["--self-repair"]
        )
        assert code == 0
        repairs = [record for record in out if "repair" in record]
        assert len(repairs) == 1  # one failed cascade, then back off
        assert not repairs[0]["repair"]["ok"]


class TestSaveRepairedPaths:
    def test_save_repaired_overwrites_source_file(self, capsys, tmp_path):
        """Repaired artifacts go back to the file they were loaded from
        — not a site-named sibling that would make the directory claim
        one site twice and fail the next load."""
        from repro.api import load_artifacts

        args = ["--dataset", "dealers", "--sites", "4", "--pages", "4"]
        learn_dir = tmp_path / "learned"
        assert main(["learn", *args, "--out", str(learn_dir)]) == 0
        capsys.readouterr()
        work = tmp_path / "odd-names"
        work.mkdir()
        for index, path in enumerate(sorted(learn_dir.glob("*.json"))):
            (work / f"w{index}--name.json").write_text(path.read_text())
        code = main(
            [
                "apply",
                *args,
                "--artifacts",
                str(work),
                "--drift",
                "medium",
                "--self-repair",
                "--save-repaired",
            ]
        )
        capsys.readouterr()
        assert code == 0
        # No site-named siblings appeared; the directory still loads.
        assert sorted(p.name for p in work.glob("*.json")) == [
            "w0--name.json",
            "w1--name.json",
        ]
        load_artifacts(work)


class TestStreamFlagGuards:
    def test_stream_rejects_dataset_only_flags(self, tmp_path):
        with pytest.raises(SystemExit, match="--drift is a dataset-mode"):
            main(
                ["apply", "--artifacts", str(tmp_path), "--stream",
                 "--drift", "medium"]
            )
        with pytest.raises(SystemExit, match="--save-repaired needs"):
            main(
                ["apply", "--artifacts", str(tmp_path), "--stream",
                 "--self-repair", "--save-repaired"]
            )
