"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_parses(self):
        args = build_parser().parse_args(["demo"])
        assert args.command == "demo"

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.dataset == "dealers"
        assert args.inductor == "xpath"
        assert args.methods == "naive,ntw"

    def test_experiment_custom(self):
        args = build_parser().parse_args(
            ["experiment", "--dataset", "disc", "--inductor", "lr", "--sites", "4"]
        )
        assert args.dataset == "disc"
        assert args.inductor == "lr"
        assert args.sites == 4

    def test_unknown_inductor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--inductor", "magic"])


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "NAIVE rule" in out
        assert "NTW rule" in out
        assert "PORTER FURNITURE" in out

    def test_experiment_runs(self, capsys):
        code = main(
            [
                "experiment",
                "--dataset",
                "dealers",
                "--sites",
                "6",
                "--pages",
                "4",
                "--per-site",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "naive" in out
        assert "ntw" in out
        assert "f1" in out

    def test_experiment_lr(self, capsys):
        assert (
            main(
                [
                    "experiment",
                    "--dataset",
                    "dealers",
                    "--inductor",
                    "lr",
                    "--sites",
                    "4",
                    "--pages",
                    "4",
                    "--methods",
                    "ntw",
                ]
            )
            == 0
        )
        assert "ntw" in capsys.readouterr().out

    def test_enumerate_runs(self, capsys):
        assert (
            main(
                ["enumerate", "--sites", "3", "--pages", "4", "--max-labels", "12"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "TopDown" in out
        assert "BottomUp" in out

    def test_unknown_dataset_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "--dataset", "nope", "--sites", "2"])


class TestLearnApply:
    """The learn -> save -> load -> apply loop, end to end on dealers."""

    DATASET_ARGS = ["--dataset", "dealers", "--sites", "4", "--pages", "4"]

    def test_learn_then_apply(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert (
            main(["learn", *self.DATASET_ARGS, "--out", str(out_dir)]) == 0
        )
        out = capsys.readouterr().out
        assert "learned 2/2 sites ok" in out
        saved = sorted(path.name for path in out_dir.glob("*.json"))
        assert saved == ["dealers-001.json", "dealers-003.json"]

        assert (
            main(["apply", *self.DATASET_ARGS, "--artifacts", str(out_dir)]) == 0
        )
        out = capsys.readouterr().out
        assert "applied 2/2 sites ok" in out
        assert "F1=" in out

    def test_learn_naive_method(self, tmp_path, capsys):
        out_dir = tmp_path / "naive"
        code = main(
            ["learn", *self.DATASET_ARGS, "--method", "naive", "--out", str(out_dir)]
        )
        assert code == 0
        assert list(out_dir.glob("*.json"))

    def test_apply_missing_artifacts_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no artifacts"):
            main(["apply", *self.DATASET_ARGS, "--artifacts", str(tmp_path)])

    def test_apply_unmatched_artifacts_exits(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert main(["learn", *self.DATASET_ARGS, "--out", str(out_dir)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="no artifact matches"):
            main(
                [
                    "apply",
                    "--dataset",
                    "disc",
                    "--sites",
                    "2",
                    "--artifacts",
                    str(out_dir),
                ]
            )


class TestListComponents:
    def test_lists_all_registries(self, capsys):
        assert main(["list-components"]) == 0
        out = capsys.readouterr().out
        for expected in ("inductors:", "annotators:", "enumerators:", "datasets:"):
            assert expected in out
        assert "xpath" in out
        assert "dealers" in out
        assert "ntw" in out
