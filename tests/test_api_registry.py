"""Tests for the repro.api component registries."""

import pytest

from repro.api import (
    ANNOTATORS,
    DATASETS,
    ENUMERATORS,
    INDUCTORS,
    DatasetBundle,
    Registry,
    RegistryError,
    load_dataset,
)
from repro.wrappers.xpath_inductor import XPathInductor


class TestRegistry:
    def test_register_direct_and_get(self):
        registry = Registry("widget")
        registry.register("a", int)
        assert registry.get("a") is int
        assert "a" in registry

    def test_register_as_decorator(self):
        registry = Registry("widget")

        @registry.register("fancy")
        class Fancy:
            pass

        assert registry.get("fancy") is Fancy
        assert registry.create("fancy").__class__ is Fancy

    def test_duplicate_name_rejected(self):
        registry = Registry("widget")
        registry.register("a", int)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", float)

    def test_empty_name_rejected(self):
        registry = Registry("widget")
        with pytest.raises(ValueError, match="non-empty string"):
            registry.register("", int)

    def test_unknown_name_lists_known(self):
        registry = Registry("widget")
        registry.register("alpha", int)
        with pytest.raises(RegistryError, match="alpha"):
            registry.get("beta")

    def test_names_sorted(self):
        registry = Registry("widget")
        registry.register("zz", int)
        registry.register("aa", int)
        assert registry.names() == ("aa", "zz")
        assert list(registry) == ["aa", "zz"]
        assert len(registry) == 2

    def test_metadata_attached_at_registration(self):
        registry = Registry("widget")
        registry.register("a", int, corpus="grid", experimental=True)
        registry.register("b", int)
        assert registry.meta("a") == {"corpus": "grid", "experimental": True}
        assert registry.meta("b") == {}
        with pytest.raises(RegistryError):
            registry.meta("missing")


class TestBuiltinRegistries:
    def test_inductors(self):
        assert {"xpath", "lr", "hlrt", "table"} <= set(INDUCTORS.names())
        assert isinstance(INDUCTORS.create("xpath"), XPathInductor)

    def test_site_inductors_exclude_grid_corpus(self):
        from repro.api.registry import site_inductor_names

        names = site_inductor_names()
        assert {"xpath", "lr", "hlrt"} <= set(names)
        assert "table" not in names

    def test_annotators(self):
        assert {"dictionary", "regex", "zipcode"} <= set(ANNOTATORS.names())

    def test_enumerators(self):
        assert {"top_down", "bottom_up", "naive"} <= set(ENUMERATORS.names())

    def test_datasets(self):
        assert {"dealers", "disc", "products"} <= set(DATASETS.names())


class TestLoadDataset:
    def test_dealers_bundle(self):
        bundle = load_dataset("dealers", sites=2, pages=2, seed=11)
        assert isinstance(bundle, DatasetBundle)
        assert bundle.gold_type == "name"
        assert len(bundle.sites) == 2
        labels = bundle.annotator.annotate(bundle.sites[0].site)
        assert isinstance(labels, frozenset)

    def test_unknown_dataset(self):
        with pytest.raises(RegistryError, match="unknown dataset"):
            load_dataset("nope", sites=2, pages=2, seed=1)
