"""Tests for the dataset generators (the web-publication simulator)."""

import pytest

from repro.annotators.base import measure_noise
from repro.datasets.dealers import (
    dictionary_recall_upper_bound,
    generate_dealers,
)
from repro.datasets.disc import generate_disc
from repro.datasets.entities import (
    album_catalog,
    business_pool,
    phone_dictionary,
    phone_pool,
)
from repro.datasets.products import generate_products
from repro.datasets.sitegen import GoldResolutionError, resolve_gold
from repro.datasets.templates import GoldSpan, PageEmitter


class TestEntities:
    def test_business_pool_size_and_uniqueness(self):
        pool = business_pool(300)
        assert len(pool) == 300
        assert len({b.name for b in pool}) == 300

    def test_business_pool_deterministic(self):
        assert business_pool(50) == business_pool(50)

    def test_zipcodes_are_five_digits(self):
        for business in business_pool(100):
            assert len(business.zipcode) == 5
            assert business.zipcode.isdigit()

    def test_album_catalog(self):
        catalog = album_catalog(30)
        assert len(catalog) == 30
        assert len({a.title for a in catalog}) == 30
        for album in catalog:
            assert 8 <= len(album.tracks) <= 13

    def test_album_tracks_globally_unique(self):
        catalog = album_catalog(30)
        tracks = [t for a in catalog for t in a.tracks]
        assert len(tracks) == len(set(tracks))

    def test_phone_pool_and_dictionary(self):
        pool = phone_pool(20)
        dictionary = phone_dictionary(pool)
        assert len(dictionary) == 100  # 5 dictionary brands x 20
        assert len(pool) == 160  # 8 brands x 20


class TestPageEmitter:
    def test_spans_match_emitted_text(self):
        out = PageEmitter()
        out.raw("<td>")
        out.value("PORTER & CO", "name")
        out.raw("</td>")
        html = out.html()
        (span,) = out.spans
        assert html[span.start : span.end] == "PORTER &amp; CO"

    def test_untyped_values_record_no_span(self):
        out = PageEmitter()
        out.value("x")
        assert out.spans == []

    def test_text_encodes(self):
        out = PageEmitter()
        out.text("<b>")
        assert out.html() == "&lt;b&gt;"


class TestGoldResolution:
    def test_bad_span_raises(self):
        from repro.site import Site

        site = Site.from_html("x", ["<p>hello</p>"])
        with pytest.raises(GoldResolutionError):
            resolve_gold(site, [[GoldSpan(start=0, end=2, type_name="t")]])


class TestDealers:
    def test_deterministic(self):
        a = generate_dealers(n_sites=2, pages_per_site=3, seed=5)
        b = generate_dealers(n_sites=2, pages_per_site=3, seed=5)
        assert [s.site.pages[0].source for s in a.sites] == [
            s.site.pages[0].source for s in b.sites
        ]

    def test_different_seeds_differ(self):
        a = generate_dealers(n_sites=1, pages_per_site=2, seed=5)
        b = generate_dealers(n_sites=1, pages_per_site=2, seed=6)
        assert a.sites[0].site.pages[0].source != b.sites[0].site.pages[0].source

    def test_gold_nodes_contain_names(self, small_dealers):
        for generated in small_dealers.sites:
            assert generated.gold["name"]
            for node_id in generated.gold["name"]:
                text = generated.site.text_node(node_id).text
                assert text.strip()

    def test_each_page_has_gold(self, small_dealers):
        for generated in small_dealers.sites:
            pages_with_gold = {n.page for n in generated.gold["name"]}
            assert pages_with_gold == set(range(len(generated.site)))

    def test_sites_use_multiple_layouts(self):
        dataset = generate_dealers(n_sites=12, pages_per_site=2, seed=11)
        layouts = {g.metadata["layout"] for g in dataset.sites}
        assert len(layouts) >= 3

    def test_annotator_profile_near_paper(self):
        dataset = generate_dealers(n_sites=20, pages_per_site=10, seed=11)
        annotator = dataset.annotator()
        precisions, recalls = [], []
        for generated in dataset.sites:
            labels = annotator.annotate(generated.site)
            precision, recall = measure_noise(
                labels, generated.gold["name"], generated.site.total_text_nodes()
            )
            if labels:
                precisions.append(precision)
            recalls.append(recall)
        mean_p = sum(precisions) / len(precisions)
        mean_r = sum(recalls) / len(recalls)
        assert 0.85 <= mean_p <= 1.0  # paper: 0.95
        assert 0.10 <= mean_r <= 0.40  # paper: 0.24

    def test_recall_ceiling_close_to_dictionary_coverage(self):
        dataset = generate_dealers(n_sites=10, pages_per_site=5, seed=11)
        ceiling = dictionary_recall_upper_bound(dataset)
        assert 0.15 <= ceiling <= 0.35

    def test_separate_zip_creates_zipcode_gold(self, small_dealers_zip):
        for generated in small_dealers_zip.sites:
            assert generated.gold["zipcode"]
            for node_id in generated.gold["zipcode"]:
                text = generated.site.text_node(node_id).text.strip()
                assert text.isdigit() and len(text) == 5

    def test_zip_and_name_interleave(self, small_dealers_zip):
        """Per page, names and zipcodes alternate in document order."""
        for generated in small_dealers_zip.sites:
            for page_index in range(len(generated.site)):
                sequence = sorted(
                    [
                        (n.preorder, "name")
                        for n in generated.gold["name"]
                        if n.page == page_index
                    ]
                    + [
                        (z.preorder, "zip")
                        for z in generated.gold["zipcode"]
                        if z.page == page_index
                    ]
                )
                kinds = [kind for _, kind in sequence]
                assert kinds[::2] == ["name"] * (len(kinds) // 2)
                assert kinds[1::2] == ["zip"] * (len(kinds) // 2)


class TestDisc:
    def test_scale(self, small_disc):
        assert len(small_disc.sites) == 4
        assert len(small_disc.seed_albums) == 11

    def test_track_gold_on_every_page(self, small_disc):
        for generated in small_disc.sites:
            pages = {n.page for n in generated.gold["track"]}
            assert pages == set(range(len(generated.site)))

    def test_title_variants_are_one_per_page(self, small_disc):
        for generated in small_disc.sites:
            for variant in generated.gold_variants["album_title"]:
                pages = [n.page for n in variant]
                assert len(pages) == len(set(pages)) == len(generated.site)

    def test_annotator_profile(self):
        dataset = generate_disc(n_sites=6, seed=23)
        annotator = dataset.annotator()
        precisions, recalls = [], []
        for generated in dataset.sites:
            labels = annotator.annotate(generated.site)
            seed_titles = {a.title for a in dataset.seed_albums}
            albums = generated.metadata["albums"]
            seed_pages = {
                i for i, title in enumerate(albums) if title in seed_titles
            }
            gold_on_seed_pages = frozenset(
                n for n in generated.gold["track"] if n.page in seed_pages
            )
            if labels:
                precision = len(labels & generated.gold["track"]) / len(labels)
                precisions.append(precision)
            if gold_on_seed_pages:
                recall = len(labels & gold_on_seed_pages) / len(gold_on_seed_pages)
                recalls.append(recall)
        assert 0.6 <= sum(precisions) / len(precisions) <= 0.95  # paper: 0.8
        assert 0.8 <= sum(recalls) / len(recalls) <= 1.0  # paper: 0.9

    def test_every_site_has_seed_albums(self, small_disc):
        seed_titles = {a.title for a in small_disc.seed_albums}
        for generated in small_disc.sites:
            present = seed_titles & set(generated.metadata["albums"])
            assert len(present) >= 4


class TestProducts:
    def test_dictionary_size_matches_paper(self):
        dataset = generate_products(n_sites=1, pages_per_site=1, seed=37)
        assert len(dataset.dictionary) == 463

    def test_gold_covers_out_of_dictionary_brands(self, small_products):
        from repro.annotators.dictionary import normalize_mention

        entries = {
            normalize_mention(e) for e in small_products.dictionary
        }
        out_of_dict = 0
        for generated in small_products.sites:
            for node_id in generated.gold["name"]:
                text = normalize_mention(
                    generated.site.text_node(node_id).text
                )
                if text not in entries:
                    out_of_dict += 1
        assert out_of_dict > 0  # wrappers must generalize past the dictionary

    def test_deterministic(self):
        a = generate_products(n_sites=1, pages_per_site=2, seed=37)
        b = generate_products(n_sites=1, pages_per_site=2, seed=37)
        assert a.sites[0].site.pages[0].source == b.sites[0].site.pages[0].source
