"""Wrapper lifecycle: drift detection, ranked-alternate repair, hot-swap.

Covers the three legs of ``repro.lifecycle`` plus the acceptance
end-to-end: a fleet of drifted sites streamed through a live
:class:`~repro.api.ingest.IngestSession` recovers its pre-drift
extraction F1 via the repair cascade, with repaired extractors/artifacts
hot-swapped into the running pool — no session restart.
"""

import pytest

from repro.annotators.dictionary import DictionaryAnnotator
from repro.api import Extractor, ExtractorConfig, IngestSession, WrapperArtifact
from repro.datasets.sitegen import DriftConfig, drift_site
from repro.evaluation.metrics import prf
from repro.lifecycle import (
    DriftDetector,
    HealthBaseline,
    RepairPolicy,
    ThresholdPolicy,
    baseline_from_extraction,
    page_counts,
)
from repro.site import Site
from repro.wrappers.xpath_inductor import XPathWrapper


def _page(cls, *names):
    rows = "".join(
        f"<tr><td class='{cls}'><u>{name}</u></td></tr>" for name in names
    )
    return (
        "<html><body><p>Welcome to the shop</p>"
        f"<table>{rows}</table>"
        "<p>Call us today</p></body></html>"
    )


@pytest.fixture()
def shop_site():
    return Site.from_html(
        "shop", [_page("item", "ALPHA", "BETA"), _page("item", "GAMMA")]
    )


@pytest.fixture()
def shop_labels(shop_site):
    return DictionaryAnnotator(["ALPHA", "GAMMA"]).annotate(shop_site)


def _class_keyed_wrapper():
    return XPathWrapper(
        features=frozenset(
            {((1, "tag"), "u"), ((2, "tag"), "td"), ((2, "@class"), "item")}
        )
    )


def _tag_only_wrapper():
    return XPathWrapper(features=frozenset({((1, "tag"), "u")}))


def _dead_wrapper():
    return XPathWrapper(
        features=frozenset({((1, "tag"), "u"), ((1, "childnum"), 99)})
    )


def _greedy_wrapper():
    # No features: matches every text node — the match-everything trap.
    return XPathWrapper(features=frozenset())


def _alt(wrapper):
    return {"wrapper_spec": wrapper.to_spec(), "rule": wrapper.rule(), "score": {}}


def _artifact(site, labels, alternates=()):
    winner = _class_keyed_wrapper()
    extracted = winner.extract(site)
    return WrapperArtifact(
        wrapper_spec=winner.to_spec(),
        rule=winner.rule(),
        site=site.name,
        inductor="xpath",
        method="ntw",
        alternates=[_alt(w) for w in alternates],
        baseline=baseline_from_extraction(
            extracted, len(site), labels=labels
        ).to_dict(),
    )


class TestHealthBaseline:
    def test_from_extraction_profile(self, shop_site, shop_labels):
        extracted = _class_keyed_wrapper().extract(shop_site)
        baseline = baseline_from_extraction(
            extracted, len(shop_site), labels=shop_labels
        )
        assert baseline.pages == 2
        assert baseline.mean_per_page == pytest.approx(1.5)
        assert baseline.empty_page_rate == 0.0
        assert baseline.agreement == 1.0  # both labels extracted
        assert baseline.n_labels == 2

    def test_dict_roundtrip(self, shop_site, shop_labels):
        baseline = baseline_from_extraction(
            _class_keyed_wrapper().extract(shop_site), 2, labels=shop_labels
        )
        assert HealthBaseline.from_dict(baseline.to_dict()) == baseline

    def test_empty_payload_is_none(self):
        assert HealthBaseline.from_dict({}) is None

    def test_malformed_payload_rejected(self):
        with pytest.raises(ValueError, match="malformed health baseline"):
            HealthBaseline.from_dict({"pages": "many"})

    def test_page_counts(self, shop_site):
        extracted = _class_keyed_wrapper().extract(shop_site)
        assert page_counts(extracted, 2) == [2, 1]


class TestDriftDetector:
    def test_healthy_stream_stays_quiet(self, shop_site, shop_labels):
        artifact = _artifact(shop_site, shop_labels)
        detector = DriftDetector(artifact.baseline)
        extracted = artifact.apply(shop_site)
        for _ in range(5):
            report = detector.observe(extracted, 2, labels=shop_labels)
            assert not report.drifted

    def test_collapse_fires(self, shop_site, shop_labels):
        detector = DriftDetector(_artifact(shop_site, shop_labels).baseline)
        report = detector.observe(frozenset(), 2)
        assert report.drifted
        assert any("collapsed" in reason for reason in report.reasons)
        assert any("empty-page" in reason for reason in report.reasons)

    def test_explosion_fires(self, shop_site, shop_labels):
        detector = DriftDetector(_artifact(shop_site, shop_labels).baseline)
        everything = shop_site.text_node_ids()
        report = detector.observe(everything, 2)
        assert report.drifted
        assert any("exploded" in reason for reason in report.reasons)

    def test_agreement_drop_fires(self, shop_site, shop_labels):
        detector = DriftDetector(_artifact(shop_site, shop_labels).baseline)
        # Counts look fine (3 nodes), but none are the labeled ones.
        wrong = frozenset(
            sorted(shop_site.text_node_ids() - shop_labels)[:3]
        )
        report = detector.observe(wrong, 2, labels=shop_labels)
        assert report.drifted
        assert any("re-agreement" in reason for reason in report.reasons)

    def test_born_bad_wrapper_has_not_drifted(self, shop_site, shop_labels):
        """Zero agreement at learn time means zero agreement later is
        *not* drift — drift is change relative to the baseline."""
        baseline = baseline_from_extraction(
            frozenset(sorted(shop_site.text_node_ids() - shop_labels)[:3]),
            2,
            labels=shop_labels,
        )
        assert baseline.agreement == 0.0
        detector = DriftDetector(baseline)
        report = detector.observe(
            frozenset(sorted(shop_site.text_node_ids() - shop_labels)[:3]),
            2,
            labels=shop_labels,
        )
        assert not report.drifted

    def test_window_rolls_past_a_blip(self, shop_site, shop_labels):
        artifact = _artifact(shop_site, shop_labels)
        detector = DriftDetector(artifact.baseline, window=3)
        healthy = artifact.apply(shop_site)
        assert detector.observe(frozenset(), 2).drifted  # the blip
        detector.observe(healthy, 2)
        detector.observe(healthy, 2)
        # Blip still in window (1 of 3 observations empty -> empty rate .33).
        report = detector.observe(healthy, 2)
        assert not report.drifted  # blip aged out of the window

    def test_reset_clears_window(self, shop_site, shop_labels):
        detector = DriftDetector(
            _artifact(shop_site, shop_labels).baseline, window=8
        )
        for _ in range(4):
            detector.observe(frozenset(), 2)
        detector.reset()
        healthy = _class_keyed_wrapper().extract(shop_site)
        assert not detector.observe(healthy, 2).drifted

    def test_min_observations_debounce(self, shop_site, shop_labels):
        policy = ThresholdPolicy(min_observations=2)
        detector = DriftDetector(
            _artifact(shop_site, shop_labels).baseline, policy=policy
        )
        assert not detector.observe(frozenset(), 2).drifted  # too early
        assert detector.observe(frozenset(), 2).drifted

    def test_pluggable_policy(self, shop_site, shop_labels):
        class Paranoid(ThresholdPolicy):
            def evaluate(self, signals, baseline):
                return ["always drifted"]

        detector = DriftDetector(
            _artifact(shop_site, shop_labels).baseline, policy=Paranoid()
        )
        healthy = _class_keyed_wrapper().extract(shop_site)
        report = detector.observe(healthy, 2)
        assert report.drifted and report.reasons == ["always drifted"]

    def test_v1_artifact_has_no_baseline(self):
        with pytest.raises(ValueError, match="predates baselines"):
            DriftDetector({})


class TestRepairPolicy:
    def _drifted(self, shop_site):
        """The shop after a CSS-class redesign (winner's key renamed)."""
        return Site.from_html(
            "shop",
            drift_sources := [
                page.source.replace("class='item'", "class='cell'")
                for page in shop_site.pages
            ],
        )

    def test_ladder_promotion_skips_dead_rungs(self, shop_site, shop_labels):
        artifact = _artifact(
            shop_site, shop_labels, alternates=[_dead_wrapper(), _tag_only_wrapper()]
        )
        drifted = self._drifted(shop_site)
        labels = DictionaryAnnotator(["ALPHA", "GAMMA"]).annotate(drifted)
        report = RepairPolicy().repair(artifact, drifted, labels=labels)
        assert report.ok and report.strategy == "alternate"
        assert report.promoted_rank == 2
        assert [a.promoted for a in report.attempts] == [False, True]
        assert "extracts nothing" in report.attempts[0].reasons[0]
        # The repaired artifact extracts the full listing again.
        assert len(report.artifact.apply(drifted)) == 3
        # Ladder bookkeeping: promoted rung removed, dead rung kept,
        # demoted winner dropped, baseline refreshed on drifted pages.
        assert len(report.artifact.alternates) == 1
        assert report.artifact.alternates[0]["rule"] == _dead_wrapper().rule()
        assert report.artifact.baseline["mean_per_page"] == pytest.approx(1.5)
        assert report.artifact.provenance["repairs"][0]["strategy"] == "alternate"

    def test_match_everything_alternate_rejected(self, shop_site, shop_labels):
        artifact = _artifact(shop_site, shop_labels, alternates=[_greedy_wrapper()])
        drifted = self._drifted(shop_site)
        labels = DictionaryAnnotator(["ALPHA", "GAMMA"]).annotate(drifted)
        report = RepairPolicy().repair(artifact, drifted, labels=labels)
        # Covers every label, but the count-ratio guard catches it.
        assert not report.ok and report.strategy == "failed"
        attempt = report.attempts[0]
        assert attempt.agreement == 1.0
        assert any("ratio" in reason for reason in attempt.reasons)

    def test_structural_validation_without_labels(self, shop_site, shop_labels):
        """No annotator, no labels: the baseline alone still gates the
        ladder (the stream-mode self-repair path)."""
        artifact = _artifact(
            shop_site, shop_labels, alternates=[_tag_only_wrapper()]
        )
        report = RepairPolicy().repair(artifact, self._drifted(shop_site))
        assert report.ok and report.strategy == "alternate"

    def test_nothing_to_validate_against_fails(self, shop_site, shop_labels):
        artifact = _artifact(shop_site, shop_labels, alternates=[_tag_only_wrapper()])
        artifact.baseline = {}
        report = RepairPolicy().repair(artifact, self._drifted(shop_site))
        assert not report.ok
        assert "nothing to validate against" in report.error

    def test_exhausted_ladder_without_extractor_fails(
        self, shop_site, shop_labels
    ):
        artifact = _artifact(shop_site, shop_labels, alternates=[_dead_wrapper()])
        drifted = self._drifted(shop_site)
        labels = DictionaryAnnotator(["ALPHA", "GAMMA"]).annotate(drifted)
        report = RepairPolicy().repair(artifact, drifted, labels=labels)
        assert not report.ok and report.strategy == "failed"
        assert "ladder exhausted" in report.error
        assert "no extractor" in report.error

    def test_relearn_fallback(self, shop_site, shop_labels):
        annotator = DictionaryAnnotator(["ALPHA", "GAMMA"])
        artifact = _artifact(shop_site, shop_labels, alternates=[_dead_wrapper()])
        drifted = self._drifted(shop_site)
        extractor = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
        report = RepairPolicy(annotator=annotator, extractor=extractor).repair(
            artifact, drifted
        )
        assert report.ok and report.strategy == "relearn"
        assert len(report.artifact.apply(drifted)) >= 2
        assert report.artifact.provenance["repairs"][-1]["strategy"] == "relearn"
        assert report.artifact.provenance["repairs"][-1]["previous_rule"] == artifact.rule

    def test_report_is_json_safe(self, shop_site, shop_labels):
        import json

        artifact = _artifact(shop_site, shop_labels, alternates=[_tag_only_wrapper()])
        drifted = self._drifted(shop_site)
        detector = DriftDetector(artifact.baseline)
        verdict = detector.observe(artifact.apply(drifted), len(drifted))
        report = RepairPolicy().repair(artifact, drifted, drift=verdict)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] and payload["strategy"] == "alternate"
        assert payload["drift"]["drifted"] is True


def _superset_of(wrapper, *extra):
    """A wrapper whose features strictly subsume ``wrapper``'s."""
    return XPathWrapper(features=wrapper.features | frozenset(extra))


class TestDiverseAlternates:
    """Diversity-aware ladder selection (repro.lifecycle.repair)."""

    def test_rung_features_shapes(self):
        from repro.lifecycle.repair import rung_features

        spec = _class_keyed_wrapper().to_spec()
        features = rung_features(spec)
        assert features == frozenset(tuple(row) for row in spec["features"])
        assert rung_features({"kind": "custom"}) is None
        assert rung_features("not-a-spec") is None
        # The match-everything wrapper has no rows: incomparable.
        assert rung_features(_greedy_wrapper().to_spec()) is None

    def test_superset_rungs_pruned(self):
        from repro.lifecycle.repair import select_diverse

        winner = _class_keyed_wrapper()
        shadow = _superset_of(winner, ((3, "tag"), "tr"))
        diverse = _tag_only_wrapper()
        specs = [shadow.to_spec(), diverse.to_spec()]
        # Rank order would keep the shadow; diversity skips it.
        assert select_diverse(winner.to_spec(), specs, 1) == [1]
        # A rung subsuming a *kept* rung is pruned too.
        diverse_shadow = _superset_of(diverse, ((2, "tag"), "td"))
        specs = [diverse.to_spec(), diverse_shadow.to_spec()]
        kept = select_diverse(winner.to_spec(), specs, 1)
        assert kept == [0]

    def test_backfill_when_pruning_leaves_slots(self):
        from repro.lifecycle.repair import select_diverse

        winner = _class_keyed_wrapper()
        shadows = [
            _superset_of(winner, ((3, "tag"), "tr")),
            _superset_of(winner, ((3, "tag"), "table")),
        ]
        specs = [w.to_spec() for w in shadows]
        # Nothing diverse to keep: redundant rungs backfill in rank
        # order rather than shipping an empty ladder.
        assert select_diverse(winner.to_spec(), specs, 2) == [0, 1]
        assert select_diverse(winner.to_spec(), specs, 0) == []

    def test_promotion_fires_where_relearn_used_to(
        self, shop_site, shop_labels
    ):
        """The headline: with one ladder slot, rank order keeps a rung
        that drifts with the winner (forcing a full relearn), while
        diversity selection keeps a structurally distinct rung the
        cascade can promote."""
        from repro.lifecycle.repair import select_diverse

        winner = _class_keyed_wrapper()
        candidates = [
            _superset_of(winner, ((3, "tag"), "tr")),  # ranked first
            _tag_only_wrapper(),
        ]
        drifted = Site.from_html(
            "shop",
            [
                page.source.replace("class='item'", "class='cell'")
                for page in shop_site.pages
            ],
        )
        annotator = DictionaryAnnotator(["ALPHA", "GAMMA"])
        extractor = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
        policy = RepairPolicy(annotator=annotator, extractor=extractor)

        # Old selection: top-k by rank — the shadow rung rides along
        # and dies with the winner, so the cascade falls through.
        old = _artifact(shop_site, shop_labels, alternates=candidates[:1])
        old_report = policy.repair(old, drifted)
        assert old_report.strategy == "relearn"

        # Diversity selection keeps the tag-only rung instead.
        specs = [w.to_spec() for w in candidates]
        kept = select_diverse(winner.to_spec(), specs, 1)
        new = _artifact(
            shop_site, shop_labels,
            alternates=[candidates[index] for index in kept],
        )
        new_report = policy.repair(new, drifted)
        assert new_report.strategy == "alternate"
        assert new_report.promoted_rank == 1
        assert len(new_report.artifact.apply(drifted)) == 3

    def test_learn_ships_the_diverse_selection(
        self, dealer_site, dealer_names, monkeypatch
    ):
        """Extractor.learn builds the ladder through select_diverse:
        the shipped alternates are exactly the rungs it keeps, in
        order, from the non-empty ranked runner-ups."""
        import repro.api.extractor as extractor_module

        calls = []
        real = extractor_module.select_diverse

        def spy(winner_spec, specs, k):
            kept = real(winner_spec, specs, k)
            calls.append((winner_spec, list(specs), k, kept))
            return kept

        monkeypatch.setattr(extractor_module, "select_diverse", spy)
        # A partial dictionary plus a colliding chrome word: the noisy
        # labels keep several distinct wrappers alive in the ranking.
        labels = DictionaryAnnotator(dealer_names[:6] + ["Contact"]).annotate(
            dealer_site
        )
        extractor = Extractor(
            ExtractorConfig(inductor="xpath", method="ntw-l", keep_alternates=3)
        )
        artifact = extractor.learn(dealer_site, labels)
        assert len(calls) == 1
        winner_spec, specs, k, kept = calls[0]
        assert winner_spec == artifact.wrapper_spec and k == 3
        assert len(specs) > len(kept)  # there was a real pool to choose from
        assert [a["wrapper_spec"] for a in artifact.alternates] == [
            specs[index] for index in kept
        ]


class TestEndToEndStreamSelfRepair:
    """Acceptance: a drifted fleet streamed through a live IngestSession
    recovers >= pre-drift F1 via the repair cascade, hot-swapped into
    the running pool — and old (v1) artifacts keep loading and applying.
    """

    @pytest.mark.parametrize("workers", [1, 2])
    def test_drifted_fleet_recovers_f1_in_live_session(
        self, small_dealers, workers
    ):
        annotator = small_dealers.annotator()
        train, fleet = small_dealers.sites[::2], small_dealers.sites[1::2]
        extractor = Extractor(
            ExtractorConfig(inductor="xpath", method="ntw")
        ).fit(train, annotator, "name")
        artifacts, pre_f1 = {}, {}
        for generated in fleet:
            artifact = extractor.learn(
                generated.site,
                annotator.annotate(generated.site),
                site_name=generated.name,
            )
            artifacts[generated.name] = artifact
            pre_f1[generated.name] = prf(
                artifact.apply(generated.site), generated.gold["name"]
            ).f1
        drifted = {
            generated.name: drift_site(generated, severity="medium", seed=1)
            for generated in fleet
        }
        policy = RepairPolicy(annotator=annotator, extractor=extractor)
        repaired_f1: dict[str, float] = {}
        repairs = 0
        with IngestSession(max_workers=workers) as session:
            submitted: dict[int, str] = {}
            for name, generated in drifted.items():
                index = session.submit(generated.site, artifact=artifacts[name])
                submitted[index] = name
            resubmitted: dict[int, str] = {}
            for outcome in session.iter_results():
                if outcome.index in resubmitted:
                    name = resubmitted[outcome.index]
                    repaired_f1[name] = prf(
                        outcome.extracted, drifted[name].gold["name"]
                    ).f1
                    continue
                name = submitted[outcome.index]
                generated = drifted[name]
                assert outcome.ok
                verdict = DriftDetector(
                    artifacts[name].baseline
                ).observe_site(generated.site, outcome.extracted, annotator=annotator)
                if not verdict.drifted:
                    repaired_f1[name] = prf(
                        outcome.extracted, generated.gold["name"]
                    ).f1
                    continue
                report = policy.repair(
                    artifacts[name], generated.site, drift=verdict
                )
                assert report.ok, (name, report.error)
                repairs += 1
                # Hot-swap: the repaired artifact rides the SAME live
                # session; no restart, the worker's interned site is warm.
                index = session.submit(generated.site, artifact=report.artifact)
                resubmitted[index] = name
        assert set(repaired_f1) == set(drifted)
        assert repairs > 0  # medium drift must actually break wrappers
        for name, f1 in repaired_f1.items():
            assert f1 >= pre_f1[name] - 1e-9, (name, pre_f1[name], f1)

    def test_refit_extractor_hot_swaps_into_live_learn_stream(
        self, small_dealers
    ):
        """update_shared ships a refit extractor through the live pool:
        jobs the workers receive after the swap use the new config."""
        annotator = small_dealers.annotator()
        first = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
        refit = Extractor(ExtractorConfig(inductor="lr", method="naive"))
        sites = [g.site for g in small_dealers.sites[1::2]]
        with IngestSession(
            extractor=first, annotator=annotator, max_workers=2
        ) as session:
            session.submit(sites[0])
            before = next(iter(session.iter_results()))
            assert session.update_shared(extractor=refit) is True
            # Unchanged context: the fingerprint gate skips the re-ship.
            assert session.update_shared(extractor=refit) is False
            session.submit(sites[1])
            after = next(iter(session.iter_results()))
        assert before.ok and before.artifact.inductor == "xpath"
        assert after.ok and after.artifact.inductor == "lr"

    def test_v1_artifact_loads_and_applies_unchanged(self, small_dealers):
        annotator = small_dealers.annotator()
        generated = small_dealers.sites[1]
        extractor = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
        artifact = extractor.learn(
            generated.site,
            annotator.annotate(generated.site),
            site_name=generated.name,
        )
        payload = artifact.to_dict()
        # What a v1 writer produced: no alternates, no baseline.
        del payload["alternates"]
        del payload["baseline"]
        payload["schema_version"] = 1
        old = WrapperArtifact.from_dict(payload)
        assert old.schema_version == 1
        assert old.apply(generated.site) == artifact.apply(generated.site)
        assert old.alternates == [] and old.baseline == {}
        assert old.health_baseline() is None


class TestJsonSafety:
    def test_infinite_count_ratio_serializes_as_null(self):
        """A zero-mean baseline makes the ratio infinite; NDJSON
        surfaces must get null, not the invalid `Infinity` token."""
        import json

        baseline = baseline_from_extraction(frozenset(), 2)
        assert baseline.mean_per_page == 0.0
        detector = DriftDetector(baseline)
        report = detector.observe_counts([5])
        assert report.signals.count_ratio == float("inf")
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["signals"]["count_ratio"] is None
