"""Tests for HTML serialization and structural token streams."""

from repro.htmldom.serializer import TEXT_TOKEN, to_html, to_structure_tokens
from repro.htmldom.treebuilder import parse_html


def reparse(html: str):
    return parse_html(to_html(parse_html(html).root))


class TestToHtml:
    def test_roundtrip_preserves_structure(self):
        source = '<div class="x"><table><tr><td><u>A</u><br>B</td></tr></table></div>'
        first = parse_html(source)
        second = reparse(source)
        assert to_structure_tokens(first.root) == to_structure_tokens(second.root)

    def test_roundtrip_preserves_text(self):
        source = "<p>Smith &amp; Sons</p>"
        doc = reparse(source)
        assert doc.root.text_content() == "Smith & Sons"

    def test_void_elements_not_closed(self):
        html = to_html(parse_html("<td>a<br>b</td>").root)
        assert "<br>" in html
        assert "</br>" not in html

    def test_attributes_quoted_and_escaped(self):
        html = to_html(parse_html('<div class="a&amp;b">x</div>').root)
        assert 'class="a&amp;b"' in html

    def test_indented_output_reparses_identically(self):
        source = "<div><p>one</p><p>two</p></div>"
        pretty = to_html(parse_html(source).root, indent=2)
        assert "\n" in pretty
        assert to_structure_tokens(parse_html(pretty).root) == to_structure_tokens(
            parse_html(source).root
        )


class TestStructureTokens:
    def test_text_nodes_become_placeholder(self):
        doc = parse_html("<td><u>PORTER</u></td>")
        assert to_structure_tokens(doc.root) == ["html", "td", "u", TEXT_TOKEN]

    def test_preorder_order(self):
        doc = parse_html("<div><p>a</p><span>b</span></div>")
        assert to_structure_tokens(doc.root) == [
            "html",
            "div",
            "p",
            TEXT_TOKEN,
            "span",
            TEXT_TOKEN,
        ]

    def test_single_text_node(self):
        doc = parse_html("<p>x</p>")
        text = doc.text_nodes()[0]
        assert to_structure_tokens(text) == [TEXT_TOKEN]

    def test_identical_structure_different_content(self):
        a = parse_html("<td><u>PORTER</u><br>201 HWY</td>")
        b = parse_html("<td><u>WOODLAND</u><br>123 MAIN</td>")
        assert to_structure_tokens(a.root) == to_structure_tokens(b.root)
