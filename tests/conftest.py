"""Shared fixtures: sample pages, sites, grids and small datasets.

Dataset fixtures are session-scoped — generation is deterministic, so
sharing them across test modules is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.datasets.dealers import generate_dealers
from repro.datasets.disc import generate_disc
from repro.datasets.products import generate_products
from repro.site import Site
from repro.wrappers.table import Grid

DEALER_PAGE_TEMPLATE = """
<html><head><title>Dealers near {zipcode}</title></head><body>
<div class="header"><h1>Acme Dealer Locator</h1></div>
<ul class="nav"><li>Home</li><li>About Us</li><li>Contact</li></ul>
<div class="dealerlinks">
 <table>
  {rows}
 </table>
</div>
<div class="footer"><p>&copy; 2010 Acme</p></div>
</body></html>
"""

DEALER_ROW_TEMPLATE = (
    '<tr><td><u>{name}</u><br>{street}<br>{city}</td>'
    '<td><a href="#">Map</a></td></tr>'
)

DEALERS_BY_PAGE = [
    [
        ("PORTER FURNITURE", "201 HWY. 30 WEST", "NEW ALBANY, MS 38652"),
        ("WOODLAND FURNITURE", "123 MAIN ST.", "WOODLAND, MS 39776"),
        ("SUMMIT INTERIORS", "77 LAKE AVE.", "TUPELO, MS 38801"),
    ],
    [
        ("HOUSE OF VALUES", "2565 SO EL CAMINO REAL", "SAN MATEO, CA 94403"),
        ("KIDDIE WORLD CENTER", "1899 W. SAN CARLOS ST.", "SAN JOSE, CA 95128"),
    ],
    [
        ("LULLABY LANE", "532 SAN MATEO AVE.", "SAN BRUNO, CA 94066"),
        ("HELLERS FOR CHILDREN", "514 4TH STREET", "SAN RAFAEL, CA 94901"),
        ("STANLEY GALLERY", "90 POST ST.", "SAN FRANCISCO, CA 94102"),
        ("BAYSIDE KIDS", "12 HARBOR BLVD.", "SAUSALITO, CA 94965"),
    ],
]


def _dealer_page(zipcode: str, dealers) -> str:
    rows = "\n  ".join(
        DEALER_ROW_TEMPLATE.format(name=n, street=s, city=c) for n, s, c in dealers
    )
    return DEALER_PAGE_TEMPLATE.format(zipcode=zipcode, rows=rows)


@pytest.fixture(scope="session")
def dealer_site() -> Site:
    """A hand-written 3-page dealer-locator site (paper Fig. 1 style)."""
    pages = [
        _dealer_page(zipcode, dealers)
        for zipcode, dealers in zip(("38652", "94403", "94066"), DEALERS_BY_PAGE)
    ]
    return Site.from_html("acme-dealers", pages)


@pytest.fixture(scope="session")
def dealer_names() -> list[str]:
    return [name for page in DEALERS_BY_PAGE for name, _, _ in page]


@pytest.fixture(scope="session")
def paper_grid() -> Grid:
    """The 5x4 table of the paper's Example 1."""
    return Grid(5, 4)


@pytest.fixture(scope="session")
def paper_labels(paper_grid):
    """The label set {n1, n2, n4, a4, z5} of Example 1 (two are wrong)."""
    return frozenset(
        {
            paper_grid.cell(0, 0),  # n1
            paper_grid.cell(1, 0),  # n2
            paper_grid.cell(3, 0),  # n4
            paper_grid.cell(3, 1),  # a4  (incorrect label)
            paper_grid.cell(4, 2),  # z5  (incorrect label)
        }
    )


@pytest.fixture(scope="session")
def small_dealers():
    """A small deterministic DEALERS dataset shared across tests."""
    return generate_dealers(n_sites=8, pages_per_site=6, seed=11)


@pytest.fixture(scope="session")
def small_dealers_zip():
    """DEALERS with zipcodes as their own text nodes (multi-type tests)."""
    return generate_dealers(n_sites=8, pages_per_site=6, seed=11, separate_zip=True)


@pytest.fixture(scope="session")
def small_disc():
    """A small deterministic DISC dataset shared across tests."""
    return generate_disc(n_sites=4, seed=23)


@pytest.fixture(scope="session")
def small_products():
    """A small deterministic PRODUCTS dataset shared across tests."""
    return generate_products(n_sites=4, pages_per_site=5, seed=37)
