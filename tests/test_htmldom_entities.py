"""Tests for HTML entity decoding/encoding."""

from hypothesis import given
from hypothesis import strategies as st

from repro.htmldom.entities import decode_entities, encode_entities


class TestDecodeEntities:
    def test_plain_text_unchanged(self):
        assert decode_entities("hello world") == "hello world"

    def test_named_amp(self):
        assert decode_entities("Smith &amp; Sons") == "Smith & Sons"

    def test_named_lt_gt(self):
        assert decode_entities("&lt;b&gt;") == "<b>"

    def test_named_quot_apos(self):
        assert decode_entities("&quot;x&apos;") == "\"x'"

    def test_nbsp_becomes_nonbreaking_space(self):
        assert decode_entities("a&nbsp;b") == "a\xa0b"

    def test_copy_sign(self):
        assert decode_entities("&copy; 2010") == "© 2010"

    def test_decimal_reference(self):
        assert decode_entities("&#65;") == "A"

    def test_hex_reference(self):
        assert decode_entities("&#x41;") == "A"

    def test_hex_reference_uppercase_x(self):
        assert decode_entities("&#X41;") == "A"

    def test_unknown_named_reference_left_verbatim(self):
        assert decode_entities("&bogus;") == "&bogus;"

    def test_unterminated_reference_left_verbatim(self):
        assert decode_entities("a & b") == "a & b"

    def test_reference_without_semicolon(self):
        assert decode_entities("&ampx") == "&ampx"

    def test_out_of_range_numeric_becomes_replacement_char(self):
        # WHATWG: code points past U+10FFFF decode to U+FFFD instead of
        # crashing chr() or leaking the raw reference downstream.
        assert decode_entities("&#1114112;") == "�"
        assert decode_entities("a&#x110000;b") == "a�b"

    def test_zero_numeric_becomes_replacement_char(self):
        assert decode_entities("&#0;") == "�"
        assert decode_entities("&#x0;") == "�"

    def test_surrogate_numeric_becomes_replacement_char(self):
        # A lone surrogate from chr(0xD800) is unencodable as UTF-8 and
        # would crash artifact JSON writes and payload digests later.
        assert decode_entities("&#xD800;") == "�"
        assert decode_entities("&#xDFFF;") == "�"
        assert decode_entities("&#55296;") == "�"

    def test_boundary_codepoints_still_decode(self):
        assert decode_entities("&#x10FFFF;") == "\U0010ffff"
        assert decode_entities("&#xD7FF;") == "퟿"
        assert decode_entities("&#xE000;") == ""

    def test_negative_numeric_left_verbatim(self):
        # "-" is not a digit: the body is malformed, not a code point
        # (and must never reach chr(), which rejects negatives).
        assert decode_entities("&#-5;") == "&#-5;"
        assert decode_entities("&#x-5;") == "&#x-5;"

    @given(st.integers(min_value=-0x200000, max_value=0x200000))
    def test_numeric_references_never_produce_surrogates(self, code):
        decoded = decode_entities(f"&#{code};")
        assert all(not 0xD800 <= ord(ch) <= 0xDFFF for ch in decoded)
        decoded.encode("utf-8")  # always encodable

    def test_adjacent_references(self):
        assert decode_entities("&lt;&gt;&amp;") == "<>&"

    def test_empty_string(self):
        assert decode_entities("") == ""

    def test_malformed_numeric(self):
        assert decode_entities("&#xZZ;") == "&#xZZ;"


class TestEncodeEntities:
    def test_escapes_angle_brackets(self):
        assert encode_entities("<b>") == "&lt;b&gt;"

    def test_escapes_ampersand_first(self):
        assert encode_entities("&lt;") == "&amp;lt;"

    def test_quote_only_when_requested(self):
        assert encode_entities('a"b') == 'a"b'
        assert encode_entities('a"b', quote=True) == "a&quot;b"

    @given(st.text())
    def test_roundtrip_decode_of_encode(self, text):
        assert decode_entities(encode_entities(text, quote=True)) == text

    @given(st.text())
    def test_encoded_output_has_no_raw_markup_chars(self, text):
        encoded = encode_entities(text)
        assert "<" not in encoded
        assert ">" not in encoded
