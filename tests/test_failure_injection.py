"""Failure injection: the pipeline must degrade gracefully, not crash.

Wrapper induction runs against whatever HTML the crawler hands it:
truncated transfers, botched markup, pages with no lists, annotators
that label nothing or everything.  These tests drive such inputs
through every layer.
"""

import pytest

from repro.annotators import DictionaryAnnotator, FlippedAnnotator
from repro.enumeration import enumerate_bottom_up, enumerate_top_down
from repro.framework.naive import NaiveWrapperLearner
from repro.framework.ntw import NoiseTolerantWrapper
from repro.framework.single_entity import SingleEntityLearner
from repro.ranking.annotation import AnnotationModel
from repro.ranking.publication import PublicationModel
from repro.ranking.scorer import WrapperScorer
from repro.site import Site
from repro.wrappers.lr import LRInductor
from repro.wrappers.xpath_inductor import XPathInductor

GOOD_PAGE = (
    "<div class='r'><table>"
    "<tr><td><u>N1</u></td><td>A1</td></tr>"
    "<tr><td><u>N2</u></td><td>A2</td></tr>"
    "</table></div>"
)

BROKEN_PAGES = [
    GOOD_PAGE[: len(GOOD_PAGE) // 2],  # truncated transfer
    "<div><table><tr><td><u>N3</u><td>A3<tr><td><u>N4",  # unclosed soup
    "plain text, no markup at all",
    "",  # empty body
    "<p>&bogus; &#xFFFFFFF; <<<>>></p>",  # entity & bracket garbage
    GOOD_PAGE,  # one good page among the wreckage
]


@pytest.fixture()
def wrecked_site():
    return Site.from_html("wrecked", BROKEN_PAGES)


@pytest.fixture()
def scorer():
    clean = Site.from_html("clean", [GOOD_PAGE])
    gold = frozenset(
        node_id
        for text in ("N1", "N2")
        for node_id in clean.find_text_nodes(text)
    )
    return WrapperScorer(
        AnnotationModel.from_rates(p=0.9, r=0.5),
        PublicationModel.fit([(clean, gold)]),
    )


class TestParsingWreckage:
    def test_every_page_parses(self, wrecked_site):
        assert len(wrecked_site) == len(BROKEN_PAGES)

    def test_text_nodes_have_valid_spans(self, wrecked_site):
        for page in wrecked_site.pages:
            for node in page.text_nodes():
                assert 0 <= node.start <= node.end <= len(page.source)


class TestPipelineOnWreckage:
    def _labels(self, site):
        return frozenset(
            node_id
            for text in ("N1", "N3", "A1")
            for node_id in site.find_text_nodes(text)
        )

    def test_xpath_ntw_does_not_crash(self, wrecked_site, scorer):
        labels = self._labels(wrecked_site)
        result = NoiseTolerantWrapper(XPathInductor(), scorer).learn(
            wrecked_site, labels
        )
        assert result.best is not None
        assert result.extracted  # extracted something

    def test_lr_ntw_does_not_crash(self, wrecked_site, scorer):
        labels = self._labels(wrecked_site)
        result = NoiseTolerantWrapper(LRInductor(), scorer).learn(
            wrecked_site, labels
        )
        assert result.best is not None

    def test_naive_does_not_crash(self, wrecked_site):
        labels = self._labels(wrecked_site)
        assert NaiveWrapperLearner(XPathInductor()).extract(
            wrecked_site, labels
        )

    def test_enumerators_agree_on_wreckage(self, wrecked_site):
        labels = self._labels(wrecked_site)
        for inductor in (XPathInductor(), LRInductor()):
            top_down = enumerate_top_down(inductor, wrecked_site, labels)
            bottom_up = enumerate_bottom_up(inductor, wrecked_site, labels)
            assert set(top_down.wrappers) == set(bottom_up.wrappers)

    def test_single_entity_on_sparse_site(self, wrecked_site):
        labels = frozenset(wrecked_site.find_text_nodes("N1"))
        result = SingleEntityLearner(XPathInductor()).learn(
            wrecked_site, labels
        )
        # May or may not find a winner, but must not crash and any
        # winner must match at most one node per page.
        if result.winners:
            extracted = result.extracted(wrecked_site)
            pages = [n.page for n in extracted]
            assert len(pages) == len(set(pages))


class TestDegenerateAnnotations:
    def test_label_everything(self, wrecked_site, scorer):
        labels = wrecked_site.text_node_ids()
        result = NoiseTolerantWrapper(
            XPathInductor(), scorer, max_labels=16
        ).learn(wrecked_site, labels)
        assert result.best is not None

    def test_label_first_node_only(self, wrecked_site, scorer):
        first = min(wrecked_site.text_node_ids())
        result = NoiseTolerantWrapper(XPathInductor(), scorer).learn(
            wrecked_site, frozenset({first})
        )
        assert first in result.extracted

    def test_flipped_annotator_complements(self, wrecked_site):
        inner = DictionaryAnnotator(["N1"])
        flipped = FlippedAnnotator(inner)
        inner_labels = inner.annotate(wrecked_site)
        flipped_labels = flipped.annotate(wrecked_site)
        assert inner_labels & flipped_labels == frozenset()
        assert inner_labels | flipped_labels == wrecked_site.text_node_ids()

    def test_dictionary_on_empty_site(self):
        site = Site.from_html("empty", ["", "   "])
        assert DictionaryAnnotator(["X"]).annotate(site) == frozenset()


class TestSingletonSite:
    def test_one_page_one_record(self, scorer):
        site = Site.from_html("tiny", ["<p><b>ONLY</b></p>"])
        labels = frozenset(site.find_text_nodes("ONLY"))
        result = NoiseTolerantWrapper(XPathInductor(), scorer).learn(
            site, labels
        )
        assert result.extracted == labels
