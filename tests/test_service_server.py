"""The extraction daemon end to end: NDJSON protocol, learn-on-miss,
multi-tenant fairness, restart-resume (``repro.service``)."""

import socket
import threading

import pytest

from repro.annotators.dictionary import DictionaryAnnotator
from repro.api import Extractor, ExtractorConfig
from repro.service import (
    ExtractionServer,
    ServerError,
    ServiceClient,
    ServiceError,
    WrapperRegistry,
    protocol,
)
from repro.site import sources_fingerprint

# -- a tiny shop-catalog fleet ------------------------------------------------

NAMES = [f"PRODUCT-{index:02d}" for index in range(40)]


def _page(names):
    rows = "".join(
        f"<tr><td class='item'><u>{name}</u></td></tr>" for name in names
    )
    return (
        "<html><body><p>Welcome to the shop</p>"
        f"<table>{rows}</table>"
        "<p>Call us today</p></body></html>"
    )


def _site_pages(seed: int) -> list[str]:
    """Two pages of a distinct site (content varies with ``seed``)."""
    first = NAMES[seed % 20], NAMES[(seed + 1) % 20]
    second = (NAMES[(seed + 2) % 20],)
    return [_page(first), _page(second)]


def _annotator():
    return DictionaryAnnotator(NAMES)


def _extractor():
    return Extractor(ExtractorConfig(inductor="xpath", method="naive"))


@pytest.fixture()
def server():
    with ExtractionServer(
        "memory",
        extractor=_extractor(),
        annotator=_annotator(),
        max_workers=1,
    ) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServiceClient(server.address) as cli:
        yield cli


# -- protocol unit tests ------------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        record = {"op": "ping", "id": 7}
        assert protocol.decode_frame(protocol.encode_frame(record)) == record

    def test_oversized_frame_rejected(self):
        big = {"op": "apply", "pages": "x" * protocol.MAX_FRAME_BYTES}
        with pytest.raises(protocol.ProtocolError, match="MAX_FRAME_BYTES"):
            protocol.encode_frame(big)

    def test_non_object_frame_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            protocol.decode_frame(b"[1, 2]\n")
        with pytest.raises(protocol.ProtocolError, match="not valid JSON"):
            protocol.decode_frame(b"{torn\n")

    @pytest.mark.parametrize(
        "record, match",
        [
            ({"op": "evict", "id": 1}, "unknown op"),
            ({"op": "apply", "site": "s", "pages": ["x"]}, "scalar 'id'"),
            ({"op": "apply", "id": {}, "site": "s", "pages": ["x"]}, "scalar"),
            ({"op": "apply", "id": 1, "pages": ["x"]}, "non-empty 'site'"),
            ({"op": "learn", "id": 1, "site": "s", "pages": []}, "'pages'"),
            ({"op": "learn", "id": 1, "site": "s"}, "'pages'"),
        ],
    )
    def test_invalid_requests_rejected(self, record, match):
        with pytest.raises(protocol.ProtocolError, match=match):
            protocol.validate_request(record)

    def test_read_frames_blank_lines_and_eof_tail(self):
        left, right = socket.socketpair()
        left.sendall(b'{"op":"ping","id":1}\n\n\n{"op":"ping","id":2}')
        left.close()  # EOF: the newline-less tail still parses
        frames = list(protocol.read_frames(right))
        right.close()
        assert frames == [
            {"op": "ping", "id": 1},
            {"op": "ping", "id": 2},
        ]


# -- one client, one server ---------------------------------------------------


class TestServeBasics:
    def test_ping_and_stats(self, client):
        assert client.ping()
        stats = client.stats()
        assert stats["server"]["can_learn"] is True
        assert stats["server"]["workers"] == 1
        assert "fingerprints" in stats["registry"]

    def test_apply_learns_on_miss_then_hits(self, server, client):
        pages = _site_pages(0)
        first = client.apply("shop-0", pages)
        assert first["source"] == "learned" and first["version"] == 1
        assert first["count"] == 3 and len(first["nodes"]) == 3
        assert first["fingerprint"] == sources_fingerprint(pages)
        # Same pages again: exact fingerprint hit, no second learn.
        again = client.apply("shop-0", pages)
        assert again["source"] == "fingerprint" and again["version"] == 1
        assert again["nodes"] == first["nodes"]
        assert server.registry.learned == 1
        assert len(server.registry.versions(first["fingerprint"])) == 1

    def test_site_fallback_serves_new_crawl(self, client):
        client.apply("shop-1", _site_pages(1))
        recrawl = [_page((NAMES[9],)), _page((NAMES[10],))]
        response = client.apply("shop-1", recrawl)
        assert response["source"] in ("site", "learned")

    def test_texts_resolved_worker_side(self, client):
        response = client.apply("shop-2", _site_pages(2), texts=True)
        assert sorted(response["texts"]) == sorted(
            [NAMES[2], NAMES[3], NAMES[4]]
        )

    def test_learn_op_idempotent_until_forced(self, client):
        pages = _site_pages(3)
        first = client.learn("shop-3", pages)
        assert first["created"] is True and first["version"] == 1
        second = client.learn("shop-3", pages)
        assert second["created"] is False and second["version"] == 1
        forced = client.learn("shop-3", pages, force=True)
        assert forced["created"] is True and forced["version"] == 2

    def test_malformed_frames_answered_not_fatal(self, server, client):
        client._sock.sendall(b'{"op":"evict","id":44}\n')
        client._sock.sendall(b"not json at all\n")
        responses = client.drain(2)
        by_id = {r.get("id"): r for r in responses}
        assert by_id[44]["ok"] is False and "unknown op" in by_id[44]["error"]
        assert by_id[None]["ok"] is False
        assert client.ping()  # the connection survived both

    def test_unarmed_server_fails_misses(self):
        with ExtractionServer("memory", max_workers=1) as srv:
            with ServiceClient(srv.address) as cli:
                with pytest.raises(ServiceError, match="not armed"):
                    cli.apply("shop-x", _site_pages(5))
                with pytest.raises(ServiceError, match="not armed"):
                    cli.learn("shop-x", _site_pages(5))

    def test_client_side_validation(self, client):
        with pytest.raises(protocol.ProtocolError, match="non-empty 'site'"):
            client.apply("", ["<html></html>"])

    def test_bad_configuration_rejected(self):
        with pytest.raises(ServerError, match="max_inflight_per_client"):
            ExtractionServer("memory", max_inflight_per_client=0)

    def test_unix_socket_transport(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        with ExtractionServer(
            "memory",
            extractor=_extractor(),
            annotator=_annotator(),
            socket_path=path,
            max_workers=1,
        ) as srv:
            assert srv.address == path
            with ServiceClient(path) as cli:
                assert cli.ping()
                assert cli.apply("shop-7", _site_pages(7))["count"] == 3


# -- many tenants -------------------------------------------------------------


class TestFairnessAndConcurrency:
    def test_flooding_tenant_cannot_starve_small_tenants(self):
        """Acceptance: >= 4 concurrent client streams; a tenant
        saturating its budget cannot zero another tenant's throughput.
        The flooder pipelines 40 requests; three small tenants run 6
        each and must all finish while the flood is still draining."""
        with ExtractionServer(
            "memory",
            extractor=_extractor(),
            annotator=_annotator(),
            max_workers=1,
            max_inflight_per_client=2,
        ) as srv:
            pages = _site_pages(11)
            with ServiceClient(srv.address) as warm:
                warm.apply("shop-flood", pages)  # pre-learn: pure applies below

            def _distinct(tenant, index):
                """Unique page content per request: every job is real
                work (no engine memo hit), resolved via the site index."""
                return [
                    page.replace(
                        "</body>", f"<p>crawl {tenant}-{index}</p></body>"
                    )
                    for page in pages
                ]

            arrival_log = []
            log_lock = threading.Lock()
            barrier = threading.Barrier(4)
            failures = []

            def flooder():
                try:
                    with ServiceClient(srv.address, timeout=120) as cli:
                        barrier.wait()
                        ids = [
                            cli.submit(
                                "apply",
                                site="shop-flood",
                                pages=_distinct("flood", index),
                            )
                            for index in range(40)
                        ]
                        for request_id in ids:
                            response = cli.wait(request_id)
                            assert response["ok"], response
                            with log_lock:
                                arrival_log.append("flooder")
                except Exception as error:  # pragma: no cover - debug aid
                    failures.append(error)

            def small(name):
                try:
                    with ServiceClient(srv.address, timeout=120) as cli:
                        barrier.wait()
                        for index in range(6):
                            response = cli.apply(
                                "shop-flood", _distinct(name, index)
                            )
                            assert response["count"] == 3
                            with log_lock:
                                arrival_log.append(name)
                except Exception as error:  # pragma: no cover - debug aid
                    failures.append(error)

            threads = [threading.Thread(target=flooder)]
            threads += [
                threading.Thread(target=small, args=(f"small-{index}",))
                for index in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not failures, failures
            assert len(arrival_log) == 40 + 3 * 6
            # Round-robin admission: every small tenant drains while the
            # flood is still in progress — the flooder cannot zero their
            # throughput.
            last_small = max(
                index
                for index, name in enumerate(arrival_log)
                if name != "flooder"
            )
            last_flood = max(
                index
                for index, name in enumerate(arrival_log)
                if name == "flooder"
            )
            assert last_small < last_flood

    def test_racing_cold_applies_learn_exactly_once(self):
        with ExtractionServer(
            "memory",
            extractor=_extractor(),
            annotator=_annotator(),
            max_workers=1,
        ) as srv:
            pages = _site_pages(13)
            fingerprint = sources_fingerprint(pages)
            responses = []

            def racer():
                with ServiceClient(srv.address, timeout=120) as cli:
                    responses.append(cli.apply("shop-race", pages))

            threads = [threading.Thread(target=racer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)

            assert len(responses) == 4
            assert all(r["count"] == 3 for r in responses)
            # The registry was populated exactly once for the fingerprint.
            assert len(srv.registry.versions(fingerprint)) == 1
            assert srv.registry.learned == 1


# -- durability ---------------------------------------------------------------


class TestRestartResume:
    def test_restarted_daemon_serves_without_relearning(self, tmp_path):
        """Acceptance: kill the daemon, start a fresh one on the same
        registry directory — it serves the learned fleet from the file
        store without relearning (it is not even armed to learn)."""
        store = tmp_path / "registry"
        pages = _site_pages(17)
        with ExtractionServer(
            WrapperRegistry(store),
            extractor=_extractor(),
            annotator=_annotator(),
            max_workers=1,
        ) as first:
            with ServiceClient(first.address) as cli:
                learned = cli.apply("shop-durable", pages)
                assert learned["source"] == "learned"

        # A new process would build a fresh registry over the same dir;
        # this server cannot learn at all, so a hit is the only way.
        with ExtractionServer(
            WrapperRegistry(store), max_workers=1
        ) as second:
            with ServiceClient(second.address) as cli:
                served = cli.apply("shop-durable", pages)
                assert served["source"] == "fingerprint"
                assert served["version"] == learned["version"]
                assert served["nodes"] == learned["nodes"]
            assert second.registry.learned == 0


class TestReaderDropAccounting:
    def test_transport_error_drops_reader_with_a_trace(self, server, client):
        """Regression: a reader thread dying on a transport error used
        to drop the client silently; the stats op must now report the
        drop and keep the last error for diagnosis."""
        from repro.service.server import _Client

        class _BrokenSock:
            def recv(self, size):
                raise OSError(104, "connection reset by peer")

            def close(self):
                pass

        before = client.stats()["server"]
        assert before["dropped_readers"] == 0
        assert before["last_read_error"] is None

        broken = _Client(_BrokenSock(), 4)
        server._read_loop(broken)

        assert broken.closed
        after = client.stats()["server"]
        assert after["dropped_readers"] == 1
        assert "ConnectionResetError" in after["last_read_error"]
        assert "connection reset" in after["last_read_error"]

    def test_clean_eof_is_not_a_dropped_reader(self, server, client):
        """A client that disconnects normally must not count as
        dropped: the counter means failures, not goodbyes."""
        with ServiceClient(server.address) as extra:
            extra.ping()
        assert client.stats()["server"]["dropped_readers"] == 0
