"""Tests for metrics and the experiment runner."""

import pytest

from repro.evaluation.metrics import PRF, aggregate, prf, record_prf
from repro.evaluation.runner import (
    METHODS,
    SingleTypeExperiment,
    fit_models,
    split_sites,
)
from repro.htmldom.dom import NodeId
from repro.wrappers.xpath_inductor import XPathInductor


def ids(*preorders):
    return frozenset(NodeId(0, p) for p in preorders)


class TestPRF:
    def test_perfect(self):
        result = prf(ids(1, 2), ids(1, 2))
        assert result.precision == result.recall == result.f1 == 1.0

    def test_half_precision(self):
        result = prf(ids(1, 2), ids(1))
        assert result.precision == 0.5
        assert result.recall == 1.0
        assert result.f1 == pytest.approx(2 / 3)

    def test_empty_prediction_convention(self):
        result = prf(frozenset(), ids(1))
        assert result.precision == 1.0
        assert result.recall == 0.0
        assert result.f1 == 0.0

    def test_empty_gold_convention(self):
        result = prf(ids(1), frozenset())
        assert result.recall == 1.0

    def test_both_empty(self):
        result = prf(frozenset(), frozenset())
        assert result.f1 == 1.0

    def test_aggregate_macro_averages(self):
        combined = aggregate([PRF(1.0, 0.0), PRF(0.0, 1.0)])
        assert combined.precision == 0.5
        assert combined.recall == 0.5

    def test_aggregate_empty(self):
        assert aggregate([]).f1 == 0.0

    def test_str_format(self):
        assert "F1=" in str(PRF(0.5, 0.5))


class TestRecordPRF:
    def test_exact_tuple_matching(self):
        gold = [(("name", NodeId(0, 1)), ("zip", NodeId(0, 2)))]
        assert record_prf(gold, gold).f1 == 1.0

    def test_partial(self):
        gold = [("a",), ("b",)]
        predicted = [("a",), ("c",)]
        result = record_prf(predicted, gold)
        assert result.precision == 0.5
        assert result.recall == 0.5


class TestSplitAndFit:
    def test_split_is_half_and_disjoint(self, small_dealers):
        train, test = split_sites(small_dealers.sites)
        assert len(train) + len(test) == len(small_dealers.sites)
        assert not ({s.name for s in train} & {s.name for s in test})

    def test_fit_models_estimates_profile(self, small_dealers):
        train, _ = split_sites(small_dealers.sites)
        models = fit_models(train, small_dealers.annotator(), "name")
        profile = models.annotation.profile
        assert profile.r < 0.5  # the dictionary has low recall
        assert profile.p > 0.8


class TestSingleTypeExperiment:
    @pytest.fixture(scope="class")
    def experiment(self, small_dealers):
        return SingleTypeExperiment(
            small_dealers.sites,
            small_dealers.annotator(),
            XPathInductor(),
            gold_type="name",
        )

    def test_all_methods_run(self, experiment):
        outcomes = experiment.run(methods=METHODS)
        assert set(outcomes) == set(METHODS)
        for outcome in outcomes.values():
            assert len(outcome.per_site) == len(experiment.test)

    def test_ntw_beats_naive(self, experiment):
        outcomes = experiment.run(methods=("naive", "ntw"))
        assert outcomes["ntw"].overall.f1 >= outcomes["naive"].overall.f1

    def test_naive_recall_is_high(self, experiment):
        outcomes = experiment.run(methods=("naive",))
        assert outcomes["naive"].overall.recall >= 0.9

    def test_evaluate_on_all(self, experiment, small_dealers):
        outcomes = experiment.run(methods=("ntw",), evaluate_on="all")
        assert len(outcomes["ntw"].per_site) == len(small_dealers.sites)

    def test_unknown_method_rejected(self, experiment):
        with pytest.raises(ValueError):
            experiment.run(methods=("magic",))

    def test_unknown_split_rejected(self, experiment):
        with pytest.raises(ValueError):
            experiment.run(methods=("ntw",), evaluate_on="everything")
