"""Deterministic fault injection: plan semantics, activation, hooks."""

import json
import os

import pytest

from repro import faults


@pytest.fixture(autouse=True)
def disarm():
    """No test leaks an armed plan (or a stale env var) to the next."""
    faults.clear()
    yield
    faults.clear()


class TestFaultRule:
    def test_unknown_point_rejected(self):
        with pytest.raises(faults.FaultError, match="unknown injection point"):
            faults.FaultRule(point="worker.explode")

    def test_rate_bounds_validated(self):
        with pytest.raises(faults.FaultError, match="rate"):
            faults.FaultRule(point=faults.WORKER_CRASH, rate=1.5)
        with pytest.raises(faults.FaultError, match="rate"):
            faults.FaultRule(point=faults.WORKER_CRASH, rate=-0.1)

    def test_at_is_one_based(self):
        with pytest.raises(faults.FaultError, match="1-based"):
            faults.FaultRule(point=faults.WORKER_CRASH, at=(0,))


class TestFaultPlanSemantics:
    def test_at_fires_on_exact_hit_counts(self):
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.CONN_DROP, at=[2, 4])
        fired = [plan.fire(faults.CONN_DROP) is not None for _ in range(6)]
        assert fired == [False, True, False, True, False, False]

    def test_match_restricts_and_does_not_consume_hits(self):
        """Non-matching contexts must not advance the hit counter —
        ``at=[1]`` means the first *matching* hit, whatever came before."""
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.WORKER_CRASH, at=[1], match="poison")
        assert plan.fire(faults.WORKER_CRASH, "w0:apply:healthy") is None
        assert plan.fire(faults.WORKER_CRASH, "w0:apply:healthy") is None
        assert plan.fire(faults.WORKER_CRASH, "w0:learn:poison") is not None
        assert plan.fire(faults.WORKER_CRASH, "w0:learn:poison") is None

    def test_max_fires_caps_a_rate_rule(self):
        plan = faults.FaultPlan(seed=5)
        plan.add(faults.CONN_DROP, rate=1.0, max_fires=2)
        fired = [plan.fire(faults.CONN_DROP) is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_rate_sequence_reproducible_per_seed(self):
        def sequence(seed):
            plan = faults.FaultPlan(seed=seed)
            plan.add(faults.CONN_DROP, rate=0.5)
            return [
                plan.fire(faults.CONN_DROP) is not None for _ in range(64)
            ]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)
        assert any(sequence(7))  # rate=0.5 over 64 draws fires somewhere
        assert not all(sequence(7))

    def test_first_matching_rule_wins(self):
        plan = faults.FaultPlan(seed=1)
        first = plan.add(faults.CONN_DROP, at=[1], match="apply")
        second = plan.add(faults.CONN_DROP, rate=1.0)
        assert plan.fire(faults.CONN_DROP, "apply:shop") is first
        assert plan.fire(faults.CONN_DROP, "learn:shop") is second

    def test_json_round_trip(self):
        plan = faults.FaultPlan(seed=42)
        plan.add(faults.WORKER_CRASH, at=[1, 3], match="w0")
        plan.add(faults.WORKER_HANG, rate=0.25, max_fires=2, delay=1.5)
        clone = faults.FaultPlan.from_json(plan.to_json())
        assert clone.seed == 42
        assert clone.rules == plan.rules
        # Counters are runtime state, not configuration.
        document = json.loads(plan.to_json())
        assert "hits" not in document["rules"][0]

    def test_bad_json_rejected(self):
        with pytest.raises(faults.FaultError, match="invalid fault plan"):
            faults.FaultPlan.from_json("{torn")
        with pytest.raises(faults.FaultError, match="object"):
            faults.FaultPlan.from_json("[1]")
        with pytest.raises(faults.FaultError, match="missing field"):
            faults.FaultPlan.from_json('{"rules": [{"rate": 1.0}]}')


class TestActivation:
    def test_no_plan_means_every_hook_is_inert(self):
        assert faults.active() is None
        assert faults.fire(faults.CONN_DROP) is None
        faults.perturb_worker("w0:apply:shop")  # must not raise or sleep

    def test_install_arms_process_wide(self):
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.CONN_DROP, at=[1])
        faults.install(plan)
        assert faults.active() is plan
        assert faults.fire(faults.CONN_DROP) is not None
        faults.install(None)
        assert faults.fire(faults.CONN_DROP) is None

    def test_env_round_trip_for_exec_subprocesses(self):
        plan = faults.FaultPlan(seed=9)
        plan.add(faults.REGISTRY_WRITE, at=[1])
        faults.install(plan, env=True)
        assert faults.ENV_VAR in os.environ
        # A fresh process resolves the env var on first use.
        faults.clear()
        os.environ[faults.ENV_VAR] = plan.to_json()
        resolved = faults.active()
        assert resolved is not None
        assert resolved.rules[0].point == faults.REGISTRY_WRITE
        # Disarming with env=True also retracts the export.
        faults.install(None, env=True)
        assert faults.ENV_VAR not in os.environ

    def test_slow_perturbation_sleeps_its_delay(self):
        import time

        plan = faults.FaultPlan(seed=1)
        plan.add(faults.WORKER_SLOW, at=[1], delay=0.02)
        faults.install(plan)
        start = time.monotonic()
        faults.perturb_worker("w0:apply:shop")
        assert time.monotonic() - start >= 0.02
        # Second hit: rule spent, no sleep.
        start = time.monotonic()
        faults.perturb_worker("w0:apply:shop")
        assert time.monotonic() - start < 0.02


class TestRegistryWriteInjection:
    def test_file_backend_write_fails_on_cue(self, tmp_path):
        from repro.api import WrapperArtifact
        from repro.service import WrapperRegistry

        artifact = WrapperArtifact(
            wrapper_spec={"kind": "xpath", "features": [[1, "tag", "p"]]},
            rule="//p/text()",
        )
        registry = WrapperRegistry(str(tmp_path))
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.REGISTRY_WRITE, at=[1])
        faults.install(plan)
        with pytest.raises(OSError, match="injected fault"):
            registry.put("fp-one", artifact, origin="test")
        # The rule is spent: the retry lands durably.
        record = registry.put("fp-one", artifact, origin="test")
        assert record.version == 1
        assert registry.fingerprints() == ["fp-one"]


class TestPointRegistry:
    """The central point registry is the single source of truth: every
    loader and installer validates against it, with actionable errors."""

    def test_every_constant_is_described(self):
        from repro.faults import registry

        constant_points = {
            value
            for name, value in vars(registry).items()
            if name.isupper() and isinstance(value, str)
        }
        assert constant_points == set(registry.POINT_DESCRIPTIONS)
        assert registry.POINTS == tuple(registry.POINT_DESCRIPTIONS)
        for point, description in registry.POINT_DESCRIPTIONS.items():
            assert "." in point
            assert description  # one line on where it fires

    def test_validate_point_lists_every_valid_point(self):
        with pytest.raises(faults.FaultError) as excinfo:
            faults.validate_point("worker.explode")
        message = str(excinfo.value)
        assert "worker.explode" in message
        for point in faults.POINT_DESCRIPTIONS:
            assert point in message

    def test_from_json_rejects_unknown_point_naming_the_rule(self):
        raw = json.dumps(
            {
                "seed": 3,
                "rules": [
                    {"point": faults.WORKER_CRASH, "rate": 1.0},
                    {"point": "worker.explode", "rate": 1.0},
                ],
            }
        )
        with pytest.raises(faults.FaultError) as excinfo:
            faults.FaultPlan.from_json(raw)
        message = str(excinfo.value)
        assert message.startswith("fault plan rule 1:")
        assert "worker.explode" in message
        assert faults.WORKER_CRASH in message  # lists the valid points

    def test_install_revalidates_mutated_rules(self):
        plan = faults.FaultPlan(seed=1)
        rule = plan.add(faults.CONN_DROP, at=[1])
        object.__setattr__(rule, "point", "conn.explode")
        with pytest.raises(faults.FaultError, match="conn.explode"):
            faults.install(plan)
        assert faults.active() is None  # nothing armed on failure
