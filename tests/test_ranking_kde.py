"""Tests for the Gaussian KDE."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranking.kde import DENSITY_FLOOR, MIN_BANDWIDTH, GaussianKde


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GaussianKde([])

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            GaussianKde([1.0], bandwidth=0.0)

    def test_identical_samples_get_floor_bandwidth(self):
        kde = GaussianKde([4, 4, 4, 4])
        assert kde.bandwidth == MIN_BANDWIDTH

    def test_explicit_bandwidth(self):
        kde = GaussianKde([1, 2, 3], bandwidth=2.0)
        assert kde.bandwidth == 2.0


class TestDensity:
    def test_peaks_at_data(self):
        kde = GaussianKde([4, 4, 4, 5, 3])
        assert kde.density(4) > kde.density(10)

    def test_floor_far_away(self):
        kde = GaussianKde([0.0])
        assert kde.density(1e6) == DENSITY_FLOOR

    def test_log_density_consistent(self):
        kde = GaussianKde([1, 2, 3])
        assert kde.log_density(2) == pytest.approx(math.log(kde.density(2)))

    def test_symmetric_around_single_sample(self):
        kde = GaussianKde([5.0])
        assert kde.density(4.0) == pytest.approx(kde.density(6.0))

    def test_smooths_between_integers(self):
        kde = GaussianKde([3, 5])
        assert kde.density(4) > DENSITY_FLOOR

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 60), min_size=1, max_size=30),
        st.integers(-10, 80),
    )
    def test_density_positive_and_finite(self, samples, x):
        kde = GaussianKde(samples)
        value = kde.density(x)
        assert value >= DENSITY_FLOOR
        assert math.isfinite(value)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 20), min_size=2, max_size=20))
    def test_normalization_approximately_one(self, samples):
        """Riemann sum of the density over a wide grid is close to 1
        (modulo the floor, which only adds mass)."""
        kde = GaussianKde(samples)
        lo = min(samples) - 8 * kde.bandwidth
        hi = max(samples) + 8 * kde.bandwidth
        steps = 2000
        width = (hi - lo) / steps
        total = sum(
            kde.density(lo + (i + 0.5) * width) for i in range(steps)
        ) * width
        assert total == pytest.approx(1.0, abs=0.1)
