"""Well-behavedness (Definition 1) for all inductors, incl. property tests.

Theorems 4 and 5 of the paper state LR and XPATH are well-behaved; the
TABLE inductor is argued well-behaved in Sec. 4.  These tests check
fidelity, closure and monotonicity on concrete and hypothesis-generated
label sets over both grid and HTML corpora.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.site import Site
from repro.wrappers.lr import LRInductor
from repro.wrappers.properties import (
    check_closure,
    check_fidelity,
    check_monotonicity,
    is_well_behaved,
)
from repro.wrappers.table import Grid, TableInductor
from repro.wrappers.xpath_inductor import XPathInductor

GRID = Grid(4, 5)

_HTML_PAGES = [
    "<div class='a'><table>"
    "<tr><td><u>N1</u></td><td>S1</td><td><b>P1</b></td></tr>"
    "<tr><td><u>N2</u></td><td>S2</td><td><b>P2</b></td></tr>"
    "</table></div><ul><li>x1</li><li>x2</li></ul>",
    "<div class='a'><table>"
    "<tr><td><u>N3</u></td><td>S3</td><td><b>P3</b></td></tr>"
    "</table></div><ul><li>x3</li></ul>",
]
HTML_SITE = Site.from_html("props", _HTML_PAGES)
HTML_TEXT_IDS = sorted(HTML_SITE.iter_text_node_ids())

grid_labels = st.sets(
    st.sampled_from(sorted(GRID.all_cells())), min_size=1, max_size=6
).map(frozenset)

html_labels = st.sets(
    st.sampled_from(HTML_TEXT_IDS), min_size=1, max_size=5
).map(frozenset)


class TestTableWellBehaved:
    @settings(max_examples=60, deadline=None)
    @given(grid_labels)
    def test_fidelity(self, labels):
        assert check_fidelity(TableInductor(), GRID, labels)

    @settings(max_examples=60, deadline=None)
    @given(grid_labels)
    def test_closure(self, labels):
        assert check_closure(TableInductor(), GRID, labels)

    @settings(max_examples=60, deadline=None)
    @given(grid_labels)
    def test_monotonicity(self, labels):
        assert check_monotonicity(TableInductor(), GRID, labels)


class TestXPathWellBehaved:
    @settings(max_examples=40, deadline=None)
    @given(html_labels)
    def test_fidelity(self, labels):
        assert check_fidelity(XPathInductor(), HTML_SITE, labels)

    @settings(max_examples=40, deadline=None)
    @given(html_labels)
    def test_closure(self, labels):
        assert check_closure(XPathInductor(), HTML_SITE, labels)

    @settings(max_examples=40, deadline=None)
    @given(html_labels)
    def test_monotonicity(self, labels):
        assert check_monotonicity(XPathInductor(), HTML_SITE, labels)


class TestLRWellBehaved:
    @settings(max_examples=40, deadline=None)
    @given(html_labels)
    def test_fidelity(self, labels):
        assert check_fidelity(LRInductor(), HTML_SITE, labels)

    @settings(max_examples=40, deadline=None)
    @given(html_labels)
    def test_closure(self, labels):
        assert check_closure(LRInductor(), HTML_SITE, labels)

    @settings(max_examples=40, deadline=None)
    @given(html_labels)
    def test_monotonicity(self, labels):
        assert check_monotonicity(LRInductor(), HTML_SITE, labels)


class TestCheckers:
    def test_empty_labels_vacuously_pass(self):
        inductor = TableInductor()
        assert check_fidelity(inductor, GRID, frozenset())
        assert check_closure(inductor, GRID, frozenset())
        assert check_monotonicity(inductor, GRID, frozenset())

    def test_is_well_behaved_combines_all(self, dealer_site):
        labels = frozenset(
            dealer_site.find_text_nodes("PORTER FURNITURE")
            + dealer_site.find_text_nodes("HOUSE OF VALUES")
        )
        assert is_well_behaved(XPathInductor(), dealer_site, labels)

    def test_detects_misbehaving_inductor(self):
        """A deliberately broken inductor must fail fidelity."""

        class Broken(TableInductor):
            def induce(self, corpus, labels):
                # Always returns a single fixed cell — ignores labels.
                return super().induce(corpus, frozenset({corpus.cell(0, 0)}))

        labels = frozenset({GRID.cell(1, 1), GRID.cell(2, 2)})
        assert not check_fidelity(Broken(), GRID, labels)
