"""Tests for report rendering."""

from repro.evaluation.metrics import PRF
from repro.evaluation.report import (
    format_grid,
    format_per_site_table,
    format_prf_table,
    summarize_prf,
)
from repro.evaluation.runner import MethodOutcome


def outcome(method, values):
    result = MethodOutcome(method=method)
    for index, (precision, recall) in enumerate(values):
        result.per_site.append(PRF(precision, recall))
        result.site_names.append(f"site-{index}")
    return result


class TestPrfTable:
    def test_contains_all_methods(self):
        outcomes = {
            "naive": outcome("naive", [(0.5, 1.0)]),
            "ntw": outcome("ntw", [(1.0, 1.0)]),
        }
        table = format_prf_table(outcomes, title="demo")
        assert "demo" in table
        assert "naive" in table
        assert "ntw" in table
        assert "1.000" in table

    def test_values_are_macro_averages(self):
        outcomes = {"m": outcome("m", [(1.0, 0.0), (0.0, 1.0)])}
        table = format_prf_table(outcomes)
        assert "0.500" in table


class TestPerSiteTable:
    def test_one_row_per_site(self):
        outcomes = {
            "ntw": outcome("ntw", [(1.0, 1.0), (0.5, 0.5)]),
        }
        table = format_per_site_table(outcomes)
        assert "site-0" in table
        assert "site-1" in table

    def test_empty_outcomes(self):
        assert format_per_site_table({}, title="t") == "t"


class TestGrid:
    def test_table1_layout(self):
        table = {(0.1, 0.05): 0.4, (0.1, 0.3): 0.7, (0.9, 0.05): 0.7, (0.9, 0.3): 0.97}
        text = format_grid(table, (0.1, 0.9), (0.05, 0.3))
        lines = text.splitlines()
        assert len(lines) == 3
        assert "0.97" in lines[-1]
        assert lines[0].startswith("p\\r")


class TestSummarize:
    def test_one_line(self):
        line = summarize_prf(PRF(1.0, 0.5))
        assert "precision=1.000" in line
        assert "f1=" in line
        assert "\n" not in line
