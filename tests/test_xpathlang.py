"""Tests for the xpath fragment: parser and evaluator."""

import pytest

from repro.htmldom.treebuilder import parse_html
from repro.xpathlang import (
    XPathSyntaxError,
    evaluate,
    parse_xpath,
)
from repro.xpathlang.ast import Axis, PositionPredicate, AttributePredicate


class TestParser:
    def test_simple_descendant(self):
        path = parse_xpath("//td")
        assert len(path.steps) == 1
        assert path.steps[0].axis is Axis.DESCENDANT
        assert path.steps[0].test == "td"
        assert not path.selects_text

    def test_child_chain(self):
        path = parse_xpath("//table/tr/td")
        assert [s.axis for s in path.steps] == [
            Axis.DESCENDANT,
            Axis.CHILD,
            Axis.CHILD,
        ]

    def test_text_selector(self):
        path = parse_xpath("//td/text()")
        assert path.selects_text

    def test_attribute_predicate(self):
        path = parse_xpath("//div[@class='dealerlinks']")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, AttributePredicate)
        assert predicate.name == "class"
        assert predicate.value == "dealerlinks"

    def test_double_quoted_attribute(self):
        path = parse_xpath('//div[@class="x y"]')
        assert path.steps[0].predicates[0].value == "x y"

    def test_position_predicate(self):
        path = parse_xpath("//td[2]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, PositionPredicate)
        assert predicate.position == 2

    def test_combined_predicates(self):
        path = parse_xpath("//table[1]/tr/td[2]/text()")
        assert path.steps[0].predicates == (PositionPredicate(1),)
        assert path.steps[2].predicates == (PositionPredicate(2),)

    def test_wildcard(self):
        path = parse_xpath("//*")
        assert path.steps[0].test == "*"

    def test_paper_example_roundtrip(self):
        text = "//div[@class='content']/table[1]/tr/td[2]/text()"
        assert str(parse_xpath(text)) == text

    def test_escaped_quote_in_value(self):
        path = parse_xpath("//div[@title='it\\'s']")
        assert path.steps[0].predicates[0].value == "it's"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "td",
            "//",
            "//td[",
            "//td[@]",
            "//td[@a=']",
            "//td[1.5]",
            "//text()",
            "//td/text()/b",
            "//td[@a='x'",
        ],
    )
    def test_rejects_invalid(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)


@pytest.fixture()
def doc():
    return parse_html(
        """
        <html><body>
        <div class='dealerlinks'>
          <table>
            <tr><td><u>A1</u></td><td>B1</td></tr>
            <tr><td><u>A2</u></td><td>B2</td></tr>
          </table>
        </div>
        <div class='other'>
          <table><tr><td>C1</td></tr></table>
        </div>
        </body></html>
        """
    )


def texts(nodes):
    return [n.text for n in nodes]


class TestEvaluator:
    def test_descendant_tag(self, doc):
        assert len(evaluate("//td", doc)) == 5

    def test_attribute_filter(self, doc):
        result = evaluate("//div[@class='dealerlinks']//u/text()", doc)
        assert texts(result) == ["A1", "A2"]

    def test_child_vs_descendant(self, doc):
        assert evaluate("//div/u", doc) == []
        assert len(evaluate("//div//u", doc)) == 2

    def test_position_within_parent_groups(self, doc):
        result = evaluate("//td[2]/text()", doc)
        assert texts(result) == ["B1", "B2"]

    def test_position_on_rows(self, doc):
        result = evaluate("//tr[2]/td[1]/u/text()", doc)
        assert texts(result) == ["A2"]

    def test_wildcard_step(self, doc):
        result = evaluate("//table/tr/*[1]/u/text()", doc)
        assert texts(result) == ["A1", "A2"]

    def test_text_of_all_tds(self, doc):
        result = evaluate("//td/text()", doc)
        assert texts(result) == ["B1", "B2", "C1"]

    def test_no_match(self, doc):
        assert evaluate("//section", doc) == []

    def test_absolute_root_step(self, doc):
        assert evaluate("/html", doc) == [doc.root]

    def test_root_matchable_by_descendant_axis(self, doc):
        assert doc.root in evaluate("//html", doc)

    def test_results_in_document_order(self, doc):
        result = evaluate("//td", doc)
        orders = [n.node_id.preorder for n in result]
        assert orders == sorted(orders)

    def test_results_deduplicated(self, doc):
        result = evaluate("//div//table", doc)
        assert len(result) == len({id(n) for n in result})

    def test_string_and_ast_agree(self, doc):
        text = "//div[@class='dealerlinks']/table/tr/td/u/text()"
        assert evaluate(text, doc) == evaluate(parse_xpath(text), doc)

    def test_position_filter_out_of_range(self, doc):
        assert evaluate("//tr[9]", doc) == []

    def test_paper_figure1_rule(self):
        doc = parse_html(
            "<div class='dealerlinks'><table>"
            "<tr><td><u>PORTER FURNITURE</u><br>201 HWY<br>NEW ALBANY</td></tr>"
            "<tr><td><u>WOODLAND FURNITURE</u><br>123 MAIN<br>WOODLAND</td></tr>"
            "</table></div>"
        )
        result = evaluate("//div[@class='dealerlinks']//td/u/text()", doc)
        assert texts(result) == ["PORTER FURNITURE", "WOODLAND FURNITURE"]
