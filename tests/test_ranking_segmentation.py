"""Tests for record segmentation (paper Sec. 6 / Fig. 7)."""

import pytest

from repro.htmldom.serializer import TEXT_TOKEN
from repro.ranking.segmentation import page_tokens, record_segments
from repro.site import Site


@pytest.fixture()
def listing_site():
    return Site.from_html(
        "seg",
        [
            "<table>"
            "<tr><td><u>N1</u></td><td>A1</td></tr>"
            "<tr><td><u>N2</u></td><td>A2</td></tr>"
            "<tr><td><u>N3</u></td><td>A3</td></tr>"
            "</table>"
        ],
    )


def name_ids(site):
    return frozenset(
        node_id
        for text in ("N1", "N2", "N3")
        for node_id in site.find_text_nodes(text)
    )


class TestPageTokens:
    def test_stream_matches_preorder(self, listing_site):
        tokens = page_tokens(listing_site, 0)
        assert tokens[0] == "html"
        assert tokens.count(TEXT_TOKEN) == 6
        assert tokens.count("tr") == 3

    def test_type_map_replaces_tokens(self, listing_site):
        names = name_ids(listing_site)
        type_map = {n: "name" for n in names}
        tokens = page_tokens(listing_site, 0, type_map=type_map)
        assert tokens.count("<name>") == 3
        assert tokens.count(TEXT_TOKEN) == 3


class TestRecordSegments:
    def test_consecutive_boundaries(self, listing_site):
        segments = record_segments(listing_site, name_ids(listing_site))
        # 3 boundaries on one page -> 2 segments.
        assert len(segments) == 2

    def test_segments_are_structurally_identical(self, listing_site):
        segments = record_segments(listing_site, name_ids(listing_site))
        assert segments[0] == segments[1]

    def test_segment_content(self, listing_site):
        segments = record_segments(listing_site, name_ids(listing_site))
        # Each record: <#text>(name) ... up to the next name text node.
        assert segments[0][0] == TEXT_TOKEN
        assert "tr" in segments[0]
        assert "td" in segments[0]

    def test_cyclic_shift_preserves_similarity(self, listing_site):
        """Using the address nodes as boundaries still yields identical
        segments (the paper's shifted-record observation)."""
        addresses = frozenset(
            node_id
            for text in ("A1", "A2", "A3")
            for node_id in listing_site.find_text_nodes(text)
        )
        segments = record_segments(listing_site, addresses)
        assert len(segments) == 2
        assert segments[0] == segments[1]

    def test_fewer_than_two_boundaries_no_segments(self, listing_site):
        single = frozenset(listing_site.find_text_nodes("N1"))
        assert record_segments(listing_site, single) == []

    def test_empty_extraction(self, listing_site):
        assert record_segments(listing_site, frozenset()) == []

    def test_max_segments_cap(self, listing_site):
        segments = record_segments(
            listing_site, name_ids(listing_site), max_segments=1
        )
        assert len(segments) == 1

    def test_max_segment_tokens_truncates(self, listing_site):
        segments = record_segments(
            listing_site, name_ids(listing_site), max_segment_tokens=3
        )
        assert all(len(s) <= 3 for s in segments)

    def test_boundary_type_filters(self, listing_site):
        names = name_ids(listing_site)
        addresses = frozenset(
            node_id
            for text in ("A1", "A2", "A3")
            for node_id in listing_site.find_text_nodes(text)
        )
        type_map = {n: "name" for n in names} | {a: "addr" for a in addresses}
        segments = record_segments(
            listing_site,
            names | addresses,
            type_map=type_map,
            boundary_type="name",
        )
        assert len(segments) == 2
        assert segments[0].count("<addr>") == 1

    def test_multipage_segments(self):
        page = "<ul><li>X1</li><li>X2</li></ul>"
        site = Site.from_html("two", [page, page])
        extracted = frozenset(site.find_text_nodes("X1")) | frozenset(
            site.find_text_nodes("X2")
        )
        segments = record_segments(site, extracted)
        # one segment per page (two boundaries each)
        assert len(segments) == 2

    def test_irregular_list_segments_differ(self):
        site = Site.from_html(
            "irregular",
            [
                "<div><p><b>N1</b></p><table><tr><td>junk</td></tr></table>"
                "<span><b>N2</b></span><ul><li>x</li><li>y</li></ul>"
                "<i><b>N3</b></i></div>"
            ],
        )
        extracted = frozenset(
            node_id
            for text in ("N1", "N2", "N3")
            for node_id in site.find_text_nodes(text)
        )
        segments = record_segments(site, extracted)
        assert len(segments) == 2
        assert segments[0] != segments[1]
