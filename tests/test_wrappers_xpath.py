"""Tests for the XPATH inductor: features, induction, rendering."""

import pytest

from repro.site import Site
from repro.wrappers.xpath_inductor import XPathInductor, XPathWrapper
from repro.xpathlang import evaluate


@pytest.fixture()
def site():
    return Site.from_html(
        "shop",
        [
            "<div class='main'><table>"
            "<tr><td><u>ALPHA</u></td><td>one</td></tr>"
            "<tr><td><u>BETA</u></td><td>two</td></tr>"
            "</table></div><div class='side'><ul><li>noise</li></ul></div>",
            "<div class='main'><table>"
            "<tr><td><u>GAMMA</u></td><td>three</td></tr>"
            "</table></div><div class='side'><ul><li>promo</li></ul></div>",
        ],
    )


def label(site, text):
    (node_id,) = site.find_text_nodes(text)
    return node_id


class TestFeatures:
    def test_position_one_is_parent(self, site):
        inductor = XPathInductor()
        features = inductor.feature_map(site, label(site, "ALPHA"))
        assert features[(1, "tag")] == "u"
        assert features[(2, "tag")] == "td"
        assert features[(3, "tag")] == "tr"

    def test_childnumber_feature(self, site):
        inductor = XPathInductor()
        one = inductor.feature_map(site, label(site, "one"))
        assert one[(1, "tag")] == "td"
        assert one[(1, "childnum")] == 2

    def test_html_attribute_feature(self, site):
        inductor = XPathInductor()
        features = inductor.feature_map(site, label(site, "ALPHA"))
        depth = max(pos for pos, _ in features)
        assert features[(depth - 1, "@class")] == "main"

    def test_attribute_stream_covers_all_label_attrs(self, site):
        inductor = XPathInductor()
        labels = frozenset({label(site, "ALPHA"), label(site, "one")})
        stream = list(inductor.attribute_stream(site, labels))
        assert len(stream) == len(set(stream))
        for node_id in labels:
            for attr in inductor.feature_map(site, node_id):
                assert attr in stream


class TestInduction:
    def test_clean_labels_learn_precise_rule(self, site):
        inductor = XPathInductor()
        labels = frozenset({label(site, "ALPHA"), label(site, "BETA")})
        extracted = inductor.induce(site, labels).extract(site)
        texts = sorted(site.text_node(n).text for n in extracted)
        assert texts == ["ALPHA", "BETA", "GAMMA"]

    def test_noisy_label_overgeneralizes(self, site):
        inductor = XPathInductor()
        clean = frozenset({label(site, "ALPHA"), label(site, "BETA")})
        noisy = clean | {label(site, "noise")}
        clean_set = inductor.induce(site, clean).extract(site)
        noisy_set = inductor.induce(site, noisy).extract(site)
        assert clean_set < noisy_set

    def test_single_label_extracts_consistent_position(self, site):
        inductor = XPathInductor()
        wrapper = inductor.induce(site, frozenset({label(site, "ALPHA")}))
        extracted = wrapper.extract(site)
        texts = sorted(site.text_node(n).text for n in extracted)
        # ALPHA is in row 1; GAMMA occupies the same position on page 2.
        assert texts == ["ALPHA", "GAMMA"]

    def test_candidates_are_all_text_nodes(self, site):
        inductor = XPathInductor()
        assert inductor.candidates(site) == site.text_node_ids()


class TestRendering:
    def test_rendered_xpath_evaluates_to_extraction(self, site):
        inductor = XPathInductor()
        labels = frozenset({label(site, "ALPHA"), label(site, "BETA")})
        wrapper = inductor.induce(site, labels)
        assert wrapper.exactly_renderable
        path = wrapper.to_xpath()
        for page in site.pages:
            evaluated = {n.node_id for n in evaluate(path, page)}
            extracted = {
                n for n in wrapper.extract(site) if n.page == page.page_index
            }
            assert evaluated == extracted

    def test_rendering_includes_class_filter(self, site):
        inductor = XPathInductor()
        labels = frozenset({label(site, "ALPHA"), label(site, "BETA")})
        rule = inductor.induce(site, labels).rule()
        assert "@class='main'" in rule
        assert rule.endswith("/text()")

    def test_empty_feature_wrapper_renders_wildcard(self):
        wrapper = XPathWrapper(features=frozenset())
        assert wrapper.rule() == "//*/text()"

    def test_gap_positions_render_as_wildcard(self):
        wrapper = XPathWrapper(
            features=frozenset({((1, "tag"), "u"), ((3, "tag"), "tr")})
        )
        assert wrapper.rule() == "//tr/*/u/text()"

    def test_childnum_without_tag_not_exactly_renderable(self):
        wrapper = XPathWrapper(features=frozenset({((1, "childnum"), 2)}))
        assert not wrapper.exactly_renderable

    def test_wrapper_equality_by_features(self):
        a = XPathWrapper(features=frozenset({((1, "tag"), "u")}))
        b = XPathWrapper(features=frozenset({((1, "tag"), "u")}))
        assert a == b
        assert hash(a) == hash(b)


class TestPaperFigure1:
    """The Section 1 narrative: one bad label over-generalizes the rule."""

    @pytest.fixture()
    def figure1(self):
        page = (
            "<div class='dealerlinks'><table>"
            "<tr><td><u>PORTER FURNITURE</u><br>201 HWY. 30 West<br>"
            "NEW ALBANY, MS 38652</td></tr>"
            "<tr><td><u>WOODLAND FURNITURE</u><br>123 Main St.<br>"
            "WOODLAND, MS 3977</td></tr>"
            "</table></div>"
        )
        return Site.from_html("albany", [page])

    def test_clean_rule_extracts_only_names(self, figure1):
        inductor = XPathInductor()
        labels = frozenset(
            {
                label(figure1, "PORTER FURNITURE"),
                label(figure1, "WOODLAND FURNITURE"),
            }
        )
        extracted = inductor.induce(figure1, labels).extract(figure1)
        texts = sorted(figure1.text_node(n).text for n in extracted)
        assert texts == ["PORTER FURNITURE", "WOODLAND FURNITURE"]

    def test_bad_label_pulls_in_all_td_text(self, figure1):
        inductor = XPathInductor()
        labels = frozenset(
            {
                label(figure1, "PORTER FURNITURE"),
                label(figure1, "WOODLAND FURNITURE"),
                label(figure1, "WOODLAND, MS 3977"),  # label "3" in Fig. 1
            }
        )
        extracted = inductor.induce(figure1, labels).extract(figure1)
        # The over-generalized rule now matches every text under td.
        assert len(extracted) == 6
