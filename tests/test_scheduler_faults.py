"""Worker-pool resilience under injected faults: quarantine, respawn,
crash-loop backoff, arena-segment loss."""

import time
from collections import deque

import pytest

from repro import faults
from repro.api import WorkerPool
from repro.site import Site


@pytest.fixture(autouse=True)
def disarm():
    faults.clear()
    yield
    faults.clear()


def _page(name: str) -> str:
    return f"<div><table><tr><td><u>{name}</u></td></tr></table></div>"


@pytest.fixture(scope="module")
def artifact():
    from repro.annotators.dictionary import DictionaryAnnotator
    from repro.api import Extractor, ExtractorConfig

    site = Site.from_html("shop", [_page("ALPHA")])
    labels = DictionaryAnnotator(["ALPHA"]).annotate(site)
    extractor = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
    return extractor.learn(site, labels, site_name="shop")


class TestQuarantine:
    def test_poison_job_quarantined_after_exactly_n_crashes(self, artifact):
        """A job that SIGKILLs every worker it lands on is retried
        ``crash_retry_limit`` times, then quarantined as a structured
        failure — the pool survives with the workers it has left."""
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.WORKER_CRASH, at=[1], match="apply:poison")
        faults.install(plan)  # fork-inherited by the pool workers
        with WorkerPool(
            max_workers=4, chunksize=1, crash_retry_limit=2
        ) as pool:
            result = pool.apply([artifact], [("poison", [_page("ALPHA")])])
            outcome = result.outcomes[0]
            assert not outcome.ok
            assert outcome.error.startswith("quarantined")
            assert "crash_retry_limit=2" in outcome.error
            # Exactly limit+1 deaths: one per retry, then the cap.
            assert pool.stats.worker_deaths == 3
            assert pool.stats.quarantined == 1
            assert pool._alive.count(True) == 1
            # Survivors keep serving ordinary work on the same pool.
            again = pool.apply(
                [artifact] * 3,
                [(f"healthy-{i}", [_page("ALPHA")]) for i in range(3)],
            )
        assert not again.failures
        assert all(o.ok for o in again.outcomes)

    def test_collateral_jobs_requeue_without_quarantine(self, artifact):
        """Healthy jobs orphaned by a crash retry freely — only the
        repeat offender crosses the quarantine threshold."""
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.WORKER_CRASH, at=[1], match="apply:poison")
        faults.install(plan)
        sites = [("poison", [_page("ALPHA")])] + [
            (f"healthy-{i}", [_page("ALPHA")]) for i in range(6)
        ]
        with WorkerPool(
            max_workers=3, chunksize=1, crash_retry_limit=1
        ) as pool:
            result = pool.apply([artifact] * len(sites), sites)
        by_site = {o.site: o for o in result.outcomes}
        assert not by_site["poison"].ok
        assert by_site["poison"].error.startswith("quarantined")
        healthy = [o for name, o in by_site.items() if name != "poison"]
        assert len(healthy) == 6
        assert all(o.ok for o in healthy)
        # Exactly-once: one outcome per submitted job.
        assert sorted(o.index for o in result.outcomes) == list(
            range(len(sites))
        )


class TestRespawn:
    def test_respawn_restores_fleet_width(self, artifact):
        """With ``respawn_workers`` on, a crashed worker is replaced;
        the replacement inherits the shared context and the orphaned
        backlog, and the batch still completes exactly-once."""
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.WORKER_CRASH, at=[1], match="w0:")
        faults.install(plan)
        sites = [(f"shop-{i}", [_page("ALPHA")]) for i in range(8)]
        with WorkerPool(
            max_workers=2, chunksize=1, respawn_workers=True
        ) as pool:
            result = pool.apply([artifact] * len(sites), sites)
            assert not result.failures
            assert sorted(o.index for o in result.outcomes) == list(
                range(len(sites))
            )
            assert pool.stats.worker_deaths == 1
            assert pool.stats.respawns == 1
            assert pool.workers_alive == 2
            # The respawned pool keeps serving.
            again = pool.apply([artifact], [("after", [_page("ALPHA")])])
        assert not again.failures

    def test_respawn_off_by_default(self, artifact):
        with WorkerPool(max_workers=2) as pool:
            assert pool.respawn_workers is False
            pool._maybe_respawn()  # inert without opting in
            assert pool.stats.respawns == 0


class TestRapidDeathBackoff:
    def test_death_burst_arms_doubling_backoff(self):
        pool = WorkerPool(max_workers=1)
        try:
            pool._note_worker_death()
            pool._note_worker_death()
            assert pool._respawn_delay == 0.0  # two deaths: no loop yet
            pool._note_worker_death()
            assert pool._respawn_delay == pytest.approx(0.1)
            assert pool._respawn_not_before > time.monotonic() - 1.0
            pool._note_worker_death()
            assert pool._respawn_delay == pytest.approx(0.2)
            for _ in range(20):
                pool._note_worker_death()
            assert pool._respawn_delay <= 10.0
            assert pool.stats.worker_deaths == 24
        finally:
            pool.close()

    def test_quiet_gap_resets_the_loop_detector(self):
        pool = WorkerPool(max_workers=1)
        try:
            for _ in range(3):
                pool._note_worker_death()
            assert pool._respawn_delay > 0.0
            # Fake a long quiet spell since the last death.
            pool._death_times = deque(
                [time.monotonic() - 60.0], maxlen=16
            )
            pool._note_worker_death()
            assert pool._respawn_delay == 0.0
        finally:
            pool.close()


class TestArenaSegmentLoss:
    def test_unlinked_segments_fall_back_to_sources(self, artifact):
        """Every shipped arena segment is unlinked before the worker can
        attach: extraction must fall back to re-parsing the handle's
        raw sources and still return correct results."""
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.ARENA_UNLINK, rate=1.0)
        faults.install(plan)
        sites = [
            Site.from_html(f"shop-{i}", [_page("ALPHA")]) for i in range(4)
        ]
        expected = [artifact.apply(site) for site in sites]
        with WorkerPool(max_workers=2) as pool:
            result = pool.apply([artifact] * len(sites), sites)
            assert pool.stats.arena_ships > 0
        assert not result.failures
        assert [o.extracted for o in result.outcomes] == expected
