"""Three-type record extraction: (name, zipcode, phone) — the full
Appendix A schema ``S = (name, address, phone)*`` exercised jointly."""

import pytest

from repro.annotators.regex import RegexAnnotator, zipcode_annotator
from repro.datasets.dealers import generate_dealers
from repro.framework.multitype import MultiTypeNTW, assemble_records
from repro.ranking.annotation import AnnotationModel
from repro.ranking.publication import PublicationModel
from repro.wrappers.xpath_inductor import XPathInductor

PHONE_PATTERN = r"\d{3}-\d{3}-\d{4}"


@pytest.fixture(scope="module")
def dataset():
    return generate_dealers(n_sites=6, pages_per_site=6, seed=19, separate_zip=True)


@pytest.fixture(scope="module")
def annotators(dataset):
    return {
        "name": dataset.annotator(),
        "zipcode": zipcode_annotator(),
        "phone": RegexAnnotator(PHONE_PATTERN),
    }


@pytest.fixture(scope="module")
def models(dataset, annotators):
    triples = {t: [] for t in annotators}
    pairs, type_maps = [], []
    for generated in dataset.sites[:3]:
        total = generated.site.total_text_nodes()
        type_map = {}
        for type_name, annotator in annotators.items():
            gold = generated.gold[type_name]
            triples[type_name].append(
                (annotator.annotate(generated.site), gold, total)
            )
            type_map |= {n: type_name for n in gold}
        pairs.append((generated.site, frozenset(type_map)))
        type_maps.append(type_map)
    annotation = {t: AnnotationModel.estimate(ts) for t, ts in triples.items()}
    publication = PublicationModel.fit(
        pairs, type_maps=type_maps, boundary_type="name"
    )
    return annotation, publication


class TestThreeTypeRecords:
    def test_gold_sequence_assembles(self, dataset):
        for generated in dataset.sites:
            extractions = {
                t: generated.gold[t] for t in ("name", "zipcode", "phone")
            }
            records = assemble_records(extractions, "name", generated.site)
            assert records is not None
            assert len(records) == len(generated.gold["name"])
            for record in records:
                assert record.get("name") is not None
                assert record.get("zipcode") is not None
                assert record.get("phone") is not None

    def test_ntw_recovers_all_three_fields(self, dataset, annotators, models):
        annotation, publication = models
        learner = MultiTypeNTW(
            XPathInductor(), annotation, publication, primary="name"
        )
        for generated in dataset.sites[3:5]:
            labels = {
                t: a.annotate(generated.site) for t, a in annotators.items()
            }
            if not all(labels.values()):
                continue
            result = learner.learn(generated.site, labels)
            for type_name in ("name", "zipcode", "phone"):
                assert result.extractions[type_name] == generated.gold[type_name]

    def test_records_carry_all_fields_in_order(self, dataset, annotators, models):
        annotation, publication = models
        learner = MultiTypeNTW(
            XPathInductor(), annotation, publication, primary="name"
        )
        generated = dataset.sites[3]
        labels = {t: a.annotate(generated.site) for t, a in annotators.items()}
        result = learner.learn(generated.site, labels)
        assert result.records
        for record in result.records:
            name_node = record.get("name")
            phone_node = record.get("phone")
            assert name_node is not None and phone_node is not None
            assert name_node.page == phone_node.page
            assert name_node.preorder < phone_node.preorder
