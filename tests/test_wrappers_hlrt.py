"""Tests for the HLRT extension."""

import pytest

from repro.site import Site
from repro.wrappers.hlrt import HLRTInductor, HLRTWrapper
from repro.wrappers.lr import LRInductor


@pytest.fixture()
def site_with_chrome():
    """Names and the footer sponsor share the exact ``<td><u>`` context,
    so plain LR cannot exclude the sponsor but HLRT's tail can."""

    def page(names, footer_name):
        rows = "".join(f"<tr><td><u>{n}</u></td></tr>" for n in names)
        return (
            "<div id='head'>Welcome</div><!-- start -->"
            f"<table>{rows}</table>"
            "<div id='foot'><table><tr><td><u>"
            f"{footer_name}</u></td></tr></table></div>"
        )

    return Site.from_html(
        "chromey",
        [
            page(["ALPHA", "BETA"], "SPONSOR ONE"),
            page(["GAMMA"], "SPONSOR TWO"),
        ],
    )


def label(site, text):
    (node_id,) = site.find_text_nodes(text)
    return node_id


class TestHLRT:
    def test_head_restriction_excludes_footer(self, site_with_chrome):
        site = site_with_chrome
        labels = frozenset(
            {label(site, "ALPHA"), label(site, "BETA"), label(site, "GAMMA")}
        )
        lr = LRInductor().induce(site, labels)
        lr_texts = {site.text_node(n).text for n in lr.extract(site)}
        # Plain LR also captures the footer sponsors (same <u> context).
        assert "SPONSOR ONE" in lr_texts
        hlrt = HLRTInductor().induce(site, labels)
        hlrt_texts = {site.text_node(n).text for n in hlrt.extract(site)}
        assert "SPONSOR ONE" not in hlrt_texts
        assert {"ALPHA", "BETA", "GAMMA"} <= hlrt_texts

    def test_degrades_to_lr_with_empty_head_tail(self, site_with_chrome):
        site = site_with_chrome
        wrapper = HLRTWrapper(head="", left="<u>", right="</u>", tail="")
        from repro.wrappers.lr import LRWrapper

        assert wrapper.extract(site) == LRWrapper("<u>", "</u>").extract(site)

    def test_missing_head_on_page_extracts_nothing_there(self, site_with_chrome):
        site = site_with_chrome
        wrapper = HLRTWrapper(
            head="<!-- nonexistent -->", left="<u>", right="</u>", tail=""
        )
        assert wrapper.extract(site) == frozenset()

    def test_fidelity(self, site_with_chrome):
        site = site_with_chrome
        labels = frozenset({label(site, "ALPHA"), label(site, "BETA")})
        wrapper = HLRTInductor().induce(site, labels)
        assert labels <= wrapper.extract(site)

    def test_empty_labels_rejected(self, site_with_chrome):
        with pytest.raises(ValueError):
            HLRTInductor().induce(site_with_chrome, frozenset())

    def test_rule_text(self):
        wrapper = HLRTWrapper(head="H", left="L", right="R", tail="T")
        assert "HLRT" in wrapper.rule()
