"""Tests for multi-type record extraction (Appendix A)."""

import pytest

from repro.annotators.regex import zipcode_annotator
from repro.framework.multitype import (
    MultiTypeNTW,
    MultiTypeWrapper,
    NaiveMultiType,
    Record,
    assemble_records,
)
from repro.htmldom.dom import NodeId
from repro.ranking.annotation import AnnotationModel
from repro.ranking.publication import PublicationModel
from repro.site import Site
from repro.wrappers.xpath_inductor import XPathInductor


def nid(page, preorder):
    return NodeId(page=page, preorder=preorder)


class TestAssembly:
    def test_simple_alternation(self):
        site = Site.from_html("x", ["<p>a</p>"])
        extractions = {
            "name": frozenset({nid(0, 1), nid(0, 5)}),
            "zipcode": frozenset({nid(0, 3), nid(0, 7)}),
        }
        records = assemble_records(extractions, "name", site)
        assert records is not None
        assert len(records) == 2
        assert records[0].get("zipcode") == nid(0, 3)

    def test_missing_secondary_allowed(self):
        site = Site.from_html("x", ["<p>a</p>"])
        extractions = {
            "name": frozenset({nid(0, 1), nid(0, 5)}),
            "zipcode": frozenset({nid(0, 7)}),
        }
        records = assemble_records(extractions, "name", site)
        assert records is not None
        assert records[0].get("zipcode") is None

    def test_secondary_before_primary_fails(self):
        site = Site.from_html("x", ["<p>a</p>"])
        extractions = {
            "name": frozenset({nid(0, 5)}),
            "zipcode": frozenset({nid(0, 1)}),
        }
        assert assemble_records(extractions, "name", site) is None

    def test_duplicate_secondary_fails(self):
        site = Site.from_html("x", ["<p>a</p>"])
        extractions = {
            "name": frozenset({nid(0, 1)}),
            "zipcode": frozenset({nid(0, 3), nid(0, 4)}),
        }
        assert assemble_records(extractions, "name", site) is None

    def test_pages_assembled_independently(self):
        site = Site.from_html("x", ["<p>a</p>", "<p>b</p>"])
        extractions = {
            "name": frozenset({nid(0, 1), nid(1, 1)}),
            "zipcode": frozenset({nid(0, 2), nid(1, 2)}),
        }
        records = assemble_records(extractions, "name", site)
        assert len(records) == 2

    def test_record_get_missing_type(self):
        record = Record(fields=(("name", nid(0, 1)),))
        assert record.get("zipcode") is None


@pytest.fixture(scope="module")
def zipped_dataset(request):
    from repro.datasets.dealers import generate_dealers

    return generate_dealers(n_sites=6, pages_per_site=6, seed=11, separate_zip=True)


def _models(dataset):
    name_ann = dataset.annotator()
    zip_ann = zipcode_annotator()
    triples = {"name": [], "zipcode": []}
    pairs, type_maps = [], []
    for generated in dataset.sites[:3]:
        total = generated.site.total_text_nodes()
        triples["name"].append(
            (name_ann.annotate(generated.site), generated.gold["name"], total)
        )
        triples["zipcode"].append(
            (zip_ann.annotate(generated.site), generated.gold["zipcode"], total)
        )
        type_map = {n: "name" for n in generated.gold["name"]} | {
            z: "zipcode" for z in generated.gold["zipcode"]
        }
        pairs.append((generated.site, frozenset(type_map)))
        type_maps.append(type_map)
    annotation = {t: AnnotationModel.estimate(ts) for t, ts in triples.items()}
    publication = PublicationModel.fit(
        pairs, type_maps=type_maps, boundary_type="name"
    )
    return name_ann, zip_ann, annotation, publication


class TestMultiTypeLearning:
    def test_ntw_beats_naive_on_records(self, zipped_dataset):
        name_ann, zip_ann, annotation, publication = _models(zipped_dataset)
        inductor = XPathInductor()
        ntw_hits = naive_hits = total = 0
        for generated in zipped_dataset.sites[3:]:
            labels = {
                "name": name_ann.annotate(generated.site),
                "zipcode": zip_ann.annotate(generated.site),
            }
            gold_names = generated.gold["name"]
            naive = NaiveMultiType(inductor, primary="name").learn(
                generated.site, labels
            )
            naive_records = naive.extract_records(generated.site) if naive else []
            result = MultiTypeNTW(
                inductor, annotation, publication, primary="name"
            ).learn(generated.site, labels)
            total += len(gold_names)
            naive_hits += sum(
                1 for r in naive_records if r.get("name") in gold_names
            )
            ntw_hits += sum(
                1 for r in result.records if r.get("name") in gold_names
            )
        assert ntw_hits > naive_hits
        assert ntw_hits == total

    def test_ntw_extractions_match_gold(self, zipped_dataset):
        name_ann, zip_ann, annotation, publication = _models(zipped_dataset)
        generated = zipped_dataset.sites[3]
        labels = {
            "name": name_ann.annotate(generated.site),
            "zipcode": zip_ann.annotate(generated.site),
        }
        result = MultiTypeNTW(
            XPathInductor(), annotation, publication, primary="name"
        ).learn(generated.site, labels)
        assert result.extractions["name"] == generated.gold["name"]
        assert result.extractions["zipcode"] == generated.gold["zipcode"]

    def test_empty_type_labels_yield_no_wrapper(self, zipped_dataset):
        _, _, annotation, publication = _models(zipped_dataset)
        generated = zipped_dataset.sites[3]
        result = MultiTypeNTW(
            XPathInductor(), annotation, publication, primary="name"
        ).learn(generated.site, {"name": frozenset(), "zipcode": frozenset()})
        assert result.best is None

    def test_cross_type_batched_ranking_matches_per_type_extraction(
        self, zipped_dataset
    ):
        """The one-pass cross-type batch must select the same wrapper,
        score and extractions as extracting each type independently."""
        from repro.engine import EvaluationEngine

        name_ann, zip_ann, annotation, publication = _models(zipped_dataset)
        generated = zipped_dataset.sites[4]
        labels = {
            "name": name_ann.annotate(generated.site),
            "zipcode": zip_ann.annotate(generated.site),
        }
        learner = MultiTypeNTW(
            XPathInductor(),
            annotation,
            publication,
            primary="name",
            engine=EvaluationEngine(),
        )
        result = learner.learn(generated.site, labels)
        assert result.best is not None
        # Per-type reference path: each selected rule extracted directly
        # (wrapper.extract, no cross-type batching) must agree node for
        # node with what ranking saw.
        assert result.extractions == result.best.extractions(generated.site)
        # And the joint score recomputed from per-type extractions matches.
        assert result.best_score == pytest.approx(
            learner._score(
                generated.site,
                labels,
                result.best.extractions(generated.site),
            )
        )

    def test_wrapper_rule_mentions_types(self):
        from repro.wrappers.xpath_inductor import XPathWrapper

        wrapper = MultiTypeWrapper(
            rules=(
                ("name", XPathWrapper(frozenset())),
                ("zipcode", XPathWrapper(frozenset())),
            ),
            primary="name",
        )
        assert "name:" in wrapper.rule()
        assert "zipcode:" in wrapper.rule()
