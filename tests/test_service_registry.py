"""The wrapper registry: versioned store, atomic persistence, LRU,
single-flight learn-on-miss (``repro.service.registry``)."""

import json
import os
import threading

import pytest

from repro.api import WrapperArtifact
from repro.service import (
    ArtifactRecord,
    FileBackend,
    MemoryBackend,
    RegistryError,
    WrapperRegistry,
    fingerprint_of,
)
from repro.site import Site, sources_fingerprint
from repro.wrappers.xpath_inductor import XPathWrapper

PAGES = [
    "<html><body><table><tr><td><u>ALPHA</u></td></tr></table></body></html>",
    "<html><body><table><tr><td><u>BETA</u></td></tr></table></body></html>",
]


def _artifact(site_name="shop", tag="u"):
    wrapper = XPathWrapper(features=frozenset({((1, "tag"), tag)}))
    return WrapperArtifact(
        wrapper_spec=wrapper.to_spec(),
        rule=wrapper.rule(),
        site=site_name,
        inductor="xpath",
        method="ntw",
    )


class TestFingerprints:
    def test_raw_sources_and_parsed_site_agree(self):
        site = Site.from_html("shop", PAGES)
        assert fingerprint_of(PAGES) == site.content_fingerprint()
        assert fingerprint_of(site) == site.content_fingerprint()
        assert fingerprint_of(PAGES) == sources_fingerprint(PAGES)

    def test_generated_site_unwraps(self):
        site = Site.from_html("shop", PAGES)

        class Wrapped:
            def __init__(self, inner):
                self.site = inner

        assert fingerprint_of(Wrapped(site)) == site.content_fingerprint()

    def test_content_change_changes_fingerprint(self):
        other = [PAGES[0], PAGES[1].replace("BETA", "GAMMA")]
        assert fingerprint_of(PAGES) != fingerprint_of(other)


class TestVersionLineage:
    def test_put_chains_versions(self):
        registry = WrapperRegistry()
        first = registry.put("fp1", _artifact(), origin="learn")
        second = registry.put("fp1", _artifact(), origin="repair")
        third = registry.put("fp1", _artifact(), origin="repair")
        assert [r.version for r in (first, second, third)] == [1, 2, 3]
        assert first.parent_version is None
        assert second.parent_version == 1 and third.parent_version == 2
        assert registry.latest("fp1").version == 3

    def test_explicit_parent_version(self):
        registry = WrapperRegistry()
        registry.put("fp1", _artifact(), origin="learn")
        registry.put("fp1", _artifact(), origin="learn")
        repair = registry.put(
            "fp1", _artifact(), origin="repair", parent_version=1
        )
        assert repair.version == 3 and repair.parent_version == 1

    def test_lineage_roundtrip_through_file_backend(self, tmp_path):
        registry = WrapperRegistry(tmp_path / "reg")
        registry.put("fp1", _artifact("siteA"), origin="learn")
        registry.put("fp1", _artifact("siteA"), origin="repair")

        reopened = WrapperRegistry(tmp_path / "reg")
        chain = reopened.versions("fp1")
        assert [(r.version, r.origin, r.parent_version) for r in chain] == [
            (1, "learn", None),
            (2, "repair", 1),
        ]
        for record in chain:
            rebuilt = record.load_artifact()
            assert rebuilt.rule == _artifact().rule
        assert ArtifactRecord.from_dict(chain[-1].to_dict()) == chain[-1]

    def test_empty_fingerprint_rejected(self):
        with pytest.raises(RegistryError, match="empty fingerprint"):
            WrapperRegistry().put("", _artifact())


class TestAtomicPersistence:
    def test_interrupted_write_leaves_no_torn_document(
        self, tmp_path, monkeypatch
    ):
        """Crash regression: a write killed between temp-write and
        rename must leave the previous document fully readable and no
        temp debris that later reads would trip on."""
        backend = FileBackend(tmp_path / "reg")
        registry = WrapperRegistry(backend)
        registry.put("fp1", _artifact(), origin="learn")

        real_replace = os.replace

        def crash(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            backend.append("fp1", {"artifact": {}, "version": 99})
        monkeypatch.setattr(os, "replace", real_replace)

        # The stored chain is exactly the pre-crash one.
        reopened = WrapperRegistry(tmp_path / "reg")
        assert [r.version for r in reopened.versions("fp1")] == [1]
        # No temp files linger, and the document is valid JSON.
        assert list((tmp_path / "reg").glob("*.tmp*")) == []
        document = json.loads(
            (tmp_path / "reg" / "fp1.json").read_text(encoding="utf-8")
        )
        assert len(document["versions"]) == 1
        # The backend still accepts writes after the failed attempt.
        reopened.put("fp1", _artifact(), origin="repair")
        assert reopened.latest("fp1").version == 2

    def test_stray_tmp_files_invisible_to_readers(self, tmp_path):
        backend = FileBackend(tmp_path / "reg")
        WrapperRegistry(backend).put("fp1", _artifact())
        (tmp_path / "reg" / "fp2.json.tmp-123").write_text("{torn", "utf-8")
        assert backend.fingerprints() == ["fp1"]

    def test_hostile_fingerprint_keys_rejected(self, tmp_path):
        backend = FileBackend(tmp_path / "reg")
        for key in ("", "../escape", "a/b", "a\\b", "dotted.name"):
            with pytest.raises(RegistryError, match="unusable fingerprint"):
                backend.read(key)

    def test_corrupt_document_reported(self, tmp_path):
        backend = FileBackend(tmp_path / "reg")
        (tmp_path / "reg" / "fp1.json").write_text("{torn", "utf-8")
        with pytest.raises(RegistryError, match="unreadable registry"):
            backend.read("fp1")

    def test_unusable_root_reported(self, tmp_path):
        plain_file = tmp_path / "regfile"
        plain_file.write_text("not a directory", "utf-8")
        with pytest.raises(RegistryError, match="registry directory"):
            FileBackend(plain_file)
        with pytest.raises(RegistryError, match="registry directory"):
            FileBackend(plain_file / "nested")


class TestSingleFlight:
    @pytest.mark.parametrize("backend", ["memory", "file"])
    def test_parallel_learn_on_miss_stores_exactly_one_version(
        self, tmp_path, backend
    ):
        registry = WrapperRegistry(
            "memory" if backend == "memory" else tmp_path / "reg"
        )
        learned = []
        barrier = threading.Barrier(8)
        results = []

        def learner():
            learned.append(threading.get_ident())
            return _artifact()

        def racer():
            barrier.wait()
            results.append(registry.get_or_learn("fp1", learner))

        threads = [threading.Thread(target=racer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(learned) == 1  # the learner ran exactly once
        assert len(registry.versions("fp1")) == 1  # one stored version
        assert sum(1 for _, created in results if created) == 1
        rules = {artifact.rule for artifact, _ in results}
        assert len(rules) == 1  # every racer got the one artifact

    def test_failed_learner_stores_nothing_and_retries(self):
        registry = WrapperRegistry()

        def broken():
            raise RuntimeError("no wrapper survived")

        with pytest.raises(RuntimeError):
            registry.get_or_learn("fp1", broken)
        assert registry.versions("fp1") == []
        artifact, created = registry.get_or_learn("fp1", _artifact)
        assert created and artifact.rule == _artifact().rule

    def test_learner_must_return_artifact(self):
        with pytest.raises(RegistryError, match="must return"):
            WrapperRegistry().get_or_learn("fp1", lambda: {"not": "one"})


class TestHotLRU:
    def test_eviction_order_and_counters(self):
        registry = WrapperRegistry(hot_capacity=2)
        for index in range(3):
            registry.put(f"fp{index}", _artifact(f"site{index}"))
        # fp0 was pushed out by fp1/fp2.
        assert registry.hot_fingerprints() == ["fp1", "fp2"]
        assert registry.evictions == 1
        # Serving fp0 reloads it from the backend (a cache miss) and
        # evicts the least recently used survivor, fp1.
        before = registry.misses
        assert registry.get("fp0") is not None
        assert registry.misses == before + 1
        assert registry.hot_fingerprints() == ["fp2", "fp0"]

    def test_hot_hits_skip_the_backend(self, tmp_path):
        registry = WrapperRegistry(tmp_path / "reg", hot_capacity=4)
        registry.put("fp1", _artifact())
        (tmp_path / "reg" / "fp1.json").unlink()  # prove it's not re-read
        assert registry.get("fp1") is not None
        assert registry.hits >= 1

    def test_capacity_zero_disables_cache(self):
        registry = WrapperRegistry(hot_capacity=0)
        registry.put("fp1", _artifact())
        assert registry.hot_fingerprints() == []
        assert registry.get("fp1") is not None  # still served, just cold

    def test_negative_capacity_rejected(self):
        with pytest.raises(RegistryError, match="hot_capacity"):
            WrapperRegistry(hot_capacity=-1)


class TestResolve:
    def test_fingerprint_hit_then_site_fallback_then_miss(self):
        registry = WrapperRegistry()
        registry.put("fp1", _artifact("shop"))
        artifact, source = registry.resolve("fp1")
        assert artifact is not None and source == "fingerprint"
        # A recrawl of the same site hashes differently but resolves
        # through the site-name index.
        artifact, source = registry.resolve("fp-new-crawl", site="shop")
        assert artifact is not None and source == "site"
        artifact, source = registry.resolve("fp-unknown", site="elsewhere")
        assert artifact is None and source == "miss"
        assert registry.resolve_hits == 2 and registry.resolve_misses == 1

    def test_newest_store_wins_site_name(self):
        registry = WrapperRegistry()
        registry.put("fp-old", _artifact("shop"))
        registry.put("fp-new", _artifact("shop"))
        assert registry.site_fingerprint("shop") == "fp-new"

    def test_artifacts_by_site(self):
        registry = WrapperRegistry()
        registry.put("fp1", _artifact("alpha"))
        registry.put("fp2", _artifact("beta"))
        fleet = registry.artifacts_by_site()
        assert sorted(fleet) == ["alpha", "beta"]
        assert all(isinstance(a, WrapperArtifact) for a in fleet.values())


class TestRestartResume:
    def test_reopened_registry_serves_without_learning(self, tmp_path):
        first = WrapperRegistry(tmp_path / "reg")
        first.get_or_learn("fp1", _artifact)
        assert first.learned == 1

        reopened = WrapperRegistry(tmp_path / "reg")

        def must_not_run():  # pragma: no cover - the assertion is the point
            raise AssertionError("relearned after restart")

        artifact, created = reopened.get_or_learn("fp1", must_not_run)
        assert not created and artifact.rule == _artifact().rule
        assert reopened.learned == 0
        assert reopened.stats()["fingerprints"] == 1


class TestBackendsAndStats:
    def test_memory_backend_isolates_copies(self):
        backend = MemoryBackend()
        payload = {"version": 1, "artifact": {}}
        backend.append("fp1", payload)
        payload["version"] = 99  # caller mutation must not leak in
        assert backend.read("fp1")[0]["version"] == 1

    def test_bad_backend_spec_rejected(self):
        with pytest.raises(RegistryError, match="backend must be"):
            WrapperRegistry(backend=42)

    def test_stats_shape(self):
        registry = WrapperRegistry()
        registry.put("fp1", _artifact())
        registry.get("fp1")
        stats = registry.stats()
        assert stats["fingerprints"] == 1 and stats["hot"] == 1
        assert set(stats) == {
            "hits",
            "misses",
            "evictions",
            "learned",
            "resolve_hits",
            "resolve_misses",
            "hot",
            "fingerprints",
            "corrupt_chains",
        }

    def test_corrupt_chain_counted_not_silently_skipped(self, tmp_path):
        """Regression: a fingerprint whose stored chain cannot load used
        to vanish from the site index without a trace; it must surface
        in stats as ``corrupt_chains``."""
        registry = WrapperRegistry(tmp_path / "reg")
        registry.put("fpgood", _artifact("siteA"), origin="learn")
        registry.put("fpbad", _artifact("siteB"), origin="learn")
        (tmp_path / "reg" / "fpbad.json").write_text(
            '{"fingerprint": "fpbad", "versions": [{"torn": true}]}', "utf-8"
        )
        reopened = WrapperRegistry(tmp_path / "reg")
        # Building the site index hits the corrupt chain.
        assert reopened.site_fingerprint("siteA") == "fpgood"
        assert reopened.site_fingerprint("siteB") is None
        assert reopened.stats()["corrupt_chains"] == 1
        # Rebuilds do not double-count: the index is built once.
        reopened.site_fingerprint("siteB")
        assert reopened.stats()["corrupt_chains"] == 1
