"""Tests for the annotation-noise model (Eq. 4)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htmldom.dom import NodeId
from repro.ranking.annotation import AnnotationModel, NoiseProfile


def ids(*preorders):
    return frozenset(NodeId(page=0, preorder=p) for p in preorders)


class TestNoiseProfile:
    def test_valid_profile(self):
        profile = NoiseProfile(p=0.95, r=0.24)
        assert profile.informative

    def test_uninformative_profile(self):
        assert not NoiseProfile(p=0.2, r=0.5).informative

    @pytest.mark.parametrize("p,r", [(0.0, 0.5), (1.0, 0.5), (0.5, 0.0), (0.5, 1.0)])
    def test_rejects_degenerate_rates(self, p, r):
        with pytest.raises(ValueError):
            NoiseProfile(p=p, r=r)


class TestLogLikelihood:
    def test_maximized_at_x_equal_l(self):
        """With an informative annotator, Eq. 4 peaks at X = L."""
        model = AnnotationModel.from_rates(p=0.9, r=0.5)
        labels = ids(1, 2, 3)
        best = model.log_likelihood(labels, labels)
        assert best > model.log_likelihood(labels, ids(1, 2))
        assert best > model.log_likelihood(labels, ids(1, 2, 3, 4))
        assert best > model.log_likelihood(labels, ids(4, 5, 6))

    def test_covered_labels_raise_score(self):
        model = AnnotationModel.from_rates(p=0.9, r=0.5)
        labels = ids(1, 2, 3)
        assert model.log_likelihood(labels, ids(1, 2)) > model.log_likelihood(
            labels, ids(1)
        )

    def test_extra_nodes_lower_score(self):
        model = AnnotationModel.from_rates(p=0.9, r=0.5)
        labels = ids(1, 2)
        base = model.log_likelihood(labels, ids(1, 2))
        assert model.log_likelihood(labels, ids(1, 2, 9)) < base

    def test_recall_governs_extra_node_penalty(self):
        """Higher annotator recall penalises unlabeled extractions more
        (the paper's X3 discussion in Sec. 3)."""
        labels = ids(1, 2)
        high_recall = AnnotationModel.from_rates(p=0.9, r=0.9)
        low_recall = AnnotationModel.from_rates(p=0.9, r=0.2)
        extra = ids(1, 2, 5, 6, 7)
        drop_high = high_recall.log_likelihood(labels, extra) - high_recall.log_likelihood(labels, labels)
        drop_low = low_recall.log_likelihood(labels, extra) - low_recall.log_likelihood(labels, labels)
        assert drop_high < drop_low

    def test_matches_closed_form(self):
        model = AnnotationModel.from_rates(p=0.8, r=0.3)
        labels = ids(1, 2, 3, 4)
        extracted = ids(3, 4, 5)
        expected = 2 * math.log(0.3 / 0.2) + 1 * math.log(0.7 / 0.8)
        assert model.log_likelihood(labels, extracted) == pytest.approx(expected)

    def test_empty_extraction_scores_zero(self):
        model = AnnotationModel.from_rates(p=0.9, r=0.5)
        assert model.log_likelihood(ids(1, 2), frozenset()) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.sets(st.integers(0, 30), max_size=10),
        st.sets(st.integers(0, 30), max_size=10),
        st.floats(0.55, 0.99),
        st.floats(0.05, 0.95),
    )
    def test_finite_for_any_sets(self, label_ids, extracted_ids, p, r):
        model = AnnotationModel.from_rates(p=p, r=r)
        value = model.log_likelihood(
            frozenset(NodeId(0, i) for i in label_ids),
            frozenset(NodeId(0, i) for i in extracted_ids),
        )
        assert math.isfinite(value)


class TestEstimation:
    def test_estimates_recall(self):
        gold = ids(*range(10))
        labels = ids(*range(3))  # 3 of 10 gold labeled, no FPs
        model = AnnotationModel.estimate([(labels, gold, 100)])
        assert model.profile.r == pytest.approx(0.3, abs=0.01)

    def test_estimates_false_positive_rate(self):
        gold = ids(*range(10))
        labels = gold | ids(100, 101, 102)  # 3 FPs among 90 negatives
        model = AnnotationModel.estimate([(labels, gold, 100)])
        assert 1.0 - model.profile.p == pytest.approx(3 / 90, abs=0.01)

    def test_pools_over_sites(self):
        gold_a, gold_b = ids(1, 2), ids(3, 4)
        model = AnnotationModel.estimate(
            [(ids(1), gold_a, 50), (ids(3, 4), gold_b, 50)]
        )
        assert model.profile.r == pytest.approx(0.75, abs=0.01)

    def test_clamps_extremes(self):
        gold = ids(1, 2)
        model = AnnotationModel.estimate([(gold, gold, 10)])
        assert 0.0 < model.profile.p < 1.0
        assert 0.0 < model.profile.r < 1.0

    def test_empty_sample_gives_neutral_recall(self):
        model = AnnotationModel.estimate([(frozenset(), frozenset(), 0)])
        assert model.profile.r == pytest.approx(0.5)
