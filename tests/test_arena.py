"""Zero-copy site arena: pack/attach lifecycle, fallbacks, reclamation.

Covers the shared-memory segment contract end to end:

- pack -> attach structural equivalence (generated and hand-built
  trees), bitwise-identical extraction vs the dict-backed site;
- the per-process attach registry (double-attach returns the same
  object, registry entries follow site liveness);
- segment lifetime (owner gc unlinks, attachers never do) and the
  parse-from-source fallback when a segment vanished;
- pickle round-trips: arena-bound sites ship as handles, raw sites
  keep the ship-sources path, both reconstruct identical extractions;
- orphan reclamation after a SIGKILLed owner (the abnormal-exit path
  that atexit hooks never see).
"""

from __future__ import annotations

import gc
import os
import pickle
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.arena import (
    ArenaError,
    ArenaHandle,
    arena_stats,
    attach_site,
    ensure_arena,
    load_site,
    reap_orphans,
)
from repro.engine import EvaluationEngine
from repro.site import Site
from repro.wrappers.hlrt import HLRTInductor
from repro.wrappers.lr import LRInductor
from repro.wrappers.xpath_inductor import XPathInductor

PAGES = [
    "<html><body><div class='x'><table>"
    "<tr><td><u>ALPHA</u></td><td>one</td></tr>"
    "<tr><td><u>BETA</u></td><td>two</td></tr>"
    "</table></div></body></html>",
    "<html><body><div class='x'><table>"
    "<tr><td><u>GAMMA</u></td><td>three</td></tr>"
    "</table></div></body></html>",
]


def _site(name="arena-site"):
    return Site.from_html(name, PAGES)


def _hand_built_site(name="hand-built"):
    """A Site whose pages carry no faithful source string."""
    from repro.htmldom.dom import Document, ElementNode, TextNode

    root = ElementNode("html")
    body = ElementNode("body", {"class": "hand"})
    root.append(body)
    for text in ("one", "two", "three"):
        paragraph = ElementNode("p")
        body.append(paragraph)
        paragraph.append(TextNode(text))
    return Site(name, [Document(root, "", page_index=0)])


def _assert_sites_equivalent(original, attached):
    """Structure, spans, and node identity layout must round-trip."""
    assert attached.name == original.name
    assert len(attached.pages) == len(original.pages)
    for ours, theirs in zip(original.pages, attached.pages):
        ours_nodes, theirs_nodes = ours.nodes, theirs.nodes
        assert len(ours_nodes) == len(theirs_nodes)
        for a, b in zip(ours_nodes, theirs_nodes):
            assert type(a) is type(b)
            assert a.node_id == b.node_id
            assert getattr(a, "tag", None) == getattr(b, "tag", None)
            assert dict(getattr(a, "attrs", {}) or {}) == dict(
                getattr(b, "attrs", {}) or {}
            )
            assert getattr(a, "text", None) == getattr(b, "text", None)
            assert getattr(a, "start", None) == getattr(b, "start", None)
            assert getattr(a, "end", None) == getattr(b, "end", None)
    assert attached.text_node_ids() == original.text_node_ids()
    for node_id in original.text_node_ids():
        assert attached.text_node(node_id).text == original.text_node(node_id).text


class TestPackAttachEquivalence:
    def test_attached_site_mirrors_the_original(self, tmp_path):
        site = _site()
        binding = ensure_arena(site, directory=str(tmp_path))
        assert binding is site._arena and binding.owned
        attached = load_site(binding.handle)
        assert attached is not site
        _assert_sites_equivalent(site, attached)

    def test_hand_built_trees_round_trip(self, tmp_path):
        site = _hand_built_site()
        binding = ensure_arena(site, directory=str(tmp_path))
        assert binding.handle.sources is None  # no faithful HTML fallback
        attached = load_site(binding.handle)
        _assert_sites_equivalent(site, attached)

    @pytest.mark.parametrize(
        "inductor",
        [XPathInductor(), LRInductor(), HLRTInductor()],
        ids=["xpath", "lr", "hlrt"],
    )
    def test_extraction_is_bitwise_identical(self, tmp_path, inductor):
        site = _site()
        labels = frozenset(list(sorted(site.text_node_ids()))[:3])
        wrapper = inductor.induce(site, labels)
        expected = EvaluationEngine().extract(site, wrapper)
        binding = ensure_arena(site, directory=str(tmp_path), include_postings=True)
        attached = load_site(binding.handle)
        assert EvaluationEngine().extract(attached, wrapper) == expected
        assert wrapper.extract(attached) == expected

    def test_ensure_arena_is_memoized(self, tmp_path):
        site = _site()
        first = ensure_arena(site, directory=str(tmp_path))
        second = ensure_arena(site, directory=str(tmp_path))
        assert first is second
        assert len(os.listdir(tmp_path)) == 1

    def test_handle_is_a_small_picklable_value(self, tmp_path):
        site = _site()
        binding = ensure_arena(site, directory=str(tmp_path))
        wire = pickle.dumps(binding.handle)
        assert len(wire) < 1024
        assert pickle.loads(wire) == binding.handle


class TestAttachRegistry:
    def test_double_attach_returns_the_same_site(self, tmp_path):
        site = _site()
        handle = ensure_arena(site, directory=str(tmp_path)).handle
        before = arena_stats()
        first = attach_site(handle)
        second = attach_site(handle)
        assert first is second
        after = arena_stats()
        assert after["attaches"] - before["attaches"] == 1
        assert after["attach_hits"] - before["attach_hits"] == 1
        assert after["segments_attached"] >= 1
        assert after["bytes_mapped"] > 0

    def test_load_site_bypasses_the_registry(self, tmp_path):
        site = _site()
        handle = ensure_arena(site, directory=str(tmp_path)).handle
        assert load_site(handle) is not load_site(handle)

    def test_registry_entry_follows_site_liveness(self, tmp_path):
        site = _site()
        handle = ensure_arena(site, directory=str(tmp_path)).handle
        before = arena_stats()["segments_attached"]
        attached = attach_site(handle)
        assert arena_stats()["segments_attached"] == before + 1
        del attached
        gc.collect()
        assert arena_stats()["segments_attached"] == before
        # The segment file itself is the *owner's*: still on disk.
        assert os.path.exists(handle.path)
        # A fresh attach maps it again rather than hitting the registry.
        hits_before = arena_stats()["attach_hits"]
        assert attach_site(handle) is not None
        assert arena_stats()["attach_hits"] == hits_before

    def test_owner_gc_unlinks_the_segment(self, tmp_path):
        site = _site()
        handle = ensure_arena(site, directory=str(tmp_path)).handle
        assert os.path.exists(handle.path)
        del site
        gc.collect()
        assert not os.path.exists(handle.path)

    def test_attacher_never_unlinks(self, tmp_path):
        site = _site()
        handle = ensure_arena(site, directory=str(tmp_path)).handle
        attached = attach_site(handle)
        del attached
        gc.collect()
        assert os.path.exists(handle.path)


class TestAttachFallback:
    def test_vanished_segment_falls_back_to_sources(self, tmp_path):
        site = _site()
        handle = ensure_arena(site, directory=str(tmp_path)).handle
        os.unlink(handle.path)
        before = arena_stats()["rebuild_fallbacks"]
        rebuilt = attach_site(handle)
        assert arena_stats()["rebuild_fallbacks"] == before + 1
        _assert_sites_equivalent(site, rebuilt)

    def test_vanished_segment_without_sources_raises(self, tmp_path):
        site = _hand_built_site()
        handle = ensure_arena(site, directory=str(tmp_path)).handle
        os.unlink(handle.path)
        with pytest.raises((OSError, ArenaError)):
            attach_site(handle)

    def test_fingerprint_mismatch_is_an_arena_error(self, tmp_path):
        site = _site()
        handle = ensure_arena(site, directory=str(tmp_path)).handle
        forged = ArenaHandle(
            path=handle.path,
            fingerprint="not-the-fingerprint",
            name=handle.name,
            sources=None,
        )
        with pytest.raises(ArenaError, match="fingerprint"):
            load_site(forged)


class TestPickleRoundTrips:
    def test_arena_bound_site_pickles_as_handle(self, tmp_path):
        site = _site()
        raw_wire = pickle.dumps(site)  # ship-sources path
        binding = ensure_arena(site, directory=str(tmp_path))
        reduced = site.__reduce_ex__(2)
        assert reduced[0] is attach_site
        assert reduced[1] == (binding.handle,)
        via_arena = pickle.loads(pickle.dumps(site))
        via_sources = pickle.loads(raw_wire)
        _assert_sites_equivalent(via_sources, via_arena)

    @pytest.mark.parametrize(
        "inductor",
        [XPathInductor(), LRInductor(), HLRTInductor()],
        ids=["xpath", "lr", "hlrt"],
    )
    def test_arena_shipped_extraction_matches_raw_shipped(
        self, tmp_path, inductor
    ):
        site = _site()
        labels = frozenset(list(sorted(site.text_node_ids()))[:3])
        wrapper = inductor.induce(site, labels)
        via_sources = pickle.loads(pickle.dumps(site))
        ensure_arena(site, directory=str(tmp_path))
        via_arena = pickle.loads(pickle.dumps(site))
        assert via_arena.pages[0] is not site.pages[0]
        assert (
            wrapper.extract(via_arena)
            == wrapper.extract(via_sources)
            == wrapper.extract(site)
        )

    def test_same_process_unpickle_is_an_attach_hit(self, tmp_path):
        site = _site()
        ensure_arena(site, directory=str(tmp_path))
        first = pickle.loads(pickle.dumps(site))
        second = pickle.loads(pickle.dumps(site))
        assert first is second  # registry resolved the re-attach

    def test_attached_document_repickles_faithfully(self, tmp_path):
        """A page lifted out of the mapping survives another hop: the
        lazy source and lazy indexes materialize into the wire form."""
        site = _site()
        ensure_arena(site, directory=str(tmp_path))
        attached = load_site(site._arena.handle)
        page = attached.pages[0]
        clone = pickle.loads(pickle.dumps(page))
        assert clone.source == site.pages[0].source
        assert [type(n).__name__ for n in clone.nodes] == [
            type(n).__name__ for n in site.pages[0].nodes
        ]

    def test_hand_built_attached_page_full_state_pickle(self, tmp_path):
        site = _hand_built_site()
        ensure_arena(site, directory=str(tmp_path))
        attached = load_site(site._arena.handle)
        clone = pickle.loads(pickle.dumps(attached.pages[0]))
        texts = lambda doc: [
            n.text for n in doc.nodes if getattr(n, "text", None) is not None
        ]
        assert texts(clone) == texts(site.pages[0])


class TestOrphanReclamation:
    def test_sigkilled_owner_segments_are_reaped(self, tmp_path):
        """An owner that dies without running atexit leaves its segment
        behind; any later pool start sweeps it (reap_orphans)."""
        script = textwrap.dedent(
            """
            import os, signal, sys
            from repro.arena import ensure_arena
            from repro.site import Site

            site = Site.from_html("doomed", ["<p>gone</p>"])
            binding = ensure_arena(site)
            print(binding.handle.path, flush=True)
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        env = dict(os.environ)
        env["REPRO_ARENA_DIR"] = str(tmp_path)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.abspath("src"), env.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL
        path = proc.stdout.strip()
        assert path and os.path.exists(path)  # atexit never ran
        reaped = reap_orphans(str(tmp_path))
        assert path in reaped
        assert not os.path.exists(path)

    def test_live_owner_segments_are_never_reaped(self, tmp_path):
        site = _site()
        handle = ensure_arena(site, directory=str(tmp_path)).handle
        assert reap_orphans(str(tmp_path)) == []
        assert os.path.exists(handle.path)

    def test_foreign_files_are_ignored(self, tmp_path):
        stray = tmp_path / "not-an-arena.txt"
        stray.write_text("keep me")
        assert reap_orphans(str(tmp_path)) == []
        assert stray.exists()
