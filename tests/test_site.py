"""Tests for the Site container."""

import pytest

from repro.htmldom.dom import NodeId
from repro.site import Site


@pytest.fixture()
def site():
    return Site.from_html(
        "s",
        ["<p>alpha</p><p>beta</p>", "<div><span>gamma</span></div>"],
    )


class TestSite:
    def test_page_count(self, site):
        assert len(site) == 2

    def test_page_indices_are_consecutive(self, site):
        assert [p.page_index for p in site.pages] == [0, 1]

    def test_node_resolution_across_pages(self, site):
        for node_id in site.iter_text_node_ids():
            node = site.node(node_id)
            assert node.node_id == node_id

    def test_text_node_rejects_elements(self, site):
        root_id = site.pages[0].root.node_id
        with pytest.raises(TypeError):
            site.text_node(root_id)

    def test_iter_text_node_ids_in_order(self, site):
        ids = list(site.iter_text_node_ids())
        assert ids == sorted(ids)

    def test_total_text_nodes(self, site):
        assert site.total_text_nodes() == 3

    def test_find_text_nodes(self, site):
        found = site.find_text_nodes("gamma")
        assert len(found) == 1
        assert found[0].page == 1

    def test_find_text_nodes_strips(self, site):
        assert site.find_text_nodes("  alpha  ")

    def test_find_text_nodes_index_built_once_and_isolated(self, site):
        first = site.find_text_nodes("gamma")
        index = site._stripped_index
        assert index is not None
        second = site.find_text_nodes("gamma")
        assert site._stripped_index is index  # built once
        assert first == second
        # Callers get copies; mutating a result never corrupts the map.
        second.append("junk")
        assert site.find_text_nodes("gamma") == first

    def test_find_text_nodes_results_in_site_order(self, site):
        everything = [
            node_id
            for node_id in site.iter_text_node_ids()
            if site.text_node(node_id).text.strip()
        ]
        recovered = []
        for node_id in everything:
            text = site.text_node(node_id).text
            for found in site.find_text_nodes(text):
                if found not in recovered:
                    recovered.append(found)
        assert [n for n in recovered if n in everything] == everything

    def test_mismatched_page_index_rejected(self):
        from repro.htmldom.treebuilder import parse_html

        pages = [parse_html("<p>x</p>", page_index=5)]
        with pytest.raises(ValueError):
            Site("bad", pages)

    def test_text_node_ids_frozenset(self, site):
        ids = site.text_node_ids()
        assert isinstance(ids, frozenset)
        assert len(ids) == 3
