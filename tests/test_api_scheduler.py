"""Site-affine scheduler: determinism, affinity, streaming, isolation."""

import pytest

from repro.api import (
    Extractor,
    ExtractorConfig,
    SerialExecutor,
    WorkerPool,
    apply_many,
    apply_stream,
    learn_many,
    learn_stream,
    load_dataset,
    resolve_executor,
)
from repro.api.scheduler import _site_key


@pytest.fixture(scope="module")
def bundle():
    return load_dataset("dealers", sites=6, pages=4, seed=11)


@pytest.fixture(scope="module")
def fitted_extractor(bundle):
    train = bundle.sites[::2]
    extractor = Extractor(ExtractorConfig(inductor="xpath", method="ntw"))
    return extractor.fit(train, bundle.annotator, bundle.gold_type)


@pytest.fixture(scope="module")
def test_sites(bundle):
    return bundle.sites[1::2]


@pytest.fixture(scope="module")
def serial_rules(fitted_extractor, bundle, test_sites):
    result = learn_many(
        fitted_extractor, test_sites, annotator=bundle.annotator,
        executor=SerialExecutor(),
    )
    assert not result.failures
    return [outcome.artifact.rule for outcome in result.outcomes]


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_outcomes_in_input_order_any_worker_count(
        self, fitted_extractor, bundle, test_sites, serial_rules, workers
    ):
        with WorkerPool(max_workers=workers) as pool:
            result = pool.learn(
                fitted_extractor, test_sites, annotator=bundle.annotator
            )
        assert [o.index for o in result.outcomes] == list(range(len(test_sites)))
        assert [o.site for o in result.outcomes] == [s.name for s in test_sites]
        assert [o.artifact.rule for o in result.outcomes] == serial_rules

    def test_learn_many_routes_through_pool(
        self, fitted_extractor, bundle, test_sites, serial_rules
    ):
        with WorkerPool(max_workers=2) as pool:
            result = learn_many(
                fitted_extractor,
                test_sites,
                annotator=bundle.annotator,
                executor=pool,
            )
        assert [o.artifact.rule for o in result.outcomes] == serial_rules

    def test_apply_matches_serial(self, fitted_extractor, bundle, test_sites):
        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        serial = apply_many(learned.artifacts, test_sites)
        with WorkerPool(max_workers=2) as pool:
            pooled = apply_many(learned.artifacts, test_sites, executor=pool)
        assert [o.extracted for o in pooled.outcomes] == [
            o.extracted for o in serial.outcomes
        ]

    def test_pool_shorthand(self, fitted_extractor, bundle, test_sites):
        result = learn_many(
            fitted_extractor,
            test_sites[:1],
            annotator=bundle.annotator,
            executor="pool",
        )
        assert result.summary() == "1/1 sites ok"
        assert isinstance(resolve_executor("pool"), WorkerPool)


class TestShardAffinity:
    def test_sites_ship_once_per_pool(
        self, fitted_extractor, bundle, test_sites
    ):
        """Without stealing, a site's payload crosses to exactly one
        worker, once — re-running batches on the pool ships nothing."""
        with WorkerPool(max_workers=2, work_stealing=False) as pool:
            first = pool.learn(
                fitted_extractor, test_sites, annotator=bundle.annotator
            )
            assert not first.failures
            after_first = dict(pool.stats.shipments)
            assert all(count == 1 for count in after_first.values())
            assert len(after_first) == len(test_sites)
            # Second learn batch and an apply batch: all warm, no shipping.
            second = pool.learn(
                fitted_extractor, test_sites, annotator=bundle.annotator
            )
            applied = pool.apply(first.artifacts, test_sites)
            assert not second.failures and not applied.failures
            assert dict(pool.stats.shipments) == after_first

    def test_inline_pool_interns_sites(
        self, fitted_extractor, bundle, test_sites
    ):
        with WorkerPool(max_workers=1) as pool:
            pool.learn(fitted_extractor, test_sites, annotator=bundle.annotator)
            pool.learn(fitted_extractor, test_sites, annotator=bundle.annotator)
            assert all(c == 1 for c in pool.stats.shipments.values())
            # The warm worker resolved each site exactly once.
            assert pool._inline.sites_resolved == len(test_sites)

    def test_site_keys_are_content_stable(self, test_sites):
        a = _site_key(test_sites[0], 0)
        b = _site_key(test_sites[0].site, 7)  # same content, any position
        assert a == b
        assert a != _site_key(test_sites[1], 0)
        # Same name, different content: never aliased.
        raw_one = ("twin", ["<p>one</p>"])
        raw_two = ("twin", ["<p>two</p>"])
        assert _site_key(raw_one, 0) != _site_key(raw_two, 0)

    @staticmethod
    def _hand_built_site(name, text):
        """A Site whose pages carry no faithful source string."""
        from repro.htmldom.dom import Document, ElementNode, TextNode
        from repro.site import Site

        root = ElementNode("html")
        paragraph = ElementNode("p")
        root.append(paragraph)
        paragraph.append(TextNode(text))
        return Site(name, [Document(root, "", page_index=0)])

    def test_same_named_hand_built_sites_never_alias(self):
        """Regression: two distinct Sites sharing a name (with empty
        page sources) used to collide in the ship-once ledger and the
        worker intern LRU — the digest degenerated to the bare name."""
        one = self._hand_built_site("twin", "one")
        two = self._hand_built_site("twin", "two")
        assert _site_key(one, 0) != _site_key(two, 1)

    def test_structural_digest_frames_tags_and_attrs(self):
        """Adjacent strings must never blur: <pa x=1> vs <p ax=1> and
        split-vs-merged attribute values are distinct contents."""
        from repro.htmldom.dom import Document, ElementNode
        from repro.site import Site

        def attr_site(tag, attrs):
            root = ElementNode("html")
            root.append(ElementNode(tag, attrs))
            return Site("twin", [Document(root, "", page_index=0)])

        assert _site_key(attr_site("pa", {"x": "1"}), 0) != _site_key(
            attr_site("p", {"ax": "1"}), 1
        )
        assert _site_key(attr_site("p", {"x": "1ay=2"}), 0) != _site_key(
            attr_site("p", {"x": "1", "y": "2"}), 1
        )

    def test_raw_pair_and_parsed_site_share_a_key(self):
        """Identical content interned once whichever way it arrives."""
        from repro.site import Site

        html = "<div><p>alpha</p></div>"
        assert _site_key(("shop", [html]), 0) == _site_key(
            Site.from_html("shop", [html]), 1
        )

    @pytest.mark.parametrize("workers", [1, 2])
    def test_same_named_sites_extract_their_own_content(self, workers):
        """End to end: same-name sites in one batch each get their own
        interned copy, so extractions come from the right trees."""
        from repro.api import WrapperArtifact

        one = self._hand_built_site("twin", "one")
        two = self._hand_built_site("twin", "two")
        artifact = WrapperArtifact(
            wrapper_spec={"kind": "xpath", "features": [[1, "tag", "p"]]},
            rule="//p/text()",
        )
        with WorkerPool(max_workers=workers) as pool:
            result = pool.apply([artifact, artifact], [one, two])
        assert not result.failures
        extracted_one, extracted_two = (
            outcome.extracted for outcome in result.outcomes
        )
        assert {one.text_node(n).text for n in extracted_one} == {"one"}
        assert {two.text_node(n).text for n in extracted_two} == {"two"}


class TestStreaming:
    def test_stream_yields_every_outcome(
        self, fitted_extractor, bundle, test_sites
    ):
        seen = []
        for outcome in learn_stream(
            fitted_extractor, test_sites, annotator=bundle.annotator
        ):
            seen.append(outcome)
        assert sorted(o.index for o in seen) == list(range(len(test_sites)))
        assert all(o.ok for o in seen)

    def test_stream_isolates_broken_sites(self, fitted_extractor, bundle, test_sites):
        mixed = [test_sites[0], ("broken", [None]), test_sites[1]]
        with WorkerPool(max_workers=2) as pool:
            outcomes = list(
                pool.iter_learn_outcomes(
                    fitted_extractor, mixed, annotator=bundle.annotator
                )
            )
        by_index = {o.index: o for o in outcomes}
        assert len(by_index) == 3
        assert by_index[0].ok and by_index[2].ok
        assert not by_index[1].ok
        assert by_index[1].site == "broken"
        assert by_index[1].error

    def test_repeated_jobs_for_broken_site_fail_consistently(
        self, fitted_extractor, bundle, test_sites
    ):
        """Later tasks touching a site that failed to parse report the
        recorded error instead of crashing the worker."""
        learned = learn_many(
            fitted_extractor, test_sites[:2], annotator=bundle.annotator
        )
        broken = ("broken", [None])
        with WorkerPool(max_workers=1) as pool:
            result = pool.apply(
                [learned.artifacts[0], learned.artifacts[1]], [broken, broken]
            )
        assert [o.ok for o in result.outcomes] == [False, False]
        assert result.outcomes[0].error == result.outcomes[1].error

    def test_inline_stream_is_lazy(self, fitted_extractor, bundle, test_sites):
        """A one-worker pool streams one job per pull: a consumer that
        stops after the first outcome pays for one job, not the batch."""
        with WorkerPool(max_workers=1) as pool:
            iterator = pool.iter_learn_outcomes(
                fitted_extractor, test_sites, annotator=bundle.annotator
            )
            first = next(iterator)
            assert first.ok
            assert pool._inline.sites_resolved == 1  # others untouched
            assert len(list(iterator)) == len(test_sites) - 1
            assert pool._inline.sites_resolved == len(test_sites)

    def test_apply_stream(self, fitted_extractor, bundle, test_sites):
        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        extracted = {
            o.index: o.extracted
            for o in apply_stream(learned.artifacts, test_sites)
        }
        direct = apply_many(learned.artifacts, test_sites)
        assert extracted == {o.index: o.extracted for o in direct.outcomes}


class TestPoolLifecycle:
    def test_closed_pool_rejects_batches(self, fitted_extractor, test_sites):
        pool = WorkerPool(max_workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.learn(fitted_extractor, test_sites, labels=[frozenset()] * 3)

    def test_empty_batch(self, fitted_extractor):
        with WorkerPool(max_workers=2) as pool:
            assert len(pool.learn(fitted_extractor, [])) == 0
            assert len(pool.apply([], [])) == 0

    def test_mismatched_pairing_rejected(self, fitted_extractor, test_sites):
        with WorkerPool(max_workers=1) as pool:
            with pytest.raises(ValueError, match="must pair up"):
                pool.learn(fitted_extractor, test_sites, labels=[frozenset()])
            with pytest.raises(ValueError, match="must pair up"):
                pool.apply([], test_sites)

    def test_intern_eviction_reships_instead_of_failing(
        self, fitted_extractor, bundle, test_sites
    ):
        """With an intern bound smaller than the fleet, the parent's
        ship ledger mirrors each worker's LRU: revisited sites are
        re-shipped, never referenced as interned when they are not."""
        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        with WorkerPool(
            max_workers=2, work_stealing=False, intern_bound=1
        ) as pool:
            first = pool.apply(learned.artifacts, test_sites)
            second = pool.apply(learned.artifacts, test_sites)
        assert not first.failures
        assert not second.failures
        assert [o.extracted for o in first.outcomes] == [
            o.extracted for o in second.outcomes
        ]
        # The bound forced re-shipping on revisits (> 1 shipment for
        # any site sharing a worker with another site).
        assert sum(pool.stats.shipments.values()) >= len(test_sites)

    def test_overlapping_streams_rejected(
        self, fitted_extractor, bundle, test_sites
    ):
        """A second stream started while one is mid-flight must raise,
        even though both iterators were created before consumption."""
        with WorkerPool(max_workers=2) as pool:
            it1 = pool.iter_learn_outcomes(
                fitted_extractor, test_sites, annotator=bundle.annotator
            )
            it2 = pool.iter_learn_outcomes(
                fitted_extractor, test_sites, annotator=bundle.annotator
            )
            next(it1)
            with pytest.raises(RuntimeError, match="already streaming"):
                next(it2)
            # The surviving stream keeps working to completion.
            rest = list(it1)
            assert len(rest) == len(test_sites) - 1

    def test_warm_apply_reuses_interned_site_memos(
        self, fitted_extractor, bundle, test_sites
    ):
        """Second apply of the same artifact on a warm inline worker is
        a pure memo hit: identical frozenset object, no new resolution."""
        learned = learn_many(
            fitted_extractor, test_sites[:1], annotator=bundle.annotator
        )
        with WorkerPool(max_workers=1) as pool:
            first = pool.apply(learned.artifacts, test_sites[:1])
            resolved = pool._inline.sites_resolved
            second = pool.apply(learned.artifacts, test_sites[:1])
            assert pool._inline.sites_resolved == resolved
        assert first.outcomes[0].extracted is second.outcomes[0].extracted


class TestSharedContextExecutors:
    def test_tasks_resolve_extractor_from_shared_context(
        self, fitted_extractor, bundle, test_sites
    ):
        """Executors that ship across processes get extractor-free tasks
        (the extractor ships once per worker, not once per task)."""
        from repro.api.batch import _map_with_shared

        captured = {}

        class Spy:
            ships_shared = True

            def map(self, fn, items):  # pragma: no cover - protocol only
                return [fn(item) for item in items]

            def map_tasks(self, fn, items, shared):
                captured["tasks"] = list(items)
                captured["shared"] = shared
                return _map_with_shared(fn, captured["tasks"], shared)

        result = learn_many(
            fitted_extractor,
            test_sites,
            annotator=bundle.annotator,
            executor=Spy(),
        )
        assert not result.failures
        assert all(task.extractor is None for task in captured["tasks"])
        assert all(task.annotator is None for task in captured["tasks"])
        assert captured["shared"]["extractor"] is fitted_extractor
        assert captured["shared"]["annotator"] is bundle.annotator

    def test_serial_learn_many_is_thread_safe(
        self, fitted_extractor, bundle, test_sites
    ):
        """The default serial path keeps tasks self-contained — two
        threads running batches concurrently never share context."""
        import threading

        results = {}

        def run(slot):
            results[slot] = learn_many(
                fitted_extractor, test_sites, annotator=bundle.annotator
            )

        threads = [
            threading.Thread(target=run, args=(slot,)) for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for slot in range(2):
            assert not results[slot].failures

    def test_inline_pool_does_not_mutate_callers_extractor(
        self, bundle, test_sites
    ):
        """A one-worker pool runs the caller's own Extractor object; its
        configured engine must survive the batch untouched."""
        from repro.engine import EvaluationEngine

        engine = EvaluationEngine()
        extractor = Extractor(
            ExtractorConfig(inductor="xpath", method="ntw"), engine=engine
        ).fit(bundle.sites[::2], bundle.annotator, bundle.gold_type)
        with WorkerPool(max_workers=1) as pool:
            result = pool.learn(
                extractor, test_sites, annotator=bundle.annotator
            )
        assert not result.failures
        assert extractor.engine is engine

    def test_refit_extractor_is_reshipped(self, bundle, test_sites):
        """Refitting mutates the extractor in place (new model objects);
        a persistent pool must detect that and re-ship, not serve the
        stale models."""
        extractor = Extractor(ExtractorConfig(inductor="xpath", method="ntw"))
        extractor.fit(bundle.sites[::2], bundle.annotator, bundle.gold_type)
        with WorkerPool(max_workers=1) as pool:
            pool.learn(extractor, test_sites[:1], annotator=bundle.annotator)
            shipped_model = pool._inline.extractor.publication_model
            extractor.fit(
                bundle.sites[1::2], bundle.annotator, bundle.gold_type
            )
            pool.learn(extractor, test_sites[:1], annotator=bundle.annotator)
            assert pool._inline.extractor.publication_model is not shipped_model
            assert (
                pool._inline.extractor.publication_model
                is extractor.publication_model
            )

    def test_plain_map_executors_get_self_contained_tasks(
        self, fitted_extractor, bundle, test_sites
    ):
        """Third-party executors exposing only .map still work: tasks
        carry the extractor themselves."""
        captured = {}

        class Plain:
            def map(self, fn, items):
                captured["tasks"] = list(items)
                return [fn(item) for item in captured["tasks"]]

        result = learn_many(
            fitted_extractor,
            test_sites,
            annotator=bundle.annotator,
            executor=Plain(),
        )
        assert not result.failures
        assert all(
            task.extractor is fitted_extractor for task in captured["tasks"]
        )


class TestCloseDrainOrTerminate:
    def test_close_mid_stream_returns_promptly_and_kills_workers(
        self, fitted_extractor, bundle, test_sites
    ):
        """close() while a stream has in-flight chunks must drain or
        terminate deterministically — not hang joining workers."""
        import time

        pool = WorkerPool(max_workers=2)
        iterator = pool.iter_learn_outcomes(
            fitted_extractor, test_sites * 3, annotator=bundle.annotator
        )
        next(iterator)  # stream is live, chunks in flight
        start = time.monotonic()
        pool.close(timeout=3.0)
        elapsed = time.monotonic() - start
        assert elapsed < 10.0
        assert all(not process.is_alive() for process in pool._processes)
        # The abandoned stream fails fast instead of hanging.
        with pytest.raises(RuntimeError, match="closed while this stream"):
            next(iterator)

    def test_close_is_idempotent_after_mid_stream_close(
        self, fitted_extractor, bundle, test_sites
    ):
        pool = WorkerPool(max_workers=2)
        iterator = pool.iter_learn_outcomes(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        next(iterator)
        pool.close(timeout=3.0)
        pool.close(timeout=3.0)  # second close is a no-op
        with pytest.raises(RuntimeError, match="closed"):
            pool.learn(fitted_extractor, test_sites[:1], labels=[frozenset()])

    def test_del_time_close_does_not_hang(
        self, fitted_extractor, bundle, test_sites
    ):
        """GC-time close (no explicit close call) with an abandoned
        stream must come back, not deadlock on a full outbox."""
        import time

        pool = WorkerPool(max_workers=2)
        iterator = pool.iter_learn_outcomes(
            fitted_extractor, test_sites * 2, annotator=bundle.annotator
        )
        next(iterator)
        del iterator
        start = time.monotonic()
        pool.__del__()
        assert time.monotonic() - start < 15.0
        assert all(not process.is_alive() for process in pool._processes)


class TestWorkerCrashRecovery:
    def test_survivors_retry_a_killed_workers_jobs(
        self, fitted_extractor, bundle, test_sites
    ):
        """Kill a worker mid-batch: survivors must retry its unacked
        chunks with no duplicate and no lost outcomes."""
        import os
        import signal

        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        fleet = test_sites * 3  # enough jobs to keep backlogs non-empty
        artifacts = learned.artifacts * 3
        serial = apply_many(learned.artifacts, test_sites)
        expected = {
            index: serial.outcomes[index % len(test_sites)].extracted
            for index in range(len(fleet))
        }
        # chunksize=1 + no stealing keeps a backlog parked on each
        # worker, so the kill always orphans work that must be retried.
        with WorkerPool(
            max_workers=2, chunksize=1, work_stealing=False
        ) as pool:
            iterator = pool.iter_apply_outcomes(artifacts, fleet)
            outcomes = [next(iterator)]
            os.kill(pool._processes[0].pid, signal.SIGKILL)
            outcomes.extend(iterator)
        indices = [outcome.index for outcome in outcomes]
        assert sorted(indices) == list(range(len(fleet)))  # none lost
        assert len(indices) == len(set(indices))  # none duplicated
        assert all(outcome.ok for outcome in outcomes)
        assert {o.index: o.extracted for o in outcomes} == expected
        assert pool._alive.count(True) == 1

    def test_batch_after_crash_remaps_to_survivors(
        self, fitted_extractor, bundle, test_sites
    ):
        """A pool that lost a worker keeps serving later batches on the
        survivors (sites remap stably)."""
        import os
        import signal

        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        with WorkerPool(max_workers=2, chunksize=1) as pool:
            iterator = pool.iter_apply_outcomes(
                learned.artifacts * 2, test_sites * 2
            )
            first = next(iterator)
            os.kill(pool._processes[1].pid, signal.SIGKILL)
            rest = list(iterator)
            assert len([first, *rest]) == len(test_sites) * 2
            again = pool.apply(learned.artifacts, test_sites)
        assert not again.failures

    def test_killed_workers_leave_no_orphan_segments(
        self, fitted_extractor, bundle, test_sites, tmp_path, monkeypatch
    ):
        """SIGKILLed workers must not strand arena segments: attachers
        never own segment files, so every file left behind belongs to
        the live parent and the orphan sweep finds nothing to reap."""
        import os
        import signal

        from repro.arena import reap_orphans
        from repro.arena.segment import _owner_pid
        from repro.site import Site

        monkeypatch.setenv("REPRO_ARENA_DIR", str(tmp_path))
        # Fresh parses: module-fixture sites may already be bound to
        # segments packed under the default arena directory.
        fresh = [
            Site.from_html(g.name, [p.source for p in g.site.pages])
            for g in test_sites
        ]
        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        serial = apply_many(learned.artifacts, test_sites)
        fleet = fresh * 3
        expected = {
            index: serial.outcomes[index % len(fresh)].extracted
            for index in range(len(fleet))
        }
        with WorkerPool(
            max_workers=2, chunksize=1, work_stealing=False
        ) as pool:
            iterator = pool.iter_apply_outcomes(learned.artifacts * 3, fleet)
            outcomes = [next(iterator)]
            os.kill(pool._processes[0].pid, signal.SIGKILL)
            outcomes.extend(iterator)
        assert sorted(o.index for o in outcomes) == list(range(len(fleet)))
        assert all(outcome.ok for outcome in outcomes)
        assert {o.index: o.extracted for o in outcomes} == expected
        assert pool.stats.arena_ships > 0  # sites crossed as handles
        leftover = os.listdir(tmp_path)
        assert leftover  # the live parent's segments are still in place
        assert all(_owner_pid(name) == os.getpid() for name in leftover)
        assert reap_orphans(str(tmp_path)) == []


class TestDynamicPool:
    """resize()/autoscale: grow and shrink a live fleet mid-stream."""

    def test_resize_before_spawn_retargets_max_workers(self):
        pool = WorkerPool(max_workers=2)
        try:
            assert pool.resize(3) == 3
            assert pool.max_workers == 3
            assert pool.workers_alive == 3
            with pytest.raises(ValueError, match=">= 1"):
                pool.resize(0)
        finally:
            pool.close()

    def test_resize_on_closed_pool_raises(self):
        pool = WorkerPool(max_workers=1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.resize(2)

    def test_scale_max_validated(self):
        with pytest.raises(ValueError, match="scale_max"):
            WorkerPool(max_workers=2, scale_max=0)

    def test_grow_and_shrink_between_batches(
        self, fitted_extractor, bundle, test_sites
    ):
        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        serial = apply_many(learned.artifacts, test_sites)
        expected = [o.extracted for o in serial.outcomes]
        with WorkerPool(max_workers=2) as pool:
            results = [pool.apply(learned.artifacts, test_sites)]
            assert pool.resize(4) == 4
            assert pool.workers_alive == 4
            results.append(pool.apply(learned.artifacts, test_sites))
            assert pool.resize(1) == 1
            assert pool.workers_alive == 1
            results.append(pool.apply(learned.artifacts, test_sites))
        for result in results:
            assert not result.failures
            assert [o.extracted for o in result.outcomes] == expected
        assert pool.stats.pool_resizes == 2

    def test_grow_mid_stream(self, fitted_extractor, bundle, test_sites):
        """Workers added while a stream is draining pick up the shared
        context and the backlog; outcomes stay exactly-once and equal
        to serial."""
        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        serial = apply_many(learned.artifacts, test_sites)
        fleet = test_sites * 4
        artifacts = learned.artifacts * 4
        expected = {
            index: serial.outcomes[index % len(test_sites)].extracted
            for index in range(len(fleet))
        }
        with WorkerPool(max_workers=2, chunksize=1) as pool:
            iterator = pool.iter_apply_outcomes(artifacts, fleet)
            outcomes = [next(iterator)]
            assert pool.resize(4) == 4
            assert pool.workers_alive == 4
            outcomes.extend(iterator)
        indices = [outcome.index for outcome in outcomes]
        assert sorted(indices) == list(range(len(fleet)))
        assert len(indices) == len(set(indices))
        assert {o.index: o.extracted for o in outcomes} == expected
        assert pool.stats.pool_resizes == 1

    def test_shrink_mid_stream(self, fitted_extractor, bundle, test_sites):
        """Retired workers finish their queued chunks; their unsent
        backlog moves to survivors — nothing lost, nothing doubled."""
        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        serial = apply_many(learned.artifacts, test_sites)
        fleet = test_sites * 4
        artifacts = learned.artifacts * 4
        expected = {
            index: serial.outcomes[index % len(test_sites)].extracted
            for index in range(len(fleet))
        }
        with WorkerPool(max_workers=3, chunksize=1) as pool:
            iterator = pool.iter_apply_outcomes(artifacts, fleet)
            outcomes = [next(iterator)]
            assert pool.resize(1) == 1
            outcomes.extend(iterator)
            assert pool._alive.count(True) == 1
        indices = [outcome.index for outcome in outcomes]
        assert sorted(indices) == list(range(len(fleet)))
        assert len(indices) == len(set(indices))
        assert {o.index: o.extracted for o in outcomes} == expected

    def test_autoscale_grows_under_backlog(
        self, fitted_extractor, bundle, test_sites
    ):
        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        serial = apply_many(learned.artifacts, test_sites)
        fleet = test_sites * 8
        artifacts = learned.artifacts * 8
        with WorkerPool(max_workers=2, chunksize=1, scale_max=4) as pool:
            result = pool.apply(artifacts, fleet)
            grown = pool.workers_alive
        assert not result.failures
        assert [o.extracted for o in result.outcomes] == [
            serial.outcomes[index % len(test_sites)].extracted
            for index in range(len(fleet))
        ]
        assert 2 < grown <= 4
        assert pool.stats.pool_resizes >= 1

    def test_autoscale_off_without_scale_max(
        self, fitted_extractor, bundle, test_sites
    ):
        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        with WorkerPool(max_workers=2, chunksize=1) as pool:
            result = pool.apply(learned.artifacts * 8, test_sites * 8)
            assert pool.workers_alive == 2
        assert not result.failures
        assert pool.stats.pool_resizes == 0


class TestWorkerSideTexts:
    """Apply outcomes resolve node texts on the worker's interned site."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_apply_resolve_texts_matches_parent_resolution(
        self, fitted_extractor, bundle, test_sites, workers
    ):
        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        with WorkerPool(max_workers=workers) as pool:
            result = pool.apply(
                learned.artifacts, test_sites, resolve_texts=True
            )
        assert not result.failures
        for outcome, generated in zip(result.outcomes, test_sites):
            expected = [
                generated.site.text_node(node_id).text
                for node_id in sorted(outcome.extracted)
            ]
            assert outcome.texts == expected

    def test_texts_default_off(self, fitted_extractor, bundle, test_sites):
        learned = learn_many(
            fitted_extractor, test_sites[:1], annotator=bundle.annotator
        )
        with WorkerPool(max_workers=1) as pool:
            result = pool.apply(learned.artifacts, test_sites[:1])
        assert result.outcomes[0].texts is None


class TestResultCoalescing:
    """Workers fold queued extraction-only chunks into one flush."""

    @staticmethod
    def _apply_job(index, artifact, payload):
        from repro.api.scheduler import _Job, _site_key

        job = _Job(
            index=index,
            kind="apply",
            name=f"shop-{index}",
            site_key=_site_key(payload, index),
            field="apply",
            artifact=artifact,
        )
        job.payload = payload
        return job

    @pytest.fixture()
    def tiny_artifact(self):
        from repro.annotators.dictionary import DictionaryAnnotator
        from repro.api import Extractor, ExtractorConfig
        from repro.site import Site

        page = "<div><table><tr><td><u>ALPHA</u></td></tr></table></div>"
        site = Site.from_html("shop", [page])
        labels = DictionaryAnnotator(["ALPHA"]).annotate(site)
        extractor = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
        return extractor.learn(site, labels, site_name="shop")

    def _run_worker(self, messages):
        import queue

        from repro.api.scheduler import _worker_main

        inbox, outbox = queue.Queue(), queue.Queue()
        for message in messages:
            inbox.put(message)
        inbox.put(None)
        _worker_main(0, inbox, outbox, intern_bound=8)
        flushes = []
        while True:
            item = outbox.get_nowait()
            if item is None:
                return flushes
            flushes.append(item)

    def _page(self, name):
        return f"<div><table><tr><td><u>{name}</u></td></tr></table></div>"

    def test_queued_apply_chunks_coalesce_into_one_flush(self, tiny_artifact):
        messages = [
            (
                "jobs",
                1,
                [
                    self._apply_job(
                        index, tiny_artifact, (f"s{index}", [self._page("ALPHA")])
                    )
                ],
            )
            for index in range(4)
        ]
        flushes = self._run_worker(messages)
        # All four single-job chunks were already queued, so they fold
        # into one message covering four chunks.
        assert len(flushes) == 1
        worker_id, batch, outcomes, chunks, deltas = flushes[0]
        assert (worker_id, batch, chunks) == (0, 1, 4)
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert all(o.ok for o in outcomes)
        # The coalesced flush piggybacks the worker's metric deltas.
        from repro.telemetry import names as metric_names

        jobs = deltas[metric_names.WORKER_JOBS]["values"][""]
        assert jobs == 4

    def test_learn_chunks_do_not_coalesce(self, fitted_extractor, bundle):
        from repro.api.scheduler import _Job, _site_key

        site = bundle.sites[1]
        jobs = []
        for index in range(3):
            job = _Job(
                index=index,
                kind="learn",
                name=site.name,
                site_key=_site_key(site, index),
                field="xpath/ntw",
                labels=bundle.annotator.annotate(site.site),
            )
            job.payload = site.site
            jobs.append(job)
        messages = [
            ("shared", 1, {"extractor": fitted_extractor, "annotator": None}),
            *[("jobs", 1, [job]) for job in jobs],
        ]
        flushes = self._run_worker(messages)
        assert len(flushes) == 3
        assert all(flush[3] == 1 for flush in flushes)

    def test_shared_update_breaks_the_fold(self, tiny_artifact):
        """A queued shared update must not be folded past: it flushes
        the batch so far and applies before later chunks run."""
        messages = [
            ("jobs", 1, [self._apply_job(0, tiny_artifact, ("a", [self._page("X")]))]),
            ("shared", 1, {"extractor": None, "annotator": None}),
            ("jobs", 1, [self._apply_job(1, tiny_artifact, ("b", [self._page("Y")]))]),
        ]
        flushes = self._run_worker(messages)
        assert [flush[3] for flush in flushes] == [1, 1]
        assert [o.index for flush in flushes for o in flush[2]] == [0, 1]

    def test_coalescing_respects_outcome_bound(self, tiny_artifact):
        from repro.api.scheduler import _COALESCE_MAX_OUTCOMES

        count = _COALESCE_MAX_OUTCOMES + 10
        messages = [
            (
                "jobs",
                1,
                [
                    self._apply_job(
                        index, tiny_artifact, (f"s{index}", [self._page("A")])
                    )
                ],
            )
            for index in range(count)
        ]
        flushes = self._run_worker(messages)
        assert len(flushes) == 2
        assert sum(flush[3] for flush in flushes) == count
        assert sorted(
            o.index for flush in flushes for o in flush[2]
        ) == list(range(count))

    @pytest.mark.parametrize("workers", [2])
    def test_live_pool_outcomes_survive_coalescing(
        self, fitted_extractor, bundle, test_sites, workers
    ):
        """End to end on real processes: per-site single-job chunks,
        exactly-once outcomes whatever the fold pattern."""
        learned = learn_many(
            fitted_extractor, test_sites, annotator=bundle.annotator
        )
        fleet = test_sites * 4
        artifacts = learned.artifacts * 4
        with WorkerPool(max_workers=workers, chunksize=1) as pool:
            result = pool.apply(artifacts, fleet)
        assert not result.failures
        assert [o.index for o in result.outcomes] == list(range(len(fleet)))
