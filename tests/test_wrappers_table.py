"""Tests for the TABLE inductor — the paper's Examples 1 and 3."""

import pytest

from repro.wrappers.table import Grid, TableInductor, TableWrapper


@pytest.fixture()
def grid():
    return Grid(5, 4)


@pytest.fixture()
def inductor():
    return TableInductor()


class TestGrid:
    def test_cell_roundtrip(self, grid):
        for row in range(5):
            for col in range(4):
                assert grid.position(grid.cell(row, col)) == (row, col)

    def test_out_of_range(self, grid):
        with pytest.raises(IndexError):
            grid.cell(5, 0)
        with pytest.raises(IndexError):
            grid.cell(0, 4)

    def test_all_cells_count(self, grid):
        assert len(grid.all_cells()) == 20

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Grid(0, 3)


class TestInduction:
    def test_single_label_returns_itself(self, grid, inductor):
        n1 = grid.cell(0, 0)
        wrapper = inductor.induce(grid, frozenset({n1}))
        assert wrapper.extract(grid) == frozenset({n1})

    def test_same_column_generalizes_to_column(self, grid, inductor):
        labels = frozenset({grid.cell(0, 0), grid.cell(1, 0)})
        wrapper = inductor.induce(grid, labels)
        assert wrapper == TableWrapper(row=None, col=0)
        assert wrapper.extract(grid) == frozenset(
            grid.cell(r, 0) for r in range(5)
        )

    def test_same_row_generalizes_to_row(self, grid, inductor):
        labels = frozenset({grid.cell(3, 0), grid.cell(3, 1)})
        wrapper = inductor.induce(grid, labels)
        assert wrapper == TableWrapper(row=3, col=None)

    def test_spanning_labels_generalize_to_table(self, grid, inductor):
        # {a4, z5} from Example 1 spans two rows and two columns.
        labels = frozenset({grid.cell(3, 1), grid.cell(4, 2)})
        wrapper = inductor.induce(grid, labels)
        assert wrapper == TableWrapper(row=None, col=None)
        assert wrapper.extract(grid) == grid.all_cells()

    def test_empty_labels_rejected(self, grid, inductor):
        with pytest.raises(ValueError):
            inductor.induce(grid, frozenset())

    def test_example3_feature_view(self, grid, inductor):
        # Example 3: features of n1 are {(row, 1), (col, 1)} (1-based in
        # the paper; zero-based here).
        features = inductor.feature_map(grid, grid.cell(0, 0))
        assert features == {"row": 0, "col": 0}

    def test_example3_intersection_is_column(self, grid, inductor):
        labels = frozenset(
            {grid.cell(0, 0), grid.cell(1, 0), grid.cell(3, 0)}
        )
        shared = inductor.shared_features(grid, labels)
        assert shared == {"col": 0}

    def test_example3_empty_intersection_is_table(self, grid, inductor):
        labels = frozenset({grid.cell(0, 0), grid.cell(3, 1)})
        shared = inductor.shared_features(grid, labels)
        assert shared == {}
        wrapper = inductor.wrapper_for_features(grid, shared)
        assert wrapper.extract(grid) == grid.all_cells()


class TestWrapperRules:
    def test_rules_are_distinct(self, grid):
        rules = {
            TableWrapper(row=None, col=None).rule(),
            TableWrapper(row=1, col=None).rule(),
            TableWrapper(row=None, col=1).rule(),
            TableWrapper(row=1, col=1).rule(),
        }
        assert len(rules) == 4

    def test_wrappers_hashable(self):
        assert TableWrapper(row=1, col=2) == TableWrapper(row=1, col=2)
        assert hash(TableWrapper(row=1, col=2)) == hash(TableWrapper(row=1, col=2))


class TestSubdivision:
    def test_subdivision_by_col(self, grid, inductor):
        subset = frozenset(
            {grid.cell(0, 0), grid.cell(1, 0), grid.cell(3, 1), grid.cell(4, 2)}
        )
        parts = inductor.subdivision(grid, subset, "col")
        sizes = sorted(len(p) for p in parts)
        assert sizes == [1, 1, 2]

    def test_subdivision_parts_are_disjoint(self, grid, inductor):
        subset = grid.all_cells()
        parts = inductor.subdivision(grid, subset, "row")
        seen = set()
        for part in parts:
            assert not (part & seen)
            seen |= part
        assert seen == subset
