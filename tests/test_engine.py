"""Unit tests for the evaluation engine: caches, trie, threading."""

from __future__ import annotations

import pickle

import pytest

from repro.engine import (
    EvaluationEngine,
    FeatureTrie,
    build_postings,
    get_engine,
    resolve_engine,
)
from repro.engine.config import get_config
from repro.htmldom.dom import NodeId
from repro.site import Site
from repro.wrappers.xpath_inductor import XPathInductor

PAGES = [
    "<html><body><table>"
    "<tr><td><u>ALPHA</u></td><td>x</td></tr>"
    "<tr><td><u>BETA</u></td><td>y</td></tr>"
    "</table></body></html>",
    "<html><body><table>"
    "<tr><td><u>GAMMA</u></td><td>z</td></tr>"
    "</table></body></html>",
]


def _site(name="engine-site"):
    return Site.from_html(name, PAGES)


class TestSiteCaches:
    def test_site_cache_identity_and_reuse(self):
        engine = EvaluationEngine()
        site = _site()
        cache = engine.site_cache(site)
        assert cache is engine.site_cache(site)
        assert cache.site is site

    def test_site_cache_bound_evicts_lru_only(self):
        engine = EvaluationEngine()
        bound = get_config().site_cache_bound
        sites = [_site(f"s{i}") for i in range(bound + 1)]
        caches = [engine.site_cache(site) for site in sites[:bound]]
        # Touch the oldest site so it is warm again; the over-bound
        # insert must evict only the *stalest* slot (sites[1]), leaving
        # every other warm memo in place.
        assert engine.site_cache(sites[0]) is caches[0]
        over = engine.site_cache(sites[bound])
        assert engine.site_cache(sites[0]) is caches[0]
        assert engine.site_cache(sites[bound]) is over
        for index in range(2, bound):
            assert engine.site_cache(sites[index]) is caches[index]
        assert engine.site_cache(sites[1]) is not caches[1]

    def test_extraction_memo_hits_across_equal_wrappers(self):
        engine = EvaluationEngine()
        site = _site()
        inductor = XPathInductor()
        labels = frozenset(list(site.iter_text_node_ids())[:2])
        first = inductor.induce(site, labels)
        second = inductor.induce(site, labels)
        assert first == second and first is not second
        a = engine.extract(site, first)
        b = engine.extract(site, second)  # equal wrapper -> memo hit
        assert a is b

    def test_clear_drops_caches_but_not_results(self):
        engine = EvaluationEngine()
        site = _site()
        wrapper = XPathInductor().induce(site, site.text_node_ids())
        before = engine.extract(site, wrapper)
        engine.clear()
        assert engine.extract(site, wrapper) == before

    def test_engine_pickles_empty(self):
        engine = EvaluationEngine()
        site = _site()
        engine.site_cache(site).extractions[object()] = frozenset()
        clone = pickle.loads(pickle.dumps(engine))
        assert isinstance(clone, EvaluationEngine)
        assert clone.site_cache(site).extractions == {}

    def test_site_pickles_without_derived_state(self):
        site = _site()
        wrapper = XPathInductor().induce(site, site.text_node_ids())
        extracted = wrapper.extract(site)
        assert site._derived  # derived structures were built
        clone = pickle.loads(pickle.dumps(site))
        assert clone._derived == {}
        assert clone._stripped_index is None
        # ... and rebuild on demand with identical results.
        rebuilt = XPathInductor().induce(clone, clone.text_node_ids())
        assert rebuilt.extract(clone) == extracted

    def test_resolve_engine_defaults_to_process_engine(self):
        assert resolve_engine(None) is get_engine()
        custom = EvaluationEngine()
        assert resolve_engine(custom) is custom

    def test_non_site_corpus_falls_back_to_wrapper_extract(self):
        from repro.wrappers.table import Grid, TableInductor

        grid = Grid(3, 3)
        inductor = TableInductor()
        labels = frozenset({grid.cell(0, 0), grid.cell(1, 0)})
        wrapper = inductor.induce(grid, labels)
        engine = EvaluationEngine()
        assert engine.extract(grid, wrapper) == wrapper.extract(grid)
        assert engine.batch_extract(grid, [wrapper]) == [wrapper.extract(grid)]

    def test_duck_typed_site_like_corpus_does_not_recurse(self):
        """A bare object with .pages must extract, not loop through the
        engine's fallback (regression: wrapper.extract <-> engine.extract)."""

        class PageBundle:
            def __init__(self, pages):
                self.pages = pages

        site = _site()
        duck = PageBundle(site.pages)
        from repro.wrappers.lr import LRInductor

        for inductor in (XPathInductor(), LRInductor()):
            wrapper = inductor.induce(site, site.text_node_ids())
            assert wrapper.extract(duck) == wrapper.extract(site)

    def test_derived_structures_shared_across_engines(self):
        """Threading a non-default engine must not rebuild site-derived
        structures already built under another engine (regression:
        split-brain caching between induction and extraction)."""
        site = _site()
        inductor = XPathInductor()
        labels = site.text_node_ids()
        wrapper = inductor.induce(site, labels)  # builds the feature index
        index_before = site._derived.get("xpath.features")
        assert index_before is not None
        custom = EvaluationEngine()
        custom.extract(site, wrapper)  # builds the trie, reuses the index
        assert site._derived["xpath.features"] is index_before
        trie = site._derived.get("xpath.trie")
        assert trie is not None
        get_engine().extract(site, wrapper)
        assert site._derived["xpath.trie"] is trie


class TestFeatureTrie:
    def _postings(self):
        n = [NodeId(0, i) for i in range(6)]
        feature_sets = {
            n[0]: frozenset({"a", "b", "c"}),
            n[1]: frozenset({"a", "b"}),
            n[2]: frozenset({"a", "c"}),
            n[3]: frozenset({"a"}),
            n[4]: frozenset({"b", "c"}),
            n[5]: frozenset({"d"}),
        }
        return n, feature_sets

    def test_lookup_is_posting_intersection(self):
        n, feature_sets = self._postings()
        trie = FeatureTrie(build_postings(feature_sets), frozenset(n))
        assert trie.lookup(frozenset()) == frozenset(n)
        assert trie.lookup({"a"}) == {n[0], n[1], n[2], n[3]}
        assert trie.lookup({"a", "b"}) == {n[0], n[1]}
        assert trie.lookup({"a", "b", "c"}) == {n[0]}
        assert trie.lookup({"b", "c"}) == {n[0], n[4]}
        assert trie.lookup({"d"}) == {n[5]}

    def test_missing_item_yields_empty(self):
        n, feature_sets = self._postings()
        trie = FeatureTrie(build_postings(feature_sets), frozenset(n))
        assert trie.lookup({"nope"}) == frozenset()
        assert trie.lookup({"a", "nope"}) == frozenset()

    def test_shared_prefixes_are_cached(self):
        n, feature_sets = self._postings()
        trie = FeatureTrie(build_postings(feature_sets), frozenset(n))
        first = trie.lookup({"a", "b"})
        again = trie.lookup({"a", "b"})
        assert first is again  # same cached leaf set

    def test_build_postings_inverts_feature_sets(self):
        n, feature_sets = self._postings()
        postings = build_postings(feature_sets)
        assert postings["a"] == {n[0], n[1], n[2], n[3]}
        assert postings["d"] == {n[5]}


class TestFeatureTrieLRU:
    def _trie(self, node_bound):
        n = [NodeId(0, i) for i in range(4)]
        feature_sets = {
            n[0]: frozenset({"a", "b"}),
            n[1]: frozenset({"a"}),
            n[2]: frozenset({"b"}),
            n[3]: frozenset({f"x{i}" for i in range(40)}),
        }
        return n, FeatureTrie(
            build_postings(feature_sets), frozenset(n), node_bound=node_bound
        )

    def test_node_count_stays_bounded(self):
        _, trie = self._trie(node_bound=10)
        for i in range(40):
            trie.lookup({f"x{i}"})
        assert trie.node_count <= 10

    def test_hot_prefixes_survive_eviction(self):
        """LRU eviction peels cold leaves; a prefix refreshed between
        evictions keeps serving the same cached set object."""
        n, trie = self._trie(node_bound=10)
        hot = trie.lookup({"a", "b"})
        assert hot == {n[0]}
        for i in range(40):
            trie.lookup({"a", "b"})  # keep the prefix hot
            trie.lookup({f"x{i}"})  # churn cold leaves past the bound
        assert trie.lookup({"a", "b"}) is hot
        assert trie.node_count <= 10

    def test_evicted_lookups_recompute_correctly(self):
        n, trie = self._trie(node_bound=6)
        expected = {f"x{i}": trie.lookup({f"x{i}"}) for i in range(20)}
        # Every early leaf has been evicted by now; recomputed results
        # must still be the exact posting intersections.
        for item, result in expected.items():
            assert trie.lookup({item}) == result == {n[3]}

    def test_bound_from_engine_config(self):
        from repro.engine import configure, get_config

        previous = get_config().trie_node_bound
        try:
            configure(trie_node_bound=8)
            _, trie = self._trie(node_bound=None)
            for i in range(40):
                trie.lookup({f"x{i}"})
            assert trie.node_count <= 8
        finally:
            configure(trie_node_bound=previous)

    def test_configure_rejects_garbage(self):
        from repro.engine import configure

        with pytest.raises(ValueError, match="unknown engine config field"):
            configure(nope=3)
        with pytest.raises(ValueError, match="positive integer"):
            configure(trie_node_bound=0)


class TestDocumentPathMemo:
    def test_memo_is_stable_across_compiled_instances(self):
        """Two CompiledPath objects for one location path share the
        document-held memo — the stable per-site key the warm workers
        rely on when artifacts recompile their rules."""
        from repro.xpathlang.compiled import CompiledPath
        from repro.xpathlang.parser import parse_xpath

        site = _site()
        page = site.pages[0]
        first = CompiledPath(parse_xpath("//td/u/text()"))
        second = CompiledPath(parse_xpath("//td/u/text()"))
        assert first is not second
        assert first.evaluate_cached(page) is second.evaluate_cached(page)

    def test_memo_never_pickled(self):
        import pickle

        from repro.xpathlang.compiled import evaluate_compiled

        site = _site()
        assert evaluate_compiled("//td/u/text()", site.pages[0])
        assert site.pages[0].xpath_memo
        clone = pickle.loads(pickle.dumps(site))
        assert clone.pages[0].xpath_memo == {}
        assert [n.text for n in evaluate_compiled("//td/u/text()", clone.pages[0])] == [
            n.text for n in evaluate_compiled("//td/u/text()", site.pages[0])
        ]


class TestEngineThreading:
    def test_ntw_threads_one_engine_through_learn(self):
        from repro.framework.ntw import NoiseTolerantWrapper
        from repro.ranking.annotation import AnnotationModel
        from repro.ranking.scorer import WrapperScorer

        site = _site()
        engine = EvaluationEngine()
        scorer = WrapperScorer(AnnotationModel.from_rates(p=0.9, r=0.5), None)
        learner = NoiseTolerantWrapper(
            XPathInductor(), scorer, engine=engine
        )
        assert learner.engine is engine
        labels = frozenset(site.find_text_nodes("ALPHA")) | frozenset(
            site.find_text_nodes("BETA")
        )
        result = learner.learn(site, labels)
        assert result.best is not None
        # Every enumerated candidate was evaluated through this engine.
        memo = engine.site_cache(site).extractions
        for ranked in result.ranked:
            assert memo[ranked.wrapper] == ranked.extracted

    def test_extractor_facade_owns_an_engine_and_applies_through_it(self):
        from repro.api import Extractor, ExtractorConfig

        site = _site()
        engine = EvaluationEngine()
        extractor = Extractor(
            ExtractorConfig(inductor="xpath", method="ntw-l"), engine=engine
        )
        labels = frozenset(site.find_text_nodes("ALPHA")) | frozenset(
            site.find_text_nodes("BETA")
        )
        artifact = extractor.learn(site, labels)
        extracted = extractor.apply(artifact, site)
        assert extracted == artifact.apply(site)
        # The artifact's rebuilt wrapper hit this engine's memo.
        assert any(
            memo_wrapper == artifact.wrapper()
            for memo_wrapper in engine.site_cache(site).extractions
        )
