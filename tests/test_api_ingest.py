"""Streaming ingestion: incremental submission, backpressure, asyncio."""

import asyncio

import pytest

from repro.api import (
    AsyncIngestSession,
    Extractor,
    ExtractorConfig,
    IngestSession,
    WorkerPool,
    apply_many,
    learn_many,
    load_dataset,
)


@pytest.fixture(scope="module")
def bundle():
    return load_dataset("dealers", sites=6, pages=4, seed=11)


@pytest.fixture(scope="module")
def fitted_extractor(bundle):
    extractor = Extractor(ExtractorConfig(inductor="xpath", method="ntw"))
    return extractor.fit(bundle.sites[::2], bundle.annotator, bundle.gold_type)


@pytest.fixture(scope="module")
def fleet(bundle):
    return bundle.sites[1::2]


@pytest.fixture(scope="module")
def raw_fleet(fleet):
    return [
        (generated.name, [page.source for page in generated.site.pages])
        for generated in fleet
    ]


@pytest.fixture(scope="module")
def learned(fitted_extractor, bundle, fleet):
    result = learn_many(fitted_extractor, fleet, annotator=bundle.annotator)
    assert not result.failures
    return result


class TestIncrementalApply:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_interleaved_submit_and_consume_matches_apply_many(
        self, learned, fleet, raw_fleet, workers
    ):
        """The acceptance scenario: feed sites one at a time while
        consuming, assert bitwise-identical extractions to apply_many
        over the same fleet."""
        batch = apply_many(learned.artifacts, fleet)
        streamed = {}
        with IngestSession(max_workers=workers) as session:
            for artifact, (name, pages) in zip(learned.artifacts, raw_fleet):
                index = session.submit_html(name, pages, artifact=artifact)
                assert index == len(streamed) + session.in_flight - 1
                for outcome in session.results():  # interleaved, non-blocking
                    streamed[outcome.index] = outcome
            for outcome in session.iter_results():  # end-of-crawl drain
                streamed[outcome.index] = outcome
        assert sorted(streamed) == list(range(len(fleet)))
        for index, reference in enumerate(batch.outcomes):
            assert streamed[index].ok
            assert streamed[index].extracted == reference.extracted
            assert streamed[index].site == reference.site

    def test_advance_emits_per_record_on_inline_pool(
        self, learned, raw_fleet
    ):
        """On the default one-worker pool, advance() after each submit
        yields that record's outcome immediately — outcomes flow with
        the crawl, not at the end-of-crawl drain."""
        with IngestSession(max_workers=1) as session:
            for position, (artifact, (name, pages)) in enumerate(
                zip(learned.artifacts, raw_fleet)
            ):
                session.submit_html(name, pages, artifact=artifact)
                outcomes = list(session.advance())
                assert [o.index for o in outcomes] == [position]
            assert list(session.iter_results()) == []  # nothing deferred

    def test_results_is_a_pure_probe_on_inline_pool(self, learned, raw_fleet):
        with IngestSession(max_workers=1) as session:
            name, pages = raw_fleet[0]
            session.submit_html(name, pages, artifact=learned.artifacts[0])
            assert list(session.results()) == []  # no work done
            assert session.pool._inline.sites_resolved == 0
            assert [o.ok for o in session.advance()] == [True]

    def test_submit_parsed_sites(self, learned, fleet):
        batch = apply_many(learned.artifacts, fleet)
        with IngestSession(max_workers=2) as session:
            for artifact, generated in zip(learned.artifacts, fleet):
                session.submit(generated, artifact=artifact)
            outcomes = {o.index: o for o in session.iter_results()}
        assert [outcomes[i].extracted for i in range(len(fleet))] == [
            o.extracted for o in batch.outcomes
        ]

    def test_session_default_artifact(self, learned, raw_fleet):
        artifact = learned.artifacts[0]
        name, pages = raw_fleet[0]
        with IngestSession(artifact=artifact, max_workers=1) as session:
            session.submit_html(name, pages)
            outcome = next(session.iter_results())
        assert outcome.ok
        assert outcome.artifact is artifact


class TestIncrementalLearn:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_streaming_learn_matches_learn_many(
        self, fitted_extractor, bundle, fleet, raw_fleet, workers
    ):
        batch = learn_many(fitted_extractor, fleet, annotator=bundle.annotator)
        with IngestSession(
            extractor=fitted_extractor,
            annotator=bundle.annotator,
            max_workers=workers,
        ) as session:
            for name, pages in raw_fleet:
                session.submit_html(name, pages)
            outcomes = {o.index: o for o in session.iter_results()}
        assert sorted(outcomes) == list(range(len(fleet)))
        assert [outcomes[i].artifact.rule for i in range(len(fleet))] == [
            o.artifact.rule for o in batch.outcomes
        ]

    def test_explicit_labels_ride_the_submission(
        self, fitted_extractor, bundle, fleet
    ):
        generated = fleet[0]
        labels = bundle.annotator.annotate(generated.site)
        with IngestSession(
            extractor=fitted_extractor, max_workers=1
        ) as session:
            session.submit(generated, labels=labels)
            outcome = next(session.iter_results())
        assert outcome.ok

    def test_learnless_artifactless_submission_rejected(self, fleet):
        with IngestSession(max_workers=1) as session:
            with pytest.raises(ValueError, match="artifact .* or a session"):
                session.submit(fleet[0])


class TestBackpressureAndIsolation:
    def test_inflight_bound_is_enforced_on_the_pool(self, learned, raw_fleet):
        """With max_inflight=1 the pool never holds more than one
        unfinished job; everything still completes exactly once."""
        submitted = 0
        with IngestSession(max_workers=2, max_inflight=1) as session:
            for artifact, (name, pages) in zip(
                learned.artifacts * 3, raw_fleet * 3
            ):
                session.submit_html(name, pages, artifact=artifact)
                submitted += 1
                assert session._session.uncompleted <= 1
            outcomes = list(session.iter_results())
        assert len(outcomes) == submitted
        assert all(outcome.ok for outcome in outcomes)

    def test_bad_inflight_bound_rejected(self):
        with pytest.raises(ValueError, match="max_inflight"):
            IngestSession(max_workers=1, max_inflight=0)

    def test_broken_page_is_an_outcome_not_a_crash(self, learned, raw_fleet):
        with IngestSession(max_workers=2) as session:
            session.submit(("broken", [None]), artifact=learned.artifacts[0])
            name, pages = raw_fleet[0]
            session.submit_html(name, pages, artifact=learned.artifacts[0])
            outcomes = {o.index: o for o in session.iter_results()}
        assert not outcomes[0].ok and outcomes[0].error
        assert outcomes[1].ok

    def test_closed_session_rejects_submissions(self, learned, raw_fleet):
        session = IngestSession(max_workers=1)
        session.close()
        name, pages = raw_fleet[0]
        with pytest.raises(RuntimeError, match="closed"):
            session.submit_html(name, pages, artifact=learned.artifacts[0])


class TestPoolSharing:
    def test_caller_pool_survives_the_session(self, learned, fleet, raw_fleet):
        """A session on a caller-owned pool releases the stream on
        close; the pool keeps serving batches with its warm state."""
        with WorkerPool(max_workers=2) as pool:
            with IngestSession(pool=pool) as session:
                for artifact, (name, pages) in zip(
                    learned.artifacts, raw_fleet
                ):
                    session.submit_html(name, pages, artifact=artifact)
                streamed = {o.index: o for o in session.iter_results()}
            after = pool.apply(learned.artifacts, fleet)
            assert not after.failures
        assert [streamed[i].extracted for i in range(len(fleet))] == [
            o.extracted for o in after.outcomes
        ]

    def test_session_is_the_pools_single_stream(self, learned, fleet):
        with WorkerPool(max_workers=2) as pool:
            with IngestSession(pool=pool) as session:
                session.submit(fleet[0], artifact=learned.artifacts[0])
                with pytest.raises(RuntimeError, match="already streaming"):
                    pool.apply(learned.artifacts, fleet)
                list(session.iter_results())


class TestDynamicScaling:
    def test_pool_grows_mid_stream_without_reparsing(self, learned, fleet):
        """Grow a live pool mid-stream: sites already submitted shipped
        as arena handles, so the added workers attach shared memory
        instead of re-parsing, and extractions match the batch path."""
        batch = apply_many(learned.artifacts, fleet)
        sites = [generated.site for generated in fleet]
        with WorkerPool(max_workers=2) as pool:
            with IngestSession(pool=pool) as session:
                session.submit(sites[0], artifact=learned.artifacts[0])
                assert pool.resize(4) == 4
                assert pool.workers_alive == 4
                for artifact, site in zip(learned.artifacts[1:], sites[1:]):
                    session.submit(site, artifact=artifact)
                outcomes = {o.index: o for o in session.iter_results()}
        assert sorted(outcomes) == list(range(len(fleet)))
        for index, reference in enumerate(batch.outcomes):
            assert outcomes[index].ok
            assert outcomes[index].extracted == reference.extracted
        assert pool.stats.pool_resizes == 1
        # Every parsed site crossed as a handle, and packing is
        # memoized per site: grown workers attached, never re-parsed.
        assert pool.stats.arena_ships > 0
        assert all(site._arena is not None for site in sites)

    def test_session_scale_max_reaches_the_owned_pool(
        self, learned, raw_fleet
    ):
        submitted = 0
        with IngestSession(max_workers=2, scale_max=4) as session:
            for artifact, (name, pages) in zip(
                learned.artifacts * 10, raw_fleet * 10
            ):
                session.submit_html(name, pages, artifact=artifact)
                submitted += 1
            assert session.pool.scale_max == 4
            assert 2 <= session.pool.workers_alive <= 4
            outcomes = list(session.iter_results())
        assert len(outcomes) == submitted
        assert all(outcome.ok for outcome in outcomes)


class TestAsyncAdapter:
    def test_async_session_matches_batch(self, learned, fleet, raw_fleet):
        batch = apply_many(learned.artifacts, fleet)

        async def crawl():
            collected = {}
            async with AsyncIngestSession(max_workers=2) as session:
                for artifact, (name, pages) in zip(
                    learned.artifacts, raw_fleet
                ):
                    await session.submit_html(name, pages, artifact=artifact)
                    for outcome in await session.completed():
                        collected[outcome.index] = outcome
                async for outcome in session.iter_results():
                    collected[outcome.index] = outcome
            return collected

        collected = asyncio.run(crawl())
        assert sorted(collected) == list(range(len(fleet)))
        assert [collected[i].extracted for i in range(len(fleet))] == [
            o.extracted for o in batch.outcomes
        ]

    def test_concurrent_first_submits_share_one_session(
        self, learned, raw_fleet
    ):
        """Two producer tasks racing the lazy session creation must
        land on a single underlying session/pool (no leaked workers,
        unified submission accounting)."""

        async def run():
            session = AsyncIngestSession(
                artifact=learned.artifacts[0], max_workers=1
            )
            name, pages = raw_fleet[0]
            indices = await asyncio.gather(
                session.submit_html(name, pages),
                session.submit_html(name, pages),
            )
            results = [o async for o in session.iter_results()]
            underlying = session._session
            await session.close()
            return indices, results, underlying

        indices, results, underlying = asyncio.run(run())
        assert sorted(indices) == [0, 1]  # one shared index sequence
        assert len(results) == 2
        assert underlying is not None and underlying._closed

    def test_async_submit_returns_indices(self, learned, raw_fleet):
        async def run():
            async with AsyncIngestSession(
                artifact=learned.artifacts[0], max_workers=1
            ) as session:
                name, pages = raw_fleet[0]
                first = await session.submit_html(name, pages)
                second = await session.submit_html(name, pages)
                results = [o async for o in session.iter_results()]
            return first, second, results

        first, second, results = asyncio.run(run())
        assert (first, second) == (0, 1)
        assert len(results) == 2


class TestHotSwap:
    """update_shared: live mid-stream context swap, no session restart."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_refit_extractor_applies_to_later_submissions(
        self, bundle, fleet, workers
    ):
        """The swap orders with dispatch on ANY pool size: jobs
        submitted before it run under the old context (the inline pool
        drains its lazy queue at swap time to match the pooled inbox
        FIFO), jobs after it under the new."""
        first = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
        refit = Extractor(ExtractorConfig(inductor="lr", method="naive"))
        with IngestSession(
            extractor=first, annotator=bundle.annotator, max_workers=workers
        ) as session:
            session.submit(fleet[0].site)
            assert session.update_shared(extractor=refit) is True
            session.submit(fleet[1].site)
            outcomes = {o.index: o for o in session.iter_results()}
        assert outcomes[0].ok and outcomes[0].artifact.inductor == "xpath"
        assert outcomes[1].ok and outcomes[1].artifact.inductor == "lr"

    def test_swap_is_fingerprint_gated(self, bundle, fleet):
        extractor = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
        other = Extractor(ExtractorConfig(inductor="lr", method="naive"))
        with IngestSession(
            extractor=extractor, annotator=bundle.annotator, max_workers=1
        ) as session:
            session.submit(fleet[0].site)
            list(session.advance())
            assert session.update_shared(extractor=other) is True
            assert session.update_shared(extractor=other) is False  # unchanged
            assert session.update_shared(extractor=extractor) is True

    def test_default_artifact_swap_changes_later_submissions(
        self, learned, raw_fleet
    ):
        art_a, art_b = learned.artifacts[0], learned.artifacts[1]
        name, pages = raw_fleet[0]
        with IngestSession(artifact=art_a, max_workers=1) as session:
            session.submit_html(name, pages)
            session.update_shared(artifact=art_b)
            session.submit_html(name, pages)
            outcomes = {o.index: o for o in session.iter_results()}
        assert outcomes[0].artifact is art_a
        assert outcomes[1].artifact is art_b

    def test_swap_can_arm_an_apply_only_session_for_learning(
        self, bundle, fleet, learned
    ):
        extractor = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
        with IngestSession(artifact=learned.artifacts[0], max_workers=1) as session:
            session.submit(fleet[0].site)  # apply via default artifact
            session.update_shared(
                extractor=extractor, annotator=bundle.annotator
            )
            session.artifact = None
            session.submit(fleet[1].site)  # now a learn job
            outcomes = {o.index: o for o in session.iter_results()}
        assert outcomes[0].extracted is not None
        assert outcomes[1].artifact.method == "naive"

    def test_update_shared_on_closed_session_raises(self, learned):
        session = IngestSession(artifact=learned.artifacts[0], max_workers=1)
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.update_shared(artifact=learned.artifacts[0])

    def test_async_update_shared(self, bundle, fleet):
        first = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
        refit = Extractor(ExtractorConfig(inductor="lr", method="naive"))

        async def run():
            async with AsyncIngestSession(
                extractor=first, annotator=bundle.annotator, max_workers=1
            ) as session:
                await session.submit(fleet[0].site)
                await session.update_shared(extractor=refit)
                await session.submit(fleet[1].site)
                return [o async for o in session.iter_results()]

        outcomes = asyncio.run(run())
        assert all(o.ok for o in outcomes)
        # Same dispatch ordering as the sync session: pre-swap
        # submission under the old context, post-swap under the new.
        by_index = {o.index: o.artifact.inductor for o in outcomes}
        assert by_index == {0: "xpath", 1: "lr"}


class TestWorkerSideTextResolution:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_submission_texts_match_parent_resolution(
        self, learned, fleet, raw_fleet, workers
    ):
        with IngestSession(max_workers=workers) as session:
            for artifact, (name, pages) in zip(learned.artifacts, raw_fleet):
                session.submit_html(
                    name, pages, artifact=artifact, resolve_texts=True
                )
            outcomes = {o.index: o for o in session.iter_results()}
        for index, generated in enumerate(fleet):
            outcome = outcomes[index]
            assert outcome.ok
            expected = [
                generated.site.text_node(node_id).text
                for node_id in sorted(outcome.extracted)
            ]
            assert outcome.texts == expected

    def test_texts_absent_without_flag(self, learned, raw_fleet):
        name, pages = raw_fleet[0]
        with IngestSession(max_workers=1) as session:
            session.submit_html(name, pages, artifact=learned.artifacts[0])
            outcome = next(iter(session.iter_results()))
        assert outcome.texts is None
