"""Tests for HTML tree construction."""

from hypothesis import given
from hypothesis import strategies as st

from repro.htmldom.dom import ElementNode, TextNode
from repro.htmldom.treebuilder import parse_html


def tags_under(element) -> list[str]:
    return [c.tag for c in element.children if isinstance(c, ElementNode)]


class TestBasicTrees:
    def test_root_is_html(self):
        doc = parse_html("<p>x</p>")
        assert doc.root.tag == "html"

    def test_explicit_html_root_is_merged(self):
        doc = parse_html("<html><body><p>x</p></body></html>")
        assert doc.root.tag == "html"
        assert tags_under(doc.root) == ["body"]

    def test_nesting(self):
        doc = parse_html("<div><table><tr><td>x</td></tr></table></div>")
        div = doc.root.children[0]
        assert div.tag == "div"
        table = div.children[0]
        tr = table.children[0]
        td = tr.children[0]
        assert [table.tag, tr.tag, td.tag] == ["table", "tr", "td"]
        assert td.children[0].text == "x"

    def test_attributes_preserved(self):
        doc = parse_html('<div class="dealerlinks">x</div>')
        assert doc.root.children[0].attrs == {"class": "dealerlinks"}

    def test_whitespace_only_text_dropped(self):
        doc = parse_html("<div>\n   <p>x</p>\n </div>")
        div = doc.root.children[0]
        assert len(div.children) == 1

    def test_text_node_spans_recorded(self):
        source = "<td>PORTER</td>"
        doc = parse_html(source)
        node = doc.text_nodes()[0]
        assert source[node.start : node.end] == "PORTER"

    def test_comments_dropped(self):
        doc = parse_html("<div><!-- hidden -->x</div>")
        div = doc.root.children[0]
        assert len(div.children) == 1
        assert isinstance(div.children[0], TextNode)

    def test_doctype_dropped(self):
        doc = parse_html("<!DOCTYPE html><p>x</p>")
        assert tags_under(doc.root) == ["p"]


class TestVoidElements:
    def test_br_takes_no_children(self):
        doc = parse_html("<td>a<br>b</td>")
        td = doc.root.children[0]
        kinds = [type(c).__name__ for c in td.children]
        assert kinds == ["TextNode", "ElementNode", "TextNode"]

    def test_img_and_input(self):
        doc = parse_html('<div><img src="x.png"><input name="q">text</div>')
        div = doc.root.children[0]
        assert tags_under(div) == ["img", "input"]
        assert div.children[-1].text == "text"

    def test_stray_void_end_tag_ignored(self):
        doc = parse_html("<div>a</br>b</div>")
        div = doc.root.children[0]
        assert div.text_content() == "ab"


class TestImpliedEndTags:
    def test_unclosed_li(self):
        doc = parse_html("<ul><li>a<li>b<li>c</ul>")
        ul = doc.root.children[0]
        assert tags_under(ul) == ["li", "li", "li"]

    def test_unclosed_td_and_tr(self):
        doc = parse_html("<table><tr><td>a<td>b<tr><td>c</table>")
        table = doc.root.children[0]
        rows = tags_under(table)
        assert rows == ["tr", "tr"]
        assert tags_under(table.children[0]) == ["td", "td"]
        assert tags_under(table.children[1]) == ["td"]

    def test_unclosed_p(self):
        doc = parse_html("<div><p>one<p>two</div>")
        div = doc.root.children[0]
        assert tags_under(div) == ["p", "p"]

    def test_dt_dd_alternation(self):
        doc = parse_html("<dl><dt>term<dd>def<dt>term2<dd>def2</dl>")
        dl = doc.root.children[0]
        assert tags_under(dl) == ["dt", "dd", "dt", "dd"]

    def test_li_nested_in_inner_list_not_closed_by_outer(self):
        doc = parse_html("<ul><li>a<ul><li>b</li></ul></li><li>c</li></ul>")
        outer = doc.root.children[0]
        assert len(tags_under(outer)) == 2

    def test_unmatched_end_tag_dropped(self):
        doc = parse_html("<div>a</span>b</div>")
        assert doc.root.children[0].text_content() == "ab"

    def test_end_tag_closes_intervening_elements(self):
        doc = parse_html("<div><b>x</div>")
        # </div> closes the open <b> too
        assert doc.root.children[0].tag == "div"
        assert len(doc.root.children) == 1


class TestDocumentIndex:
    def test_preorder_ids_are_dense(self):
        doc = parse_html("<div><p>a</p><p>b</p></div>")
        ids = [n.node_id.preorder for n in doc.nodes]
        assert ids == list(range(len(doc.nodes)))

    def test_node_lookup_roundtrip(self):
        doc = parse_html("<div><p>a</p></div>")
        for node in doc.nodes:
            assert doc.node(node.node_id) is node

    def test_text_node_at_span(self):
        source = "<td>HELLO</td>"
        doc = parse_html(source)
        node = doc.text_nodes()[0]
        assert doc.text_node_at_span(node.start, node.end) is node

    def test_text_node_containing(self):
        source = "<td>HELLO</td>"
        doc = parse_html(source)
        node = doc.text_nodes()[0]
        assert doc.text_node_containing(node.start + 2) is node

    def test_page_index_propagates(self):
        doc = parse_html("<p>x</p>", page_index=7)
        assert all(n.node_id.page == 7 for n in doc.nodes)


class TestParserProperties:
    @given(st.text(max_size=200))
    def test_never_crashes(self, text):
        doc = parse_html(text)
        assert doc.root.tag == "html"

    @given(
        st.lists(
            st.sampled_from(
                ["<div>", "</div>", "<td>", "x", "<br>", "<li>", "</table>", "<b >"]
            ),
            max_size=40,
        )
    )
    def test_soup_preorder_is_consistent(self, parts):
        doc = parse_html("".join(parts))
        nodes = list(doc.root.iter_preorder())
        assert nodes == doc.nodes
        for node in nodes[1:]:
            assert node.parent is not None
