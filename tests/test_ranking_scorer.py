"""Tests for the combined wrapper scorer and its ablation variants."""

import pytest

from repro.ranking.annotation import AnnotationModel
from repro.ranking.publication import PublicationModel
from repro.ranking.scorer import WrapperScorer
from repro.site import Site
from repro.wrappers.xpath_inductor import XPathInductor


@pytest.fixture()
def site():
    rows = "".join(
        f"<tr><td><u>N{i}</u></td><td>A{i}</td><td>P{i}</td></tr>"
        for i in range(1, 6)
    )
    return Site.from_html("score", [f"<table>{rows}</table>"])


@pytest.fixture()
def gold(site):
    return frozenset(
        node_id
        for i in range(1, 6)
        for node_id in site.find_text_nodes(f"N{i}")
    )


@pytest.fixture()
def models(site, gold):
    annotation = AnnotationModel.from_rates(p=0.95, r=0.6)
    publication = PublicationModel.fit([(site, gold)])
    return annotation, publication


def noisy_labels(site, gold):
    """Three correct labels plus one incorrect one."""
    wrong = frozenset(site.find_text_nodes("A2"))
    correct = frozenset(sorted(gold)[:3])
    return correct | wrong


class TestScorer:
    def test_requires_some_component(self):
        with pytest.raises(ValueError):
            WrapperScorer(None, None)

    def test_ranks_correct_wrapper_first(self, site, gold, models):
        annotation, publication = models
        inductor = XPathInductor()
        labels = noisy_labels(site, gold)
        candidates = [
            inductor.induce(site, frozenset(sorted(gold)[:3])),  # correct rule
            inductor.induce(site, labels),  # over-general rule
        ]
        scorer = WrapperScorer(annotation, publication)
        ranked = scorer.rank(site, candidates, labels)
        assert ranked[0].extracted == gold

    def test_score_decomposition_sums(self, site, gold, models):
        annotation, publication = models
        scorer = WrapperScorer(annotation, publication)
        wrapper = XPathInductor().induce(site, frozenset(sorted(gold)[:2]))
        ranked = scorer.score_wrapper(site, wrapper, gold)
        assert ranked.score == pytest.approx(
            ranked.log_annotation + ranked.log_publication
        )

    def test_annotation_only_variant(self, site, gold, models):
        annotation, _ = models
        scorer = WrapperScorer(annotation, None)
        wrapper = XPathInductor().induce(site, gold)
        ranked = scorer.score_wrapper(site, wrapper, gold)
        assert ranked.log_publication == 0.0
        assert ranked.features is None

    def test_publication_only_variant(self, site, gold, models):
        _, publication = models
        scorer = WrapperScorer(None, publication)
        wrapper = XPathInductor().induce(site, gold)
        ranked = scorer.score_wrapper(site, wrapper, gold)
        assert ranked.log_annotation == 0.0
        assert ranked.features is not None

    def test_rank_is_deterministic(self, site, gold, models):
        annotation, publication = models
        inductor = XPathInductor()
        labels = noisy_labels(site, gold)
        candidates = [
            inductor.induce(site, frozenset({label})) for label in sorted(labels)
        ]
        scorer = WrapperScorer(annotation, publication)
        first = [rw.wrapper.rule() for rw in scorer.rank(site, candidates, labels)]
        second = [rw.wrapper.rule() for rw in scorer.rank(site, candidates, labels)]
        assert first == second

    def test_precomputed_extraction_respected(self, site, gold, models):
        annotation, _ = models
        scorer = WrapperScorer(annotation, None)
        wrapper = XPathInductor().induce(site, gold)
        ranked = scorer.score_wrapper(
            site, wrapper, gold, extracted=frozenset()
        )
        assert ranked.extracted == frozenset()
