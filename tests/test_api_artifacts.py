"""Artifact round-trips: learn -> JSON -> apply must reproduce learning.

The acceptance bar for the serializable-artifact layer: for every
inductor, ``Extractor.learn()`` followed by a JSON round-trip and
``artifact.apply(site)`` yields the *identical* extraction of a fresh
``NoiseTolerantWrapper.learn()`` run with the same models.
"""

import pytest

from repro.annotators.dictionary import DictionaryAnnotator
from repro.api import (
    SCHEMA_VERSION,
    ArtifactError,
    Extractor,
    ExtractorConfig,
    SchemaVersionError,
    WrapperArtifact,
    load_artifacts,
)
from repro.framework.ntw import NoiseTolerantWrapper
from repro.ranking.annotation import AnnotationModel
from repro.ranking.publication import PublicationModel
from repro.ranking.scorer import WrapperScorer
from repro.wrappers import wrapper_from_spec
from repro.wrappers.hlrt import HLRTWrapper
from repro.wrappers.lr import LRWrapper
from repro.wrappers.table import TableWrapper
from repro.wrappers.xpath_inductor import XPathInductor, XPathWrapper

INDUCTOR_KEYS = ("xpath", "lr", "hlrt")


@pytest.fixture(scope="module")
def gold(dealer_site):
    return frozenset(
        node_id
        for node_id in dealer_site.iter_text_node_ids()
        if dealer_site.text_node(node_id).parent.tag == "u"
    )


@pytest.fixture(scope="module")
def labels(dealer_site, dealer_names):
    # A partial dictionary plus a colliding chrome word: noisy labels.
    return DictionaryAnnotator(dealer_names[:6] + ["Contact"]).annotate(dealer_site)


@pytest.fixture(scope="module")
def publication_model(dealer_site, gold):
    return PublicationModel.fit([(dealer_site, gold)])


class TestWrapperSpecs:
    def test_xpath_spec_roundtrip(self, dealer_site, labels):
        wrapper = XPathInductor().induce(dealer_site, labels)
        rebuilt = wrapper_from_spec(wrapper.to_spec())
        assert isinstance(rebuilt, XPathWrapper)
        assert rebuilt == wrapper
        assert rebuilt.extract(dealer_site) == wrapper.extract(dealer_site)

    def test_lr_spec_roundtrip(self):
        wrapper = LRWrapper(left="<u>", right="</u>")
        assert wrapper_from_spec(wrapper.to_spec()) == wrapper

    def test_hlrt_spec_roundtrip(self):
        wrapper = HLRTWrapper(head="<table>", left="<u>", right="</u>", tail="</table>")
        assert wrapper_from_spec(wrapper.to_spec()) == wrapper

    def test_table_spec_roundtrip(self):
        for wrapper in (TableWrapper(row=2, col=None), TableWrapper(row=None, col=1)):
            assert wrapper_from_spec(wrapper.to_spec()) == wrapper

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown wrapper spec kind"):
            wrapper_from_spec({"kind": "quantum"})

    def test_specless_payload_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            wrapper_from_spec({"left": "<u>"})


class TestArtifactRoundTrip:
    @pytest.mark.parametrize("inductor_key", INDUCTOR_KEYS)
    def test_json_roundtrip_reproduces_fresh_learn(
        self, inductor_key, dealer_site, labels, publication_model
    ):
        config = ExtractorConfig(
            inductor=inductor_key, method="ntw", annotation_p=0.95, annotation_r=0.5
        )
        extractor = Extractor(config, publication_model=publication_model)
        artifact = extractor.learn(dealer_site, labels)

        # Fresh, facade-free run with the same models.
        from repro.api.registry import INDUCTORS

        scorer = WrapperScorer(
            AnnotationModel.from_rates(p=0.95, r=0.5), publication_model
        )
        fresh = NoiseTolerantWrapper(INDUCTORS.create(inductor_key), scorer).learn(
            dealer_site, labels
        )
        assert fresh.best is not None

        reloaded = WrapperArtifact.from_json(artifact.to_json())
        assert reloaded.apply(dealer_site) == fresh.extracted
        assert reloaded.rule == fresh.best.wrapper.rule()
        assert reloaded.inductor == inductor_key
        assert reloaded.method == "ntw"

    @pytest.mark.parametrize("inductor_key", INDUCTOR_KEYS)
    def test_save_load_file(
        self, inductor_key, dealer_site, labels, publication_model, tmp_path
    ):
        extractor = Extractor(
            ExtractorConfig(inductor=inductor_key, method="ntw"),
            publication_model=publication_model,
        )
        artifact = extractor.learn(dealer_site, labels)
        path = artifact.save(tmp_path / f"{inductor_key}.json")
        reloaded = WrapperArtifact.load(path)
        assert reloaded.apply(dealer_site) == artifact.apply(dealer_site)
        assert reloaded.provenance == artifact.provenance
        assert reloaded.score == artifact.score

    def test_load_artifacts_directory(
        self, dealer_site, labels, publication_model, tmp_path
    ):
        extractor = Extractor(
            ExtractorConfig(method="ntw"), publication_model=publication_model
        )
        artifact = extractor.learn(dealer_site, labels, site_name="acme")
        artifact.save(tmp_path / "acme.json")
        loaded = load_artifacts(tmp_path)
        assert set(loaded) == {"acme"}
        assert loaded["acme"].apply(dealer_site) == artifact.apply(dealer_site)

    def test_load_artifacts_rejects_duplicate_site(
        self, dealer_site, labels, publication_model, tmp_path
    ):
        extractor = Extractor(
            ExtractorConfig(method="ntw"), publication_model=publication_model
        )
        artifact = extractor.learn(dealer_site, labels, site_name="acme")
        artifact.save(tmp_path / "acme--name.json")
        artifact.save(tmp_path / "acme--zipcode.json")
        with pytest.raises(ArtifactError, match="claim site 'acme'"):
            load_artifacts(tmp_path)


class TestArtifactSchema:
    def _payload(self, dealer_site, labels):
        wrapper = XPathInductor().induce(dealer_site, labels)
        return WrapperArtifact(
            wrapper_spec=wrapper.to_spec(), rule=wrapper.rule()
        ).to_dict()

    def test_version_mismatch_rejected(self, dealer_site, labels):
        payload = self._payload(dealer_site, labels)
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError, match="not supported"):
            WrapperArtifact.from_dict(payload)

    def test_missing_version_rejected(self, dealer_site, labels):
        payload = self._payload(dealer_site, labels)
        del payload["schema_version"]
        with pytest.raises(SchemaVersionError):
            WrapperArtifact.from_dict(payload)

    def test_non_integer_version_rejected(self, dealer_site, labels):
        payload = self._payload(dealer_site, labels)
        payload["schema_version"] = "2.1"
        with pytest.raises(SchemaVersionError):
            WrapperArtifact.from_dict(payload)

    def test_v1_artifact_loads_and_applies(self, dealer_site, labels):
        """Backward compat: artifacts written before alternates/baseline
        (schema v1) load and apply unchanged."""
        payload = self._payload(dealer_site, labels)
        del payload["alternates"]
        del payload["baseline"]
        payload["schema_version"] = 1
        artifact = WrapperArtifact.from_dict(payload)
        assert artifact.schema_version == 1
        assert artifact.alternates == [] and artifact.baseline == {}
        wrapper = XPathInductor().induce(dealer_site, labels)
        assert artifact.apply(dealer_site) == wrapper.extract(dealer_site)

    def test_forward_compatible_extra_keys_roundtrip(
        self, dealer_site, labels
    ):
        """Minor additions are plain extra keys: accepted at load and
        preserved verbatim through a load/save round-trip."""
        payload = self._payload(dealer_site, labels)
        payload["future_minor_key"] = {"nested": [1, 2]}
        artifact = WrapperArtifact.from_dict(payload)
        assert artifact.extras == {"future_minor_key": {"nested": [1, 2]}}
        rebuilt = WrapperArtifact.from_json(artifact.to_json())
        assert rebuilt.extras == artifact.extras
        assert rebuilt.to_dict()["future_minor_key"] == {"nested": [1, 2]}

    def test_extras_never_shadow_known_fields(self, dealer_site, labels):
        payload = self._payload(dealer_site, labels)
        artifact = WrapperArtifact.from_dict(payload)
        assert artifact.extras == {}
        assert "extras" not in artifact.to_dict()

    def test_malformed_alternates_rejected(self, dealer_site, labels):
        payload = self._payload(dealer_site, labels)
        payload["alternates"] = [{"rule": "orphan, no spec"}]
        with pytest.raises(ArtifactError, match="alternate 0"):
            WrapperArtifact.from_dict(payload)
        payload["alternates"] = "not-a-list"
        with pytest.raises(ArtifactError, match="must be a list"):
            WrapperArtifact.from_dict(payload)

    def test_unknown_alternate_kind_rejected_at_load(
        self, dealer_site, labels
    ):
        payload = self._payload(dealer_site, labels)
        payload["alternates"] = [
            {"wrapper_spec": {"kind": "quantum"}, "rule": "?", "score": {}}
        ]
        with pytest.raises(ValueError, match="unknown wrapper spec kind"):
            WrapperArtifact.from_dict(payload)


class TestLifecycleKit:
    """Learned artifacts carry their own fallback ladder and baseline."""

    def test_ntw_artifact_carries_alternates_and_baseline(
        self, dealer_site, labels, publication_model
    ):
        extractor = Extractor(
            ExtractorConfig(method="ntw", keep_alternates=3),
            publication_model=publication_model,
        )
        artifact = extractor.learn(dealer_site, labels)
        assert 0 < len(artifact.alternates) <= 3
        for alternate in artifact.alternates:
            assert alternate["rule"]
            assert "total" in alternate["score"]
        rebuilt = artifact.alternate_wrappers()
        assert [w.rule() for w in rebuilt] == [
            a["rule"] for a in artifact.alternates
        ]
        baseline = artifact.health_baseline()
        assert baseline is not None and baseline.pages == len(dealer_site)
        assert baseline.mean_per_page > 0

    def test_keep_alternates_zero_disables_ladder(
        self, dealer_site, labels, publication_model
    ):
        extractor = Extractor(
            ExtractorConfig(method="ntw", keep_alternates=0),
            publication_model=publication_model,
        )
        artifact = extractor.learn(dealer_site, labels)
        assert artifact.alternates == []
        assert artifact.baseline  # the baseline is always measured

    def test_naive_artifact_has_baseline_but_no_ladder(
        self, dealer_site, labels
    ):
        extractor = Extractor(ExtractorConfig(method="naive"))
        artifact = extractor.learn(dealer_site, labels)
        assert artifact.alternates == []
        assert artifact.health_baseline() is not None

    def test_negative_keep_alternates_rejected(self):
        with pytest.raises(ValueError, match="keep_alternates"):
            ExtractorConfig(keep_alternates=-1).validate()

    def test_alternates_survive_json_roundtrip(
        self, dealer_site, labels, publication_model
    ):
        extractor = Extractor(
            ExtractorConfig(method="ntw"), publication_model=publication_model
        )
        artifact = extractor.learn(dealer_site, labels)
        rebuilt = WrapperArtifact.from_json(artifact.to_json())
        assert rebuilt.alternates == artifact.alternates
        assert rebuilt.baseline == artifact.baseline

    def test_missing_spec_rejected(self):
        with pytest.raises(ArtifactError, match="wrapper_spec"):
            WrapperArtifact.from_dict({"schema_version": SCHEMA_VERSION})

    def test_invalid_json_rejected(self):
        with pytest.raises(ArtifactError, match="not valid JSON"):
            WrapperArtifact.from_json("{nope")

    def test_unknown_spec_kind_rejected_at_load(self):
        with pytest.raises(ValueError, match="unknown wrapper spec kind"):
            WrapperArtifact.from_dict(
                {
                    "schema_version": SCHEMA_VERSION,
                    "wrapper_spec": {"kind": "quantum"},
                    "rule": "?",
                }
            )


class TestSerializationIsolation:
    """to_dict/from_dict never alias live mutable state (asdict parity)."""

    def test_to_dict_is_a_deep_copy(self, dealer_site, labels):
        wrapper = XPathInductor().induce(dealer_site, labels)
        artifact = WrapperArtifact(
            wrapper_spec=wrapper.to_spec(),
            rule=wrapper.rule(),
            provenance={"config": {"inductor": "xpath"}},
        )
        payload = artifact.to_dict()
        payload["provenance"]["config"]["inductor"] = "tampered"
        payload["wrapper_spec"]["features"].append([1, "tag", "evil"])
        assert artifact.provenance["config"]["inductor"] == "xpath"
        assert artifact.wrapper_spec == wrapper.to_spec()

    def test_from_dict_does_not_alias_the_payload(self, dealer_site, labels):
        wrapper = XPathInductor().induce(dealer_site, labels)
        payload = WrapperArtifact(
            wrapper_spec=wrapper.to_spec(), rule=wrapper.rule()
        ).to_dict()
        artifact = WrapperArtifact.from_dict(payload)
        payload["wrapper_spec"]["features"].append([1, "tag", "evil"])
        payload["score"]["total"] = -1
        assert artifact.wrapper_spec == wrapper.to_spec()
        assert artifact.score == {}
