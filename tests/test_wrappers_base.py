"""Tests for the generic wrapper/inductor machinery in ``wrappers.base``."""

import pytest

from repro.wrappers.base import extract_by_features
from repro.wrappers.table import Grid, TableInductor


@pytest.fixture()
def grid():
    return Grid(3, 3)


@pytest.fixture()
def inductor():
    return TableInductor()


class TestSharedFeatures:
    def test_single_label_keeps_all_features(self, grid, inductor):
        cell = grid.cell(1, 2)
        assert inductor.shared_features(grid, frozenset({cell})) == {
            "row": 1,
            "col": 2,
        }

    def test_intersection_drops_disagreements(self, grid, inductor):
        labels = frozenset({grid.cell(0, 1), grid.cell(2, 1)})
        assert inductor.shared_features(grid, labels) == {"col": 1}

    def test_empty_intersection(self, grid, inductor):
        labels = frozenset({grid.cell(0, 0), grid.cell(1, 1)})
        assert inductor.shared_features(grid, labels) == {}

    def test_order_independent(self, grid, inductor):
        a = frozenset({grid.cell(0, 0), grid.cell(0, 2), grid.cell(0, 1)})
        assert inductor.shared_features(grid, a) == {"row": 0}


class TestMatches:
    def test_superset_matches(self, grid, inductor):
        assert inductor.matches(grid, grid.cell(1, 1), {"row": 1})

    def test_disagreement_rejects(self, grid, inductor):
        assert not inductor.matches(grid, grid.cell(1, 1), {"row": 2})

    def test_empty_constraint_matches_all(self, grid, inductor):
        for cell in grid.all_cells():
            assert inductor.matches(grid, cell, {})


class TestExtractByFeatures:
    def test_column_constraint(self, grid, inductor):
        result = extract_by_features(
            inductor, grid, {"col": 0}, grid.all_cells()
        )
        assert result == frozenset(grid.cell(r, 0) for r in range(3))

    def test_restricted_candidate_universe(self, grid, inductor):
        candidates = [grid.cell(0, 0), grid.cell(0, 1)]
        result = extract_by_features(inductor, grid, {"row": 0}, candidates)
        assert result == frozenset(candidates)


class TestClosureHelper:
    def test_closure_intersects_with_universe(self, grid, inductor):
        labels = frozenset({grid.cell(0, 0), grid.cell(1, 0)})
        universe = labels | {grid.cell(2, 0)}
        closure = inductor.closure(grid, labels, universe)
        # phi generalizes to the whole column; the closure keeps only
        # universe members.
        assert closure == universe

    def test_closure_of_closed_set_is_itself(self, grid, inductor):
        labels = frozenset({grid.cell(0, 0)})
        assert inductor.closure(grid, labels, labels) == labels


class TestInduceGuards:
    def test_empty_labels_rejected(self, grid, inductor):
        with pytest.raises(ValueError):
            inductor.induce(grid, frozenset())

    def test_value_defaults_to_feature_map(self, grid, inductor):
        cell = grid.cell(2, 1)
        assert inductor.value(grid, cell, "row") == 2
        assert inductor.value(grid, cell, "missing") is None
