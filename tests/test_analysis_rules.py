"""Per-rule fixture tests: one firing and one quiet fixture per rule.

Each fixture is a minimal in-memory module capturing the exact shape
the rule exists to catch (or the legitimate idiom it must not flag),
run through :meth:`LintEngine.check_source` with injected cross-module
context so no real files are parsed.
"""

import textwrap

from repro.analysis.engine import LintEngine
from repro.analysis.project import Project
from repro.analysis.rules import (
    ALL_RULES,
    FaultPointRule,
    FrozenMutationRule,
    PickleSafetyRule,
    ProtocolRule,
    QueueLockRule,
    ResourceLifecycleRule,
    SilentExceptRule,
    TelemetryConsistencyRule,
)

PROJECT = Project(
    fault_points=("worker.crash", "conn.drop"),
    fault_constants={"WORKER_CRASH": "worker.crash", "CONN_DROP": "conn.drop"},
    error_codes=("deadline", "draining"),
    response_keys=("id", "ok", "op", "error", "code"),
    metric_names=("server.requests", "worker.jobs"),
    metric_constants={
        "SERVER_REQUESTS": "server.requests",
        "WORKER_JOBS": "worker.jobs",
    },
)


def lint(rule, source, path="repro/mod.py"):
    engine = LintEngine(rules=(rule,), project=PROJECT)
    return engine.check_source(textwrap.dedent(source), path)


class TestPickleSafety:
    def test_fires_on_pickled_lock_and_cache(self):
        findings = lint(
            PickleSafetyRule,
            """
            import threading

            class Carrier:
                def __init__(self):
                    self.data = 1
                    self._lock = threading.Lock()
                    self.xpath_cache = {}

                def __getstate__(self):
                    return dict(self.__dict__)
            """,
        )
        messages = [f.message for f in findings]
        assert len(findings) == 2
        assert any("_lock" in m and "live Lock()" in m for m in messages)
        assert any("xpath_cache" in m for m in messages)

    def test_quiet_when_state_excludes_runtime_attrs(self):
        findings = lint(
            PickleSafetyRule,
            """
            import threading

            class Carrier:
                __slots__ = ("data", "_lock", "xpath_cache")

                def __init__(self):
                    self.data = 1
                    self._lock = threading.Lock()
                    self.xpath_cache = {}

                def __getstate__(self):
                    state = {
                        slot: getattr(self, slot)
                        for slot in self.__slots__
                        if slot not in ("_lock", "xpath_cache")
                    }
                    return state
            """,
        )
        assert findings == []

    def test_quiet_when_popped_from_state_dict(self):
        findings = lint(
            PickleSafetyRule,
            """
            class Carrier:
                def __init__(self):
                    self.data = 1
                    self.result_memo = {}

                def __getstate__(self):
                    state = dict(self.__dict__)
                    state.pop("result_memo", None)
                    return state
            """,
        )
        assert findings == []


class TestQueueLockDiscipline:
    def test_fires_on_blocking_get_and_put_under_lock(self):
        findings = lint(
            QueueLockRule,
            """
            def pump(self):
                with self._lock:
                    item = self._inbox.get()
                    self._outbox.put(item)
            """,
        )
        assert len(findings) == 2
        assert "Queue.get()" in findings[0].message
        assert "Queue.put()" in findings[1].message

    def test_fires_on_unbounded_join_under_lock(self):
        findings = lint(
            QueueLockRule,
            """
            def reap(self):
                with self._mutex:
                    self._reader_thread.join()
            """,
        )
        assert len(findings) == 1
        assert "join()" in findings[0].message

    def test_quiet_for_nonblocking_variants_and_outside_lock(self):
        findings = lint(
            QueueLockRule,
            """
            def pump(self):
                with self._lock:
                    item = self._inbox.get(block=False)
                    self._outbox.put(item, block=False)
                work = self._inbox.get()
                self._outbox.put(work)
            """,
        )
        assert findings == []


class TestFaultPointIntegrity:
    def test_fires_on_undeclared_point_literal(self):
        findings = lint(
            FaultPointRule,
            """
            from repro import faults

            def step():
                faults.fire("worker.explode")
            """,
        )
        assert len(findings) == 1
        assert "worker.explode" in findings[0].message
        assert "worker.crash" in findings[0].message  # lists declared points

    def test_fires_on_undeclared_constant(self):
        findings = lint(
            FaultPointRule,
            """
            def arm(plan):
                plan.add(WORKER_EXPLODE, rate=1.0)
            """,
        )
        assert len(findings) == 1
        assert "WORKER_EXPLODE" in findings[0].message

    def test_quiet_for_declared_points_and_constants(self):
        findings = lint(
            FaultPointRule,
            """
            from repro import faults

            def step(plan):
                faults.fire("worker.crash")
                plan.add(CONN_DROP, rate=0.5)
                plan.fire("conn.drop", context="c1")
            """,
        )
        assert findings == []

    def test_quiet_for_unrelated_fire_receivers(self):
        findings = lint(
            FaultPointRule,
            """
            def shoot(cannon):
                cannon.fire("broadside")
            """,
        )
        assert findings == []


class TestTelemetryConsistency:
    def test_fires_on_undeclared_name_literal(self):
        findings = lint(
            TelemetryConsistencyRule,
            """
            from repro import telemetry

            def handle(self):
                telemetry.counter("server.reqests").inc()
            """,
        )
        assert len(findings) == 1
        assert "server.reqests" in findings[0].message

    def test_fires_on_undeclared_constant(self):
        findings = lint(
            TelemetryConsistencyRule,
            """
            def observe(metrics, value):
                metrics.histogram(SERVER_LATENCY_X).observe(value)
            """,
        )
        assert len(findings) == 1
        assert "SERVER_LATENCY_X" in findings[0].message

    def test_quiet_for_declared_names_and_constants(self):
        findings = lint(
            TelemetryConsistencyRule,
            """
            from repro import telemetry
            from repro.telemetry import counter
            from repro.telemetry import names as metric_names

            def handle(self, metrics):
                telemetry.counter("server.requests").inc(op="apply")
                counter(metric_names.WORKER_JOBS).inc()
                metrics.gauge("worker.jobs").set(3)
            """,
        )
        assert findings == []

    def test_quiet_for_unrelated_receivers(self):
        findings = lint(
            TelemetryConsistencyRule,
            """
            def tally(collections, sketch):
                collections.counter("whatever")
                sketch.histogram("of.pixels")
            """,
        )
        assert findings == []


class TestProtocolConsistency:
    def test_server_fires_on_unknown_key_and_code(self):
        findings = lint(
            ProtocolRule,
            """
            def answer(client, request):
                client.send({"id": 1, "ok": False, "bogus": 2})
                client.send({"id": 1, "ok": False, "code": "explode"})
            """,
            path="repro/service/server.py",
        )
        assert len(findings) == 2
        assert "'bogus'" in findings[0].message
        assert "'explode'" in findings[1].message

    def test_server_quiet_for_spec_conforming_frames(self):
        findings = lint(
            ProtocolRule,
            """
            def answer(client, request):
                client.send({"id": 1, "ok": True, "op": "ping"})
                client.send(
                    {"id": 1, "ok": False, "error": "x", "code": "deadline"}
                )
            """,
            path="repro/service/server.py",
        )
        assert findings == []

    def test_client_fires_on_impossible_code_comparison(self):
        findings = lint(
            ProtocolRule,
            """
            def classify(record):
                if record.get("code") == "explodey":
                    return "?"
            """,
            path="repro/service/client.py",
        )
        assert len(findings) == 1
        assert "never match" in findings[0].message

    def test_client_quiet_for_spec_codes_and_keys(self):
        findings = lint(
            ProtocolRule,
            """
            def classify(record):
                if record.get("code") == "draining":
                    return record.get("error")
            """,
            path="repro/service/client.py",
        )
        assert findings == []

    def test_other_modules_not_checked(self):
        findings = lint(
            ProtocolRule,
            """
            def elsewhere(record):
                if record.get("code") == "explodey":
                    return {"id": 1, "ok": True, "bogus": 2}
            """,
            path="repro/api/other.py",
        )
        assert findings == []


class TestFrozenMutation:
    def test_fires_on_mutation_outside_builders(self):
        findings = lint(
            FrozenMutationRule,
            """
            def patch(site, page):
                site.pages = []
                page.attrs["id"] = "x"
                site.pages.append(1)
            """,
            path="repro/api/patcher.py",
        )
        assert len(findings) == 3
        assert "frozen 'site'" in findings[0].message

    def test_quiet_in_builder_modules(self):
        source = """
        def build(site, page):
            site.pages = []
            site.pages.append(page)
        """
        assert lint(FrozenMutationRule, source, "repro/htmldom/treebuilder.py") == []
        assert lint(FrozenMutationRule, source, "repro/site.py") == []

    def test_quiet_for_non_frozen_locals(self):
        findings = lint(
            FrozenMutationRule,
            """
            def accumulate(rows):
                rows.totals = {}
                rows.cells.append(1)
            """,
            path="repro/api/patcher.py",
        )
        assert findings == []


class TestSilentExcept:
    def test_fires_on_pass_in_loopish_function(self):
        findings = lint(
            SilentExceptRule,
            """
            def read_loop(self):
                while True:
                    try:
                        self.step()
                    except Exception:
                        pass
            """,
        )
        assert len(findings) == 1
        assert "read_loop()" in findings[0].message

    def test_fires_on_continue_inside_any_loop(self):
        findings = lint(
            SilentExceptRule,
            """
            def harvest(self):
                for item in self.items:
                    try:
                        self.consume(item)
                    except ValueError:
                        continue
            """,
        )
        assert len(findings) == 1

    def test_quiet_when_handler_leaves_a_trace(self):
        findings = lint(
            SilentExceptRule,
            """
            def read_loop(self):
                while True:
                    try:
                        self.step()
                    except Exception:
                        self.errors += 1
            """,
        )
        assert findings == []

    def test_quiet_for_control_flow_exceptions(self):
        findings = lint(
            SilentExceptRule,
            """
            import queue

            def drain_loop(self):
                while True:
                    try:
                        self.advance()
                    except queue.Empty:
                        continue
                    except KeyboardInterrupt:
                        pass
            """,
        )
        assert findings == []

    def test_quiet_outside_loops_and_loopish_functions(self):
        findings = lint(
            SilentExceptRule,
            """
            def setup(self):
                try:
                    self.optional_feature()
                except ImportError:
                    pass
            """,
        )
        assert findings == []


class TestResourceLifecycle:
    def test_fires_on_local_socket_without_close_path(self):
        findings = lint(
            ResourceLifecycleRule,
            """
            import socket

            def probe(addr):
                sock = socket.socket()
                sock.connect(addr)
            """,
            path="repro/service/probe.py",
        )
        assert len(findings) == 1
        assert "'sock'" in findings[0].message

    def test_fires_on_self_attr_without_close_path(self):
        findings = lint(
            ResourceLifecycleRule,
            """
            import socket

            class Conn:
                def __init__(self):
                    self.sock = socket.socket()
            """,
            path="repro/service/conn.py",
        )
        assert len(findings) == 1
        assert "self.sock" in findings[0].message

    def test_quiet_when_closed_returned_or_owned(self):
        findings = lint(
            ResourceLifecycleRule,
            """
            import socket

            def probe(addr):
                sock = socket.socket()
                try:
                    sock.connect(addr)
                finally:
                    sock.close()

            def make(addr):
                sock = socket.socket()
                return sock

            class Conn:
                def __init__(self):
                    self.sock = socket.socket()

                def close(self):
                    self.sock.close()
            """,
            path="repro/service/conn.py",
        )
        assert findings == []

    def test_quiet_outside_service_and_arena(self):
        findings = lint(
            ResourceLifecycleRule,
            """
            import socket

            def probe(addr):
                sock = socket.socket()
                sock.connect(addr)
            """,
            path="repro/api/probe.py",
        )
        assert findings == []


def test_every_shipped_rule_has_fixture_coverage():
    """Each rule in ALL_RULES is exercised above (fail on silent gaps
    when a new rule ships without fixtures)."""
    covered = {
        PickleSafetyRule,
        QueueLockRule,
        FaultPointRule,
        TelemetryConsistencyRule,
        ProtocolRule,
        FrozenMutationRule,
        SilentExceptRule,
        ResourceLifecycleRule,
    }
    assert set(ALL_RULES) == covered


def test_rule_metadata_complete():
    for rule in ALL_RULES:
        assert rule.id and rule.name and rule.hint
    assert len({rule.id for rule in ALL_RULES}) == len(ALL_RULES)
