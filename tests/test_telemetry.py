"""repro.telemetry unit coverage: instruments, bucket math, merge
algebra, exposition, tracing, and worker-delta piggybacking."""

import json
import math

import pytest

from repro import faults, telemetry
from repro.api import WorkerPool
from repro.site import Site
from repro.telemetry import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    TelemetryError,
    TraceRecorder,
    quantile_from,
    render_prometheus,
    tile,
    validate_name,
)
from repro.telemetry import names as metric_names


@pytest.fixture(autouse=True)
def fresh_registry(monkeypatch):
    """Each test gets an isolated process-global registry."""
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    telemetry.set_registry(None)
    yield
    telemetry.set_registry(None)


class TestNames:
    def test_catalogue_is_described_and_dotted(self):
        assert len(metric_names.NAMES) >= 30
        for name in metric_names.NAMES:
            assert "." in name
            assert metric_names.NAME_DESCRIPTIONS[name].strip()

    def test_validate_name_accepts_declared(self):
        assert validate_name("server.requests") == "server.requests"

    def test_validate_name_rejects_undeclared(self):
        with pytest.raises(TelemetryError, match="undeclared metric name"):
            validate_name("server.reqests")

    def test_registry_rejects_undeclared_even_when_disabled(self):
        registry = MetricsRegistry(enabled=False)
        with pytest.raises(TelemetryError):
            registry.counter("not.a.metric")


class TestCounter:
    def test_inc_and_labels(self):
        counter = telemetry.counter(metric_names.SERVER_REQUESTS)
        counter.inc(op="apply")
        counter.inc(2, op="apply")
        counter.inc(op="learn")
        assert counter.value(op="apply") == 3
        assert counter.value(op="learn") == 1
        assert counter.total() == 4

    def test_same_name_returns_same_family(self):
        a = telemetry.counter(metric_names.SERVER_REQUESTS)
        b = telemetry.counter(metric_names.SERVER_REQUESTS)
        assert a is b


class TestGauge:
    def test_set_overwrites(self):
        gauge = telemetry.gauge(metric_names.SERVER_REQUESTS)
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value() == 1.5


class TestHistogramBuckets:
    def test_bounds_are_log_scale_and_cover_microseconds_to_minutes(self):
        assert BUCKET_BOUNDS[0] == pytest.approx(1e-6)
        assert BUCKET_BOUNDS[-1] > 60.0
        ratios = [
            BUCKET_BOUNDS[i + 1] / BUCKET_BOUNDS[i]
            for i in range(len(BUCKET_BOUNDS) - 1)
        ]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_observations_land_in_the_tightest_bucket(self):
        histogram = telemetry.histogram(metric_names.SERVER_APPLY_LATENCY)
        histogram.observe(0.5e-6)  # below the first bound
        histogram.observe(1e-6)  # exactly on a bound counts under it
        histogram.observe(3e-6)  # between bounds: next bound up
        histogram.observe(1e9)  # beyond every bound: overflow bucket
        series = histogram._series[""]
        buckets = series[2]
        assert buckets[0] == 2
        assert buckets[2] == 1  # 3e-6 <= 4e-6
        assert buckets[-1] == 1
        assert series[0] == 4
        assert series[1] == pytest.approx(0.5e-6 + 1e-6 + 3e-6 + 1e9)

    def test_quantiles_return_bucket_upper_bounds(self):
        histogram = telemetry.histogram(metric_names.SERVER_APPLY_LATENCY)
        for _ in range(99):
            histogram.observe(0.010)  # -> bucket bound 0.016384
        histogram.observe(10.0)
        count, buckets = histogram._series[""][0], histogram._series[""][2]
        p50 = quantile_from(buckets, count, 0.5)
        p99 = quantile_from(buckets, count, 0.99)
        assert p50 == pytest.approx(0.016384)
        assert 0.010 <= p50 < 0.033
        assert p99 == pytest.approx(0.016384)
        assert quantile_from(buckets, count, 1.0) > 10.0

    def test_quantile_of_empty_series_is_zero(self):
        assert quantile_from([0] * (len(BUCKET_BOUNDS) + 1), 0, 0.5) == 0.0


class TestMergeAlgebra:
    @staticmethod
    def _registry(observations):
        registry = MetricsRegistry()
        for value in observations:
            registry.counter(metric_names.WORKER_JOBS).inc()
            registry.histogram(metric_names.WORKER_EXTRACT_S).observe(value)
            registry.gauge(metric_names.SERVER_REQUESTS).set(value)
        return registry

    def test_merge_is_associative_and_commutative_for_counters(self):
        parts = [[0.001, 0.2], [0.5], [3.0, 7e-6, 0.04]]
        left = MetricsRegistry()
        for part in parts:
            left.merge(self._registry(part).snapshot())
        right = MetricsRegistry()
        for part in reversed(parts):
            right.merge(self._registry(part).snapshot())
        a, b = left.snapshot(), right.snapshot()
        # Gauges are last-writer-wins (not order-free); counters and
        # histogram series must agree exactly under any merge order.
        a.pop(metric_names.SERVER_REQUESTS)
        b.pop(metric_names.SERVER_REQUESTS)
        assert a == b
        jobs = a[metric_names.WORKER_JOBS]["values"][""]
        assert jobs == 6

    def test_drain_then_merge_reconstructs_the_original(self):
        source = self._registry([0.001, 0.2, 5.0])
        expected = source.snapshot()
        delta = source.drain()
        assert source.snapshot() == {}
        sink = MetricsRegistry()
        sink.merge(delta)
        assert sink.snapshot() == expected

    def test_merge_tolerates_empty_delta(self):
        registry = MetricsRegistry()
        registry.merge({})
        assert registry.snapshot() == {}


class TestDisabledRegistry:
    def test_env_switch_disables_collection(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "off")
        registry = telemetry.set_registry(None)
        registry.counter(metric_names.SERVER_REQUESTS).inc()
        registry.histogram(metric_names.SERVER_APPLY_LATENCY).observe(1.0)
        assert registry.snapshot() == {}

    def test_disabled_null_instrument_absorbs_every_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "0")
        registry = telemetry.set_registry(None)
        instrument = registry.counter(metric_names.SERVER_REQUESTS)
        instrument.inc(5, op="apply")
        assert instrument.value(op="apply") == 0


class TestPrometheusRendering:
    def test_counter_and_histogram_exposition(self):
        telemetry.counter(metric_names.SERVER_REQUESTS).inc(op="apply")
        telemetry.histogram(metric_names.SERVER_APPLY_LATENCY).observe(0.01)
        text = render_prometheus(telemetry.get_registry().snapshot())
        assert '# TYPE repro_server_requests counter' in text
        assert 'repro_server_requests{op="apply"} 1' in text
        assert "# TYPE repro_server_apply_latency_s histogram" in text
        assert 'repro_server_apply_latency_s_bucket{le="+Inf"} 1' in text
        assert "repro_server_apply_latency_s_count 1" in text
        assert "# HELP repro_server_requests" in text

    def test_bucket_series_is_cumulative(self):
        histogram = telemetry.histogram(metric_names.SERVER_APPLY_LATENCY)
        histogram.observe(1e-6)
        histogram.observe(1.0)
        text = render_prometheus(telemetry.get_registry().snapshot())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if "_bucket{" in line
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 2


class TestTiling:
    def test_stages_tile_the_wall_clock_exactly(self):
        stages = tile(
            10.0,
            [
                ("admission_wait", 10.1),
                ("resolve", 10.3),
                ("queue_wait", None),  # unstamped stages are skipped
                ("extract", 10.9),
                ("result_flush", 11.0),
            ],
        )
        assert [name for name, _, _ in stages] == [
            "admission_wait",
            "resolve",
            "extract",
            "result_flush",
        ]
        assert sum(duration for _, _, duration in stages) == pytest.approx(
            1.0
        )

    def test_out_of_order_stamps_clamp_to_zero(self):
        stages = tile(0.0, [("a", 2.0), ("b", 1.0), ("c", 3.0)])
        durations = {name: duration for name, _, duration in stages}
        assert durations["b"] == 0.0
        assert sum(durations.values()) == pytest.approx(3.0)


class TestTraceRecorder:
    def test_writes_ndjson_and_ranked_slow_events(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        recorder = TraceRecorder(str(path), slow_keep=2)
        for index, total in enumerate([0.01, 0.5, 0.02, 0.9]):
            recorder.record(
                request_id=index,
                op="apply",
                site=f"shop-{index}",
                ok=True,
                start=100.0,
                stages=[("extract", 100.0, total)],
                total_s=total,
            )
        recorder.close()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        traces = [e for e in events if e["event"] == "trace"]
        slow = [e for e in events if e["event"] == "slow"]
        assert len(traces) == 4
        assert [e["rank"] for e in slow] == [1, 2]
        assert slow[0]["total_s"] == pytest.approx(0.9)
        assert slow[1]["total_s"] == pytest.approx(0.5)
        stage = traces[0]["stages"][0]
        assert stage["stage"] == "extract"
        assert {"id", "op", "site", "ok", "total_s", "ts"} <= set(traces[0])

    def test_sampling_drops_file_writes_but_keeps_slowest(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        recorder = TraceRecorder(
            str(path), sample_rate=0.0, seed=7, slow_keep=3
        )
        for index in range(10):
            recorder.record(
                request_id=index,
                op="apply",
                site="shop",
                ok=True,
                start=0.0,
                stages=[],
                total_s=index / 10.0,
            )
        assert recorder.dropped == 10
        recorder.close()
        events = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert [e["event"] for e in events] == ["slow"] * 3
        assert [e["total_s"] for e in events] == [0.9, 0.8, 0.7]


def _page(name: str) -> str:
    return f"<div><table><tr><td><u>{name}</u></td></tr></table></div>"


@pytest.fixture(scope="module")
def artifact():
    from repro.annotators.dictionary import DictionaryAnnotator
    from repro.api import Extractor, ExtractorConfig

    site = Site.from_html("shop", [_page("ALPHA")])
    labels = DictionaryAnnotator(["ALPHA"]).annotate(site)
    extractor = Extractor(ExtractorConfig(inductor="xpath", method="naive"))
    return extractor.learn(site, labels, site_name="shop")


class TestWorkerDeltaMerge:
    def test_pool_apply_merges_worker_metrics_into_parent(self, artifact):
        sites = [(f"shop-{i}", [_page("ALPHA")]) for i in range(6)]
        with WorkerPool(max_workers=2) as pool:
            result = pool.apply([artifact] * len(sites), sites)
        assert not result.failures
        registry = telemetry.get_registry()
        assert registry.counter(metric_names.WORKER_JOBS).total() == 6
        assert registry.counter(metric_names.WORKER_PAGES).total() == 6
        assert registry.counter(metric_names.SCHEDULER_JOBS).total() == 6
        hydrate = registry.histogram(metric_names.WORKER_HYDRATE_S)
        extract = registry.histogram(metric_names.WORKER_EXTRACT_S)
        assert hydrate.count() == 6
        assert extract.count() == 6
        assert math.isfinite(extract._series[""][1])

    def test_inline_pool_counts_without_ipc(self, artifact):
        with WorkerPool(max_workers=1) as pool:
            result = pool.apply([artifact], [("shop", [_page("ALPHA")])])
        assert not result.failures
        registry = telemetry.get_registry()
        assert registry.counter(metric_names.WORKER_JOBS).total() == 1

    def test_deltas_survive_worker_crash_and_respawn(self, artifact):
        faults.clear()
        plan = faults.FaultPlan(seed=1)
        plan.add(faults.WORKER_CRASH, at=[1], match="w0:")
        faults.install(plan)
        try:
            sites = [(f"shop-{i}", [_page("ALPHA")]) for i in range(8)]
            with WorkerPool(
                max_workers=2, chunksize=1, respawn_workers=True
            ) as pool:
                result = pool.apply([artifact] * len(sites), sites)
                assert not result.failures
                assert pool.stats.worker_deaths == 1
            registry = telemetry.get_registry()
            # Every completed job's delta reached the parent; the job
            # killed mid-run may or may not have flushed, so the total
            # is bounded, not exact.
            jobs = registry.counter(metric_names.WORKER_JOBS).total()
            assert 8 <= jobs <= 9
            deaths = registry.counter(metric_names.SCHEDULER_WORKER_DEATHS)
            assert deaths.total() == 1
            respawns = registry.counter(metric_names.SCHEDULER_RESPAWNS)
            assert respawns.total() == 1
        finally:
            faults.clear()
