"""Tests for list-structure features: edit distance, LCS, schema size."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.htmldom.serializer import TEXT_TOKEN
from repro.ranking.alignment import (
    longest_common_substring,
    sample_pairs,
    schema_size,
    token_edit_distance,
)

tokens = st.lists(st.sampled_from(["tr", "td", "u", "br", TEXT_TOKEN]), max_size=25)


class TestEditDistance:
    def test_identical(self):
        assert token_edit_distance(("a", "b"), ("a", "b")) == 0

    def test_empty_vs_nonempty(self):
        assert token_edit_distance((), ("a", "b", "c")) == 3

    def test_both_empty(self):
        assert token_edit_distance((), ()) == 0

    def test_substitution(self):
        assert token_edit_distance(("a", "b", "c"), ("a", "x", "c")) == 1

    def test_insertion(self):
        assert token_edit_distance(("a", "c"), ("a", "b", "c")) == 1

    def test_classic_example(self):
        assert token_edit_distance(tuple("kitten"), tuple("sitting")) == 3

    def test_cap_returns_cap(self):
        assert token_edit_distance(tuple("aaaa"), tuple("bbbb"), cap=2) == 2

    def test_cap_no_effect_below(self):
        assert token_edit_distance(tuple("ab"), tuple("ax"), cap=10) == 1

    def test_cap_on_length_difference(self):
        assert token_edit_distance(tuple("a" * 50), (), cap=5) == 5

    @settings(max_examples=60, deadline=None)
    @given(tokens, tokens)
    def test_symmetry(self, a, b):
        assert token_edit_distance(tuple(a), tuple(b)) == token_edit_distance(
            tuple(b), tuple(a)
        )

    @settings(max_examples=60, deadline=None)
    @given(tokens)
    def test_identity(self, a):
        assert token_edit_distance(tuple(a), tuple(a)) == 0

    @settings(max_examples=40, deadline=None)
    @given(tokens, tokens, tokens)
    def test_triangle_inequality(self, a, b, c):
        ab = token_edit_distance(tuple(a), tuple(b))
        bc = token_edit_distance(tuple(b), tuple(c))
        ac = token_edit_distance(tuple(a), tuple(c))
        assert ac <= ab + bc

    @settings(max_examples=60, deadline=None)
    @given(tokens, tokens)
    def test_bounded_by_longer_sequence(self, a, b):
        distance = token_edit_distance(tuple(a), tuple(b))
        assert distance <= max(len(a), len(b))

    @settings(max_examples=60, deadline=None)
    @given(tokens, tokens, st.integers(1, 10))
    def test_capped_is_min_of_true_and_cap(self, a, b, cap):
        true = token_edit_distance(tuple(a), tuple(b))
        capped = token_edit_distance(tuple(a), tuple(b), cap=cap)
        assert capped == min(true, cap)


class TestLongestCommonSubstring:
    def test_simple(self):
        assert longest_common_substring(tuple("abcdef"), tuple("zcdez")) == tuple(
            "cde"
        )

    def test_no_overlap(self):
        assert longest_common_substring(tuple("abc"), tuple("xyz")) == ()

    def test_empty_inputs(self):
        assert longest_common_substring((), tuple("abc")) == ()

    def test_full_match(self):
        assert longest_common_substring(tuple("abc"), tuple("abc")) == tuple("abc")

    @settings(max_examples=50, deadline=None)
    @given(tokens, tokens)
    def test_result_is_substring_of_both(self, a, b):
        common = list(longest_common_substring(tuple(a), tuple(b)))
        if common:
            assert any(
                a[i : i + len(common)] == common for i in range(len(a))
            )
            assert any(
                b[i : i + len(common)] == common for i in range(len(b))
            )


class TestSchemaSize:
    def test_counts_text_tokens_in_lcs(self):
        a = ("tr", "td", TEXT_TOKEN, "td", TEXT_TOKEN, "br")
        b = ("x", "tr", "td", TEXT_TOKEN, "td", TEXT_TOKEN, "br")
        assert schema_size(a, b) == 2

    def test_zero_when_no_common_text(self):
        assert schema_size(("tr", "td"), ("tr", "td")) == 0

    def test_counts_type_markers(self):
        a = ("td", "<name>", "td", "<zipcode>")
        b = ("td", "<name>", "td", "<zipcode>")
        assert schema_size(a, b) == 2


class TestSamplePairs:
    def test_fewer_than_two(self):
        assert sample_pairs(0) == []
        assert sample_pairs(1) == []

    def test_two_segments(self):
        assert sample_pairs(2) == [(0, 1)]

    def test_includes_first_last(self):
        assert (0, 3) in sample_pairs(4)

    def test_capped(self):
        pairs = sample_pairs(500, max_pairs=10)
        assert len(pairs) == 10

    def test_pairs_are_valid_indices(self):
        for count in (2, 3, 7, 50):
            for i, j in sample_pairs(count, max_pairs=8):
                assert 0 <= i < count
                assert 0 <= j < count
                assert i != j
