"""Tests for single-entity extraction (Appendix B.2)."""

import pytest

from repro.framework.single_entity import (
    SingleEntityLearner,
    extracts_single_entity,
)
from repro.htmldom.dom import NodeId
from repro.site import Site
from repro.wrappers.xpath_inductor import XPathInductor


@pytest.fixture()
def album_site():
    def page(title, tracks):
        track_lis = "".join(f"<li>{t}</li>" for t in tracks)
        return (
            f"<html><head><title>{title}</title></head><body>"
            f"<h1>{title}</h1><ol>{track_lis}</ol>"
            f"<div class='rev'><blockquote>{tracks[0]}</blockquote></div>"
            "</body></html>"
        )

    return Site.from_html(
        "albums",
        [
            page("Abbey Road", ["Come Together", "Something"]),
            page("Mi Plan", ["Manos al Aire", "Bajo Otra Luz"]),
            page("Golden River", ["Silent Sky", "Paper Heart"]),
        ],
    )


def heading_ids(site):
    return frozenset(
        node_id
        for title in ("Abbey Road", "Mi Plan", "Golden River")
        for node_id in site.find_text_nodes(title)
        if site.text_node(node_id).parent.tag == "h1"
    )


class TestSingleEntityPredicate:
    def test_one_per_page_ok(self):
        site = Site.from_html("x", ["<p>a</p>", "<p>b</p>"])
        extracted = frozenset({NodeId(0, 2), NodeId(1, 2)})
        assert extracts_single_entity(site, extracted)

    def test_two_on_one_page_rejected(self):
        site = Site.from_html("x", ["<p>a</p><p>b</p>"])
        extracted = frozenset({NodeId(0, 2), NodeId(0, 4)})
        assert not extracts_single_entity(site, extracted)

    def test_empty_rejected(self):
        site = Site.from_html("x", ["<p>a</p>"])
        assert not extracts_single_entity(site, frozenset())


class TestSingleEntityLearner:
    def test_learns_title_from_noisy_labels(self, album_site):
        # Noisy labels: two headings plus a review quote (false positive).
        labels = frozenset(
            list(heading_ids(album_site))[:2]
            + album_site.find_text_nodes("Come Together")[:1]
        )
        result = SingleEntityLearner(XPathInductor()).learn(album_site, labels)
        assert result.winners
        extracted = result.extracted(album_site)
        # The winning wrapper extracts exactly one node per page.
        assert extracts_single_entity(album_site, extracted)
        # And those nodes are title locations (h1 or head/title).
        for node_id in extracted:
            parent_tag = album_site.text_node(node_id).parent.tag
            assert parent_tag in ("h1", "title")

    def test_multiple_consistent_winners(self, album_site):
        """Titles appear in <title> and <h1>; both wrappers tie."""
        labels = heading_ids(album_site)
        result = SingleEntityLearner(XPathInductor()).learn(album_site, labels)
        extractions = {w.extract(album_site) for w in result.winners}
        assert len(extractions) >= 1
        for extracted in extractions:
            assert extracts_single_entity(album_site, extracted)

    def test_coverage_reported(self, album_site):
        labels = heading_ids(album_site)
        result = SingleEntityLearner(XPathInductor()).learn(album_site, labels)
        assert result.coverage == len(labels)

    def test_empty_labels(self, album_site):
        result = SingleEntityLearner(XPathInductor()).learn(
            album_site, frozenset()
        )
        assert result.best is None
        assert result.extracted(album_site) == frozenset()

    def test_on_generated_disc_dataset(self, small_disc):
        annotator = small_disc.title_annotator()
        inductor = XPathInductor()
        for generated in small_disc.sites:
            labels = annotator.annotate(generated.site)
            if not labels:
                continue
            result = SingleEntityLearner(inductor).learn(generated.site, labels)
            extracted = result.extracted(generated.site)
            variants = generated.gold_variants["album_title"]
            assert any(extracted == variant for variant in variants)
