"""Tests for the web-publication prior P(X)."""

import pytest

from repro.ranking.publication import ListFeatures, PublicationModel, list_features
from repro.site import Site


@pytest.fixture()
def regular_site():
    """Three-field records, perfectly repeating."""
    rows = "".join(
        f"<tr><td><u>N{i}</u></td><td>A{i}</td><td>P{i}</td></tr>"
        for i in range(1, 6)
    )
    return Site.from_html("regular", [f"<table>{rows}</table>"])


def names(site, count=5):
    return frozenset(
        node_id
        for i in range(1, count + 1)
        for node_id in site.find_text_nodes(f"N{i}")
    )


def all_texts(site):
    return site.text_node_ids()


class TestListFeatures:
    def test_gold_list_is_regular(self, regular_site):
        features = list_features(regular_site, names(regular_site))
        assert features.alignment == 0
        assert features.schema_size == 3  # name, address, phone per record
        assert not features.degenerate

    def test_all_text_list_has_schema_one(self, regular_site):
        """Extracting every cell makes each 'record' one text node —
        the X3 discussion of Sec. 3.  (Alignment is small but nonzero:
        the segment crossing a row boundary carries the extra tr tag.)"""
        features = list_features(regular_site, all_texts(regular_site))
        assert features.schema_size == 1
        assert features.alignment <= 2

    def test_irregular_selection_has_bad_alignment(self, regular_site):
        """The X2-style list (two columns) breaks the repeating gaps."""
        mixed = frozenset(
            node_id
            for i in range(1, 6)
            for text in (f"N{i}", f"A{i}")
            for node_id in regular_site.find_text_nodes(text)
        )
        features = list_features(regular_site, mixed)
        assert features.alignment > 0

    def test_degenerate_single_node(self, regular_site):
        single = frozenset(regular_site.find_text_nodes("N1"))
        features = list_features(regular_site, single)
        assert features.degenerate


class TestPublicationModel:
    @pytest.fixture()
    def model(self, regular_site):
        return PublicationModel.fit([(regular_site, names(regular_site))])

    def test_gold_scores_above_all_text(self, regular_site, model):
        good = model.log_prob(regular_site, names(regular_site))
        bad = model.log_prob(regular_site, all_texts(regular_site))
        assert good > bad

    def test_gold_scores_above_degenerate(self, regular_site, model):
        good = model.log_prob(regular_site, names(regular_site))
        single = model.log_prob(
            regular_site, frozenset(regular_site.find_text_nodes("N1"))
        )
        assert good > single

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            PublicationModel.fit([])

    def test_fit_on_degenerate_training_falls_back(self, regular_site):
        single = frozenset(regular_site.find_text_nodes("N1"))
        model = PublicationModel.fit([(regular_site, single)])
        value = model.log_prob(regular_site, names(regular_site))
        assert value == pytest.approx(
            model.schema_kde.log_density(3)
            + model.alignment_kde.log_density(0),
        )

    def test_learned_from_multiple_sites(self, regular_site, small_dealers):
        pairs = [
            (generated.site, generated.gold["name"])
            for generated in small_dealers.sites
        ]
        model = PublicationModel.fit(pairs)
        for generated in small_dealers.sites[:3]:
            gold_score = model.log_prob(generated.site, generated.gold["name"])
            flood_score = model.log_prob(
                generated.site, generated.site.text_node_ids()
            )
            assert gold_score > flood_score
