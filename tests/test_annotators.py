"""Tests for the automatic annotators."""

import pytest

from repro.annotators import (
    DictionaryAnnotator,
    OracleNoiseAnnotator,
    RegexAnnotator,
    UnionAnnotator,
    measure_noise,
)
from repro.annotators.dictionary import normalize_mention
from repro.annotators.regex import zipcode_annotator
from repro.site import Site


@pytest.fixture()
def site():
    return Site.from_html(
        "ann",
        [
            "<ul><li>Office Depot</li><li>BestBuy</li><li>Corner Store</li>"
            "<li>38652</li><li>Call 38652 today</li><li>123456</li></ul>"
        ],
    )


class TestNormalizeMention:
    def test_case_folding(self):
        assert normalize_mention("BestBuy") == normalize_mention("BESTBUY")

    def test_whitespace_collapse(self):
        assert normalize_mention("  Office   Depot \n") == "office depot"


class TestDictionaryAnnotator:
    def test_exact_mentions_labeled(self, site):
        annotator = DictionaryAnnotator(["Office Depot", "BestBuy"])
        labels = annotator.annotate(site)
        texts = {site.text_node(n).text for n in labels}
        assert texts == {"Office Depot", "BestBuy"}

    def test_case_insensitive(self, site):
        annotator = DictionaryAnnotator(["OFFICE DEPOT"])
        assert len(annotator.annotate(site)) == 1

    def test_no_partial_matches(self, site):
        annotator = DictionaryAnnotator(["Office"])
        assert annotator.annotate(site) == frozenset()

    def test_rejects_empty_dictionary(self):
        with pytest.raises(ValueError):
            DictionaryAnnotator([])

    def test_blank_entries_ignored(self):
        with pytest.raises(ValueError):
            DictionaryAnnotator(["", "   "])


class TestRegexAnnotator:
    def test_search_mode(self, site):
        labels = zipcode_annotator().annotate(site)
        texts = {site.text_node(n).text for n in labels}
        assert texts == {"38652", "Call 38652 today"}

    def test_full_match_mode(self, site):
        annotator = RegexAnnotator(r"\d{5}", full_match=True)
        labels = annotator.annotate(site)
        texts = {site.text_node(n).text for n in labels}
        assert texts == {"38652"}

    def test_zipcode_rejects_six_digits(self, site):
        labels = zipcode_annotator().annotate(site)
        texts = {site.text_node(n).text for n in labels}
        assert "123456" not in texts


class TestOracleNoiseAnnotator:
    def test_deterministic_for_seed(self, site):
        gold = frozenset(site.find_text_nodes("Office Depot"))
        a = OracleNoiseAnnotator(gold, p1=0.7, p2=0.1, seed=5).annotate(site)
        b = OracleNoiseAnnotator(gold, p1=0.7, p2=0.1, seed=5).annotate(site)
        assert a == b

    def test_p1_one_p2_zero_is_perfect(self, site):
        gold = frozenset(site.find_text_nodes("Office Depot"))
        labels = OracleNoiseAnnotator(gold, p1=1.0, p2=0.0, seed=1).annotate(site)
        assert labels == gold

    def test_p1_zero_labels_no_gold(self, site):
        gold = frozenset(site.find_text_nodes("Office Depot"))
        labels = OracleNoiseAnnotator(gold, p1=0.0, p2=0.0, seed=1).annotate(site)
        assert labels == frozenset()

    def test_rates_approximately_respected(self, small_dealers):
        generated = small_dealers.sites[0]
        gold = generated.gold["name"]
        labels = OracleNoiseAnnotator(gold, p1=0.5, p2=0.0, seed=3).annotate(
            generated.site
        )
        recall = len(labels & gold) / len(gold)
        assert 0.2 < recall < 0.8
        assert labels <= gold

    def test_invalid_probability(self, site):
        with pytest.raises(ValueError):
            OracleNoiseAnnotator(frozenset(), p1=1.5, p2=0.0, seed=1)


class TestUnionAnnotator:
    def test_union(self, site):
        union = UnionAnnotator(
            [
                DictionaryAnnotator(["Office Depot"]),
                DictionaryAnnotator(["BestBuy"]),
            ]
        )
        assert len(union.annotate(site)) == 2

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            UnionAnnotator([])


class TestMeasureNoise:
    def test_perfect(self):
        from repro.htmldom.dom import NodeId

        gold = frozenset({NodeId(0, 1), NodeId(0, 2)})
        assert measure_noise(gold, gold, 10) == (1.0, 1.0)

    def test_empty_labels(self):
        from repro.htmldom.dom import NodeId

        gold = frozenset({NodeId(0, 1)})
        precision, recall = measure_noise(frozenset(), gold, 10)
        assert precision == 1.0
        assert recall == 0.0

    def test_half_precision(self):
        from repro.htmldom.dom import NodeId

        gold = frozenset({NodeId(0, 1)})
        labels = frozenset({NodeId(0, 1), NodeId(0, 2)})
        precision, recall = measure_noise(labels, gold, 10)
        assert precision == 0.5
        assert recall == 1.0
