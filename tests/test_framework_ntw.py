"""Tests for the noise-tolerant wrapper pipeline."""

import pytest

from repro.framework.naive import NaiveWrapperLearner
from repro.framework.ntw import (
    MAX_ENUMERATION_LABELS,
    NoiseTolerantWrapper,
    subsample_labels,
)
from repro.htmldom.dom import NodeId
from repro.ranking.annotation import AnnotationModel
from repro.ranking.publication import PublicationModel
from repro.ranking.scorer import WrapperScorer
from repro.site import Site
from repro.wrappers.lr import LRInductor
from repro.wrappers.xpath_inductor import XPathInductor


@pytest.fixture()
def site():
    def page(rows):
        body = "".join(
            f"<tr><td><u>{n}</u></td><td>{a}</td><td>{p}</td></tr>"
            for n, a, p in rows
        )
        return f"<div class='res'><table>{body}</table></div><div class='x'><p>promo</p></div>"

    return Site.from_html(
        "pipeline",
        [
            page([("N1", "A1", "P1"), ("N2", "A2", "P2"), ("N3", "A3", "P3")]),
            page([("N4", "A4", "P4"), ("N5", "A5", "P5")]),
        ],
    )


@pytest.fixture()
def gold(site):
    return frozenset(
        node_id
        for i in range(1, 6)
        for node_id in site.find_text_nodes(f"N{i}")
    )


@pytest.fixture()
def scorer(site, gold):
    return WrapperScorer(
        AnnotationModel.from_rates(p=0.95, r=0.6),
        PublicationModel.fit([(site, gold)]),
    )


def noisy(site, gold):
    """Four correct labels plus the promo node (a false positive)."""
    return frozenset(sorted(gold)[:4]) | frozenset(site.find_text_nodes("promo"))


class TestSubsampleLabels:
    def test_small_sets_unchanged(self):
        labels = frozenset({NodeId(0, i) for i in range(5)})
        assert subsample_labels(labels, 10) == labels

    def test_large_sets_reduced(self):
        labels = frozenset({NodeId(0, i) for i in range(100)})
        sampled = subsample_labels(labels, 10)
        assert len(sampled) == 10
        assert sampled <= labels

    def test_deterministic(self):
        labels = frozenset({NodeId(0, i) for i in range(100)})
        assert subsample_labels(labels, 7) == subsample_labels(labels, 7)

    def test_zero_max_labels_rejected(self):
        labels = frozenset({NodeId(0, i) for i in range(5)})
        with pytest.raises(ValueError, match="max_labels must be a positive"):
            subsample_labels(labels, 0)

    def test_negative_max_labels_rejected(self):
        with pytest.raises(ValueError, match="max_labels must be a positive"):
            subsample_labels(frozenset(), -3)

    def test_learner_rejects_nonpositive_max_labels(self, scorer):
        with pytest.raises(ValueError, match="max_labels"):
            NoiseTolerantWrapper(XPathInductor(), scorer, max_labels=0)


class TestNoiseTolerantWrapper:
    def test_recovers_from_noise_xpath(self, site, gold, scorer):
        learner = NoiseTolerantWrapper(XPathInductor(), scorer)
        result = learner.learn(site, noisy(site, gold))
        assert result.extracted == gold

    def test_recovers_from_noise_lr(self, site, gold, scorer):
        learner = NoiseTolerantWrapper(LRInductor(), scorer)
        result = learner.learn(site, noisy(site, gold))
        assert result.extracted == gold

    def test_naive_fails_on_same_input(self, site, gold):
        naive = NaiveWrapperLearner(XPathInductor())
        extracted = naive.extract(site, noisy(site, gold))
        assert extracted != gold
        assert gold < extracted  # over-generalization, not misses

    def test_bottom_up_enumerator_agrees(self, site, gold, scorer):
        top_down = NoiseTolerantWrapper(
            XPathInductor(), scorer, enumerator="top_down"
        ).learn(site, noisy(site, gold))
        bottom_up = NoiseTolerantWrapper(
            XPathInductor(), scorer, enumerator="bottom_up"
        ).learn(site, noisy(site, gold))
        assert top_down.extracted == bottom_up.extracted

    def test_empty_labels(self, site, scorer):
        result = NoiseTolerantWrapper(XPathInductor(), scorer).learn(
            site, frozenset()
        )
        assert result.best is None
        assert result.extracted == frozenset()

    def test_ranked_list_is_sorted(self, site, gold, scorer):
        result = NoiseTolerantWrapper(XPathInductor(), scorer).learn(
            site, noisy(site, gold)
        )
        scores = [rw.score for rw in result.ranked]
        assert scores == sorted(scores, reverse=True)

    def test_rejects_unknown_enumerator(self, scorer):
        with pytest.raises(ValueError):
            NoiseTolerantWrapper(XPathInductor(), scorer, enumerator="magic")

    def test_top_down_requires_feature_based(self, scorer):
        class Opaque:
            pass

        with pytest.raises(TypeError):
            NoiseTolerantWrapper(Opaque(), scorer, enumerator="top_down")

    def test_default_max_labels(self, scorer):
        learner = NoiseTolerantWrapper(XPathInductor(), scorer)
        assert learner.max_labels == MAX_ENUMERATION_LABELS

    def test_enumeration_result_attached(self, site, gold, scorer):
        result = NoiseTolerantWrapper(XPathInductor(), scorer).learn(
            site, noisy(site, gold)
        )
        assert result.enumeration is not None
        assert result.enumeration.size == len(result.ranked)
