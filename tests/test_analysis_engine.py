"""Engine, baseline-ratchet and CLI behaviour — plus the repo gate:
the shipped tree must lint clean against the checked-in baseline."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.cli import main
from repro.analysis.engine import LintEngine, run_lint
from repro.analysis.findings import Finding

REPO_ROOT = Path(__file__).resolve().parent.parent

SILENT_EXCEPT = textwrap.dedent(
    """
    def read_loop(self):
        while True:
            try:
                self.step()
            except Exception:
                pass
    """
)


def _finding(rule="silent-except", path="a.py", line=1):
    return Finding(rule=rule, path=path, line=line, col=0, message="m")


class TestFindingModel:
    def test_key_format_and_grepable_line(self):
        finding = Finding(
            rule="silent-except", path="x/y.py", line=7, col=4, message="boom"
        )
        assert finding.key == "silent-except:x/y.py"
        assert finding.format() == "x/y.py:7:4: [silent-except] boom"
        assert finding.to_dict()["line"] == 7

    def test_hint_does_not_affect_identity(self):
        a = _finding()
        b = Finding(rule=a.rule, path=a.path, line=a.line, col=0, message="m", hint="h")
        assert a == b


class TestSuppression:
    def test_pragma_silences_named_rule_on_that_line(self):
        source = SILENT_EXCEPT.replace(
            "except Exception:",
            "except Exception:  # lint: ignore[silent-except]",
        )
        engine = LintEngine(root=REPO_ROOT / "src" / "repro")
        assert engine.check_source(source) == []
        # The unsuppressed source does fire.
        assert len(engine.check_source(SILENT_EXCEPT)) == 1

    def test_bare_pragma_silences_all_rules(self):
        source = SILENT_EXCEPT.replace(
            "except Exception:", "except Exception:  # lint: ignore"
        )
        engine = LintEngine(root=REPO_ROOT / "src" / "repro")
        assert engine.check_source(source) == []


class TestBaselineRatchet:
    def test_split_counts_per_bucket(self):
        baseline = Baseline({"silent-except:a.py": 1})
        found = [_finding(line=3), _finding(line=9), _finding(path="b.py")]
        old, new = baseline.split(found)
        assert [f.line for f in old] == [3]  # first in file order is legacy
        assert {(f.path, f.line) for f in new} == {("a.py", 9), ("b.py", 1)}

    def test_update_refuses_growth(self):
        baseline = Baseline({"silent-except:a.py": 1})
        with pytest.raises(BaselineError, match="refusing to grow"):
            baseline.updated([_finding(line=3), _finding(line=9)])
        with pytest.raises(BaselineError, match="refusing to grow"):
            baseline.updated([_finding(path="fresh.py")])

    def test_update_tightens_shrinkage_and_drops_empty_buckets(self):
        baseline = Baseline({"silent-except:a.py": 2, "silent-except:b.py": 1})
        tightened = baseline.updated([_finding()])
        assert tightened.counts == {"silent-except:a.py": 1}

    def test_bootstrap_from_empty_baseline_records_freely(self):
        assert Baseline().updated([_finding(), _finding(line=5)]).counts == {
            "silent-except:a.py": 2
        }

    def test_stale_keys_reported(self):
        baseline = Baseline({"silent-except:a.py": 3, "silent-except:b.py": 1})
        assert baseline.stale_keys([_finding(), _finding(path="b.py")]) == [
            "silent-except:a.py"
        ]

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline({"r:p.py": 2}).save(path)
        assert Baseline.load(path).counts == {"r:p.py": 2}
        assert Baseline.load(tmp_path / "missing.json").counts == {}

    def test_malformed_baselines_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{torn", encoding="utf-8")
        with pytest.raises(BaselineError, match="not valid JSON"):
            Baseline.load(path)
        path.write_text(json.dumps({"counts": {"k": 0}}), encoding="utf-8")
        with pytest.raises(BaselineError, match="positive int"):
            Baseline.load(path)
        path.write_text(json.dumps(["nope"]), encoding="utf-8")
        with pytest.raises(BaselineError, match="'counts' mapping"):
            Baseline.load(path)


class TestEngineRuns:
    def test_run_reports_relative_paths_and_parse_errors(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text("def broken(:\n", "utf-8")
        (tmp_path / "pkg" / "loop.py").write_text(SILENT_EXCEPT, "utf-8")
        report = run_lint(root=tmp_path)
        assert report.files_checked == 1
        assert len(report.parse_errors) == 1
        assert "pkg/bad.py" in report.parse_errors[0]
        assert [f.path for f in report.new] == ["pkg/loop.py"]
        assert not report.ok

    def test_skip_dirs_are_not_linted(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "loop.py").write_text(SILENT_EXCEPT, "utf-8")
        report = run_lint(root=tmp_path)
        assert report.files_checked == 0


class TestCli:
    def _tree(self, tmp_path, findings=1):
        source = SILENT_EXCEPT
        for extra in range(findings - 1):
            source += SILENT_EXCEPT.replace("read_loop", f"read_loop_{extra}")
        (tmp_path / "loop.py").write_text(source, "utf-8")
        return tmp_path

    def test_exit_one_on_new_findings_and_zero_when_clean(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        assert main(["--root", str(root), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "[silent-except]" in out and "1 new" in out
        (tmp_path / "loop.py").write_text("x = 1\n", "utf-8")
        assert main(["--root", str(root), "--no-baseline"]) == 0

    def test_update_baseline_then_gate_passes_and_ratchets(self, tmp_path, capsys):
        root = self._tree(tmp_path, findings=2)
        baseline = tmp_path / "baseline.json"
        argv = ["--root", str(root), "--baseline", str(baseline)]
        assert main(argv + ["--update-baseline"]) == 0
        assert Baseline.load(baseline).counts == {"silent-except:loop.py": 2}
        # Gate passes with the baseline in place...
        assert main(argv) == 0
        # ...a third finding fails the gate and refuses re-baselining...
        source = (tmp_path / "loop.py").read_text("utf-8")
        (tmp_path / "loop.py").write_text(
            source + SILENT_EXCEPT.replace("read_loop", "read_loop_new"), "utf-8"
        )
        capsys.readouterr()
        assert main(argv) == 1
        assert "1 new" in capsys.readouterr().out
        assert main(argv + ["--update-baseline"]) == 2
        # ...and fixing everything lets the baseline tighten to empty.
        (tmp_path / "loop.py").write_text("x = 1\n", "utf-8")
        assert main(argv) == 0  # shrink never blocks
        assert "can be tightened" in capsys.readouterr().out
        assert main(argv + ["--update-baseline"]) == 0
        assert Baseline.load(baseline).counts == {}

    def test_json_report_shape(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        assert main(["--root", str(root), "--no-baseline", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["total_findings"] == 1
        assert report["new"][0]["rule"] == "silent-except"
        assert report["new"][0]["path"] == "loop.py"

    def test_list_rules_names_every_rule(self, capsys):
        from repro.analysis.rules import ALL_RULES

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_explicit_paths_limit_the_run(self, tmp_path, capsys):
        root = self._tree(tmp_path)
        (tmp_path / "clean.py").write_text("x = 1\n", "utf-8")
        argv = ["--root", str(root), "--no-baseline", str(tmp_path / "clean.py")]
        assert main(argv) == 0


class TestRepoGate:
    """The shipped tree itself must pass — the CI contract, e2e."""

    def test_repro_lint_json_passes_against_checked_in_baseline(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--json"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        report = json.loads(result.stdout)
        assert report["ok"] is True
        assert report["new"] == []
        assert report["parse_errors"] == []
        assert report["files_checked"] > 50

    def test_checked_in_baseline_is_not_stale(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        report = run_lint(baseline=baseline)
        assert report.stale_baseline_keys == []
