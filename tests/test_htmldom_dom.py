"""Tests for DOM navigation primitives."""

import pytest

from repro.htmldom.dom import ElementNode, NodeId, TextNode
from repro.htmldom.treebuilder import parse_html


@pytest.fixture()
def doc():
    return parse_html(
        "<div><table>"
        "<tr><td>a</td><td>b</td></tr>"
        "<tr><td>c</td><td>d</td><th>h</th></tr>"
        "</table></div>"
    )


class TestNavigation:
    def test_ancestors_order(self, doc):
        first_text = doc.text_nodes()[0]
        chain = [a.tag for a in first_text.ancestors()]
        assert chain == ["td", "tr", "table", "div", "html"]

    def test_root(self, doc):
        assert doc.text_nodes()[0].root() is doc.root

    def test_child_elements_excludes_text(self, doc):
        td = doc.text_nodes()[0].parent
        assert td.child_elements() == []

    def test_is_text_is_element(self, doc):
        assert doc.text_nodes()[0].is_text
        assert not doc.text_nodes()[0].is_element
        assert doc.root.is_element

    def test_text_content(self, doc):
        table = doc.root.children[0].children[0]
        assert table.text_content() == "abcdh"

    def test_iter_text_nodes_in_document_order(self, doc):
        texts = [t.text for t in doc.root.iter_text_nodes()]
        assert texts == ["a", "b", "c", "d", "h"]


class TestChildNumber:
    def test_same_tag_siblings(self, doc):
        table = doc.root.children[0].children[0]
        second_row = table.children[1]
        tds = [c for c in second_row.children if c.tag == "td"]
        th = [c for c in second_row.children if c.tag == "th"][0]
        assert tds[0].child_number() == 1
        assert tds[1].child_number() == 2
        # th is the first *th*, not the third cell
        assert th.child_number() == 1

    def test_root_child_number(self, doc):
        assert doc.root.child_number() == 1

    def test_mixed_tags_counted_separately(self):
        doc = parse_html("<div><p>a</p><span>b</span><p>c</p></div>")
        div = doc.root.children[0]
        p_nodes = [c for c in div.children if c.tag == "p"]
        assert [p.child_number() for p in p_nodes] == [1, 2]


class TestNodeId:
    def test_ordering(self):
        assert NodeId(0, 5) < NodeId(0, 9) < NodeId(1, 0)

    def test_hashable_and_equal(self):
        assert NodeId(1, 2) == NodeId(1, 2)
        assert len({NodeId(1, 2), NodeId(1, 2)}) == 1

    def test_frozen(self):
        node_id = NodeId(0, 0)
        with pytest.raises(AttributeError):
            node_id.page = 3  # type: ignore[misc]


class TestManualConstruction:
    def test_append_sets_parent(self):
        parent = ElementNode("div")
        child = TextNode("x")
        parent.append(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_preorder_of_manual_tree(self):
        root = ElementNode("html")
        a = ElementNode("a")
        b = ElementNode("b")
        root.append(a)
        a.append(TextNode("t"))
        root.append(b)
        tags = [
            getattr(n, "tag", "#text") for n in root.iter_preorder()
        ]
        assert tags == ["html", "a", "#text", "b"]
