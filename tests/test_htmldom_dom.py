"""Tests for DOM navigation primitives."""

import pytest

from repro.htmldom.dom import ElementNode, NodeId, TextNode
from repro.htmldom.treebuilder import parse_html


@pytest.fixture()
def doc():
    return parse_html(
        "<div><table>"
        "<tr><td>a</td><td>b</td></tr>"
        "<tr><td>c</td><td>d</td><th>h</th></tr>"
        "</table></div>"
    )


class TestNavigation:
    def test_ancestors_order(self, doc):
        first_text = doc.text_nodes()[0]
        chain = [a.tag for a in first_text.ancestors()]
        assert chain == ["td", "tr", "table", "div", "html"]

    def test_root(self, doc):
        assert doc.text_nodes()[0].root() is doc.root

    def test_child_elements_excludes_text(self, doc):
        td = doc.text_nodes()[0].parent
        assert td.child_elements() == []

    def test_is_text_is_element(self, doc):
        assert doc.text_nodes()[0].is_text
        assert not doc.text_nodes()[0].is_element
        assert doc.root.is_element

    def test_text_content(self, doc):
        table = doc.root.children[0].children[0]
        assert table.text_content() == "abcdh"

    def test_iter_text_nodes_in_document_order(self, doc):
        texts = [t.text for t in doc.root.iter_text_nodes()]
        assert texts == ["a", "b", "c", "d", "h"]


class TestChildNumber:
    def test_same_tag_siblings(self, doc):
        table = doc.root.children[0].children[0]
        second_row = table.children[1]
        tds = [c for c in second_row.children if c.tag == "td"]
        th = [c for c in second_row.children if c.tag == "th"][0]
        assert tds[0].child_number() == 1
        assert tds[1].child_number() == 2
        # th is the first *th*, not the third cell
        assert th.child_number() == 1

    def test_root_child_number(self, doc):
        assert doc.root.child_number() == 1

    def test_mixed_tags_counted_separately(self):
        doc = parse_html("<div><p>a</p><span>b</span><p>c</p></div>")
        div = doc.root.children[0]
        p_nodes = [c for c in div.children if c.tag == "p"]
        assert [p.child_number() for p in p_nodes] == [1, 2]


class TestNodeId:
    def test_ordering(self):
        assert NodeId(0, 5) < NodeId(0, 9) < NodeId(1, 0)

    def test_hashable_and_equal(self):
        assert NodeId(1, 2) == NodeId(1, 2)
        assert len({NodeId(1, 2), NodeId(1, 2)}) == 1

    def test_frozen(self):
        node_id = NodeId(0, 0)
        with pytest.raises(AttributeError):
            node_id.page = 3  # type: ignore[misc]


class TestManualConstruction:
    def test_append_sets_parent(self):
        parent = ElementNode("div")
        child = TextNode("x")
        parent.append(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_preorder_of_manual_tree(self):
        root = ElementNode("html")
        a = ElementNode("a")
        b = ElementNode("b")
        root.append(a)
        a.append(TextNode("t"))
        root.append(b)
        tags = [
            getattr(n, "tag", "#text") for n in root.iter_preorder()
        ]
        assert tags == ["html", "a", "#text", "b"]


class TestFrozenIndexes:
    """The query indexes a Document builds at freeze time."""

    def test_elements_with_tag_in_document_order(self, doc):
        tds = doc.elements_with_tag("td")
        assert [t.tag for t in tds] == ["td"] * 4
        preorders = [t.node_id.preorder for t in tds]
        assert preorders == sorted(preorders)
        assert doc.elements_with_tag("nosuch") == []

    def test_elements_with_tag_wildcard_is_all_elements(self, doc):
        everything = doc.elements_with_tag("*")
        assert everything == [
            n for n in doc.nodes if getattr(n, "tag", None) is not None
        ]

    def test_child_elements_with_tag(self, doc):
        table = doc.root.children[0].children[0]
        second_row = table.children[1]
        assert [c.text_content() for c in doc.child_elements_with_tag(second_row, "td")] == ["c", "d"]
        assert [c.text_content() for c in doc.child_elements_with_tag(second_row, "th")] == ["h"]
        assert doc.child_elements_with_tag(second_row, "div") == []
        assert doc.child_elements_with_tag(second_row, "*") == second_row.child_elements()

    def test_descendant_elements_bisects_subtree_ranges(self, doc):
        table = doc.root.children[0].children[0]
        rows = doc.elements_with_tag("tr")
        assert [t.text_content() for t in doc.descendant_elements(table, "td")] == ["a", "b", "c", "d"]
        assert [t.text_content() for t in doc.descendant_elements(rows[0], "td")] == ["a", "b"]
        assert [t.text_content() for t in doc.descendant_elements(rows[1], "td")] == ["c", "d"]
        # The table is a descendant of the root, but never of itself.
        assert table in doc.descendant_elements(doc.root, "table")
        assert table not in doc.descendant_elements(table, "table")
        assert doc.descendant_elements(rows[0], "tr") == []

    def test_descendant_wildcard_excludes_self(self, doc):
        table = doc.root.children[0].children[0]
        descendants = doc.descendant_elements(table, "*")
        assert table not in descendants
        assert len(descendants) == 7  # 2 tr + 4 td + 1 th

    def test_attribute_value_index(self):
        doc = parse_html(
            "<div class='x'><p class='x'>one</p><p class='y'>two</p></div>"
        )
        xs = doc.elements_with_attr("class", "x")
        assert [e.tag for e in xs] == ["div", "p"]
        assert doc.elements_with_attr("class", "z") == []
        div = xs[0]
        assert [e.tag for e in doc.descendant_elements_with_attr(div, "class", "x")] == ["p"]

    def test_child_numbers_cached_at_freeze(self, doc):
        for element in doc.root.iter_elements():
            assert element._child_no is not None
        tds = doc.elements_with_tag("td")
        assert [t.child_number() for t in tds] == [1, 2, 1, 2]

    def test_subtree_spans_cover_descendants_exactly(self, doc):
        for element in doc.root.iter_elements():
            inside = {
                n.node_id.preorder
                for n in element.iter_preorder()
                if n is not element
            }
            span = set(
                range(element.node_id.preorder + 1, element._subtree_end)
            )
            assert inside == span


class TestTextNodeContaining:
    def test_bisect_matches_linear_scan(self, doc):
        for offset in range(len(doc.source) + 5):
            expected = next(
                (
                    n
                    for n in doc.nodes
                    if isinstance(n, TextNode) and n.start <= offset < n.end
                ),
                None,
            )
            assert doc.text_node_containing(offset) is expected

    def test_outside_any_span(self, doc):
        assert doc.text_node_containing(-1) is None
        assert doc.text_node_containing(10**9) is None

    def test_text_spans_sorted(self, doc):
        spans = doc.text_spans()
        starts = [s for s, _, _ in spans]
        assert starts == sorted(starts)
        for start, end, node in spans:
            assert (node.start, node.end) == (start, end)


class TestLeanPickling:
    """Parsed documents ship as raw HTML and refreeze on arrival."""

    HTML = (
        "<div class='dealerlinks'><table>"
        "<tr><td><u>PORTER &amp; SONS</u><br>201 HWY. 30</td></tr>"
        "<tr><td><u>LULLABY LANE</u><br>532 SAN MATEO</td></tr>"
        "</table></div>"
    )

    def test_parsed_document_pickles_lean(self):
        import pickle

        parsed = parse_html(self.HTML, page_index=3)
        assert parsed.from_source
        payload = pickle.dumps(parsed)
        # The payload is the source plus small overhead, not the frozen
        # index state (which is several times the source size).
        assert len(payload) < 2 * len(self.HTML) + 256

    def test_refreeze_rebuilds_identical_tree(self):
        import pickle

        parsed = parse_html(self.HTML, page_index=3)
        clone = pickle.loads(pickle.dumps(parsed))
        assert clone is not parsed
        assert clone.source == parsed.source
        assert clone.page_index == parsed.page_index
        assert clone.from_source
        assert [n.node_id for n in clone.nodes] == [
            n.node_id for n in parsed.nodes
        ]
        assert [
            (n.tag if not isinstance(n, TextNode) else n.text)
            for n in clone.nodes
        ] == [
            (n.tag if not isinstance(n, TextNode) else n.text)
            for n in parsed.nodes
        ]
        # Frozen indexes are rebuilt, not shipped.
        assert clone.elements_with_tag("td")[0].node_id == (
            parsed.elements_with_tag("td")[0].node_id
        )
        assert clone.text_spans() == [
            (s, e, clone.node(n.node_id))
            for s, e, n in parsed.text_spans()
        ]

    def test_hand_built_document_keeps_full_state_pickling(self):
        import pickle

        from repro.htmldom.dom import Document

        root = ElementNode("html")
        p = ElementNode("p")
        root.append(p)
        p.append(TextNode("hand-built"))
        manual = Document(root, "", page_index=0)
        assert not manual.from_source
        clone = pickle.loads(pickle.dumps(manual))
        assert not clone.from_source
        assert clone.root.text_content() == "hand-built"
        assert [n.node_id for n in clone.nodes] == [
            n.node_id for n in manual.nodes
        ]

    def test_xpath_memo_never_shipped_on_either_path(self):
        import pickle

        parsed = parse_html(self.HTML)
        parsed.xpath_memo["poison"] = ["stale"]
        assert pickle.loads(pickle.dumps(parsed)).xpath_memo == {}
