"""Property tests for the paper's formal machinery (Sec. 4 and App. C).

Beyond the algorithm-agreement tests, these check the structural lemmas
the proofs rest on: idempotence of the closure operator (Lemma C.1),
the closed-set/wrapper bijection (Lemma C.2), and the equivalence of
blackbox induction with feature intersection for the feature-based
inductors (Sec. 4.2, Theorems 4 and 5).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.site import Site
from repro.wrappers.base import extract_by_features
from repro.wrappers.lr import LRInductor
from repro.wrappers.table import Grid, TableInductor
from repro.wrappers.xpath_inductor import XPathInductor

GRID = Grid(4, 5)

SITE = Site.from_html(
    "claims",
    [
        "<div class='a'><table>"
        "<tr><td><u>N1</u></td><td>S1</td></tr>"
        "<tr><td><u>N2</u></td><td>S2</td></tr>"
        "</table></div><ul><li>p1</li><li>p2</li></ul>",
        "<div class='a'><table>"
        "<tr><td><u>N3</u></td><td>S3</td></tr>"
        "</table></div><ul><li>p3</li></ul>",
    ],
)
SITE_IDS = sorted(SITE.iter_text_node_ids())

grid_labels = st.sets(
    st.sampled_from(sorted(GRID.all_cells())), min_size=1, max_size=6
).map(frozenset)

site_labels = st.sets(st.sampled_from(SITE_IDS), min_size=1, max_size=5).map(
    frozenset
)


class TestClosureOperator:
    """Lemma C.1: phi(s) = phi(phi-breve(s)); phi-breve is idempotent."""

    @settings(max_examples=50, deadline=None)
    @given(grid_labels)
    def test_wrapper_unchanged_by_closure_table(self, labels):
        inductor = TableInductor()
        universe = labels  # L is the label set itself here
        closure = inductor.closure(GRID, labels, universe)
        assert inductor.induce(GRID, labels) == inductor.induce(GRID, closure)

    @settings(max_examples=30, deadline=None)
    @given(site_labels)
    def test_wrapper_unchanged_by_closure_xpath(self, labels):
        inductor = XPathInductor()
        closure = inductor.closure(SITE, labels, labels)
        assert inductor.induce(SITE, labels) == inductor.induce(SITE, closure)

    @settings(max_examples=30, deadline=None)
    @given(site_labels, site_labels)
    def test_closure_idempotent(self, labels, universe_extra):
        inductor = XPathInductor()
        universe = labels | universe_extra
        once = inductor.closure(SITE, labels, universe)
        twice = inductor.closure(SITE, once, universe)
        assert once == twice


class TestClosedSetWrapperBijection:
    """Lemma C.2: distinct closed sets induce distinct wrappers."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.sets(st.sampled_from(SITE_IDS), min_size=2, max_size=6).map(frozenset)
    )
    def test_bijection_over_label_universe(self, universe):
        inductor = XPathInductor()
        import itertools

        closed_sets = set()
        for size in range(1, len(universe) + 1):
            for subset in itertools.combinations(sorted(universe), size):
                subset = frozenset(subset)
                if inductor.closure(SITE, subset, universe) == subset:
                    closed_sets.add(subset)
        wrappers = {inductor.induce(SITE, s) for s in closed_sets}
        assert len(wrappers) == len(closed_sets)


class TestFeatureEquivalence:
    """Blackbox induction == feature-intersection matching (Sec. 4.2)."""

    @settings(max_examples=30, deadline=None)
    @given(site_labels)
    def test_xpath_extraction_equals_feature_match(self, labels):
        inductor = XPathInductor()
        wrapper = inductor.induce(SITE, labels)
        shared = inductor.shared_features(SITE, labels)
        by_features = extract_by_features(
            inductor, SITE, shared, inductor.candidates(SITE)
        )
        assert wrapper.extract(SITE) == by_features

    @settings(max_examples=30, deadline=None)
    @given(site_labels)
    def test_lr_extraction_equals_feature_match(self, labels):
        """Theorem 4's surprise: LR is expressible as feature matching
        over the Lk/Rk attributes."""
        inductor = LRInductor(max_delimiter_length=32)
        wrapper = inductor.induce(SITE, labels)
        shared = inductor.shared_features(SITE, labels)
        by_features = extract_by_features(
            inductor, SITE, shared, inductor.candidates(SITE)
        )
        assert wrapper.extract(SITE) == by_features

    @settings(max_examples=50, deadline=None)
    @given(grid_labels)
    def test_table_extraction_equals_feature_match(self, labels):
        inductor = TableInductor()
        wrapper = inductor.induce(GRID, labels)
        shared = inductor.shared_features(GRID, labels)
        by_features = extract_by_features(
            inductor, GRID, shared, inductor.candidates(GRID)
        )
        assert wrapper.extract(GRID) == by_features


class TestSection1Narrative:
    """The introduction's over-generalization claim, quantified."""

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.sampled_from(SITE_IDS), min_size=1, max_size=3).map(frozenset))
    def test_adding_labels_never_shrinks_extraction(self, labels):
        inductor = XPathInductor()
        base = inductor.induce(SITE, labels).extract(SITE)
        for extra in SITE_IDS:
            grown = inductor.induce(SITE, labels | {extra}).extract(SITE)
            assert base <= grown
