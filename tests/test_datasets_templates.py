"""Tests for the rendering machinery: every layout family, chrome, and
the LR-hostile ``bold-cols`` construction."""

import random

import pytest

from repro.datasets.templates import (
    LAYOUTS,
    Chrome,
    ListingLayout,
    PageEmitter,
    make_class,
)
from repro.htmldom.treebuilder import parse_html
from repro.site import Site
from repro.wrappers.lr import LRInductor
from repro.wrappers.xpath_inductor import XPathInductor

# Field values deliberately share no trailing/leading characters, so the
# only common LR context is the markup itself (as on real listing pages
# where streets, cities and phones vary freely).
RECORDS = [
    {"name": "ALPHA STORES", "street": "1 Main St.", "phone": "555-0001"},
    {"name": "BETA OUTLET", "street": "2 Oak Avenue", "phone": "661-33"},
    {"name": "GAMMA DEPOT", "street": "3 Elm Road", "phone": "910-7742"},
]

FIELDS = ("name", "street", "phone")


def render(kind: str, seed: int = 3) -> tuple[str, list]:
    rng = random.Random(seed)
    layout = ListingLayout.build(rng, primary="name", fields=FIELDS, kind=kind)
    out = PageEmitter()
    out.raw("<html><body>")
    layout.emit(out, RECORDS, {"name": "name"})
    out.raw("</body></html>")
    return out.html(), out.spans


class TestLayouts:
    @pytest.mark.parametrize("kind", LAYOUTS)
    def test_renders_parseable_page(self, kind):
        html, spans = render(kind)
        doc = parse_html(html)
        assert doc.text_nodes()

    @pytest.mark.parametrize("kind", LAYOUTS)
    def test_gold_spans_cover_names(self, kind):
        html, spans = render(kind)
        assert len(spans) == len(RECORDS)
        for span, record in zip(spans, RECORDS):
            assert html[span.start : span.end] == record["name"]

    @pytest.mark.parametrize("kind", LAYOUTS)
    def test_gold_names_resolve_to_text_nodes(self, kind):
        html, spans = render(kind)
        doc = parse_html(html)
        for span in spans:
            node = doc.text_node_containing(span.start)
            assert node is not None
            assert node.start <= span.start and span.end <= node.end

    @pytest.mark.parametrize("kind", LAYOUTS)
    def test_all_field_values_present(self, kind):
        html, _ = render(kind)
        doc = parse_html(html)
        text = doc.root.text_content()
        for record in RECORDS:
            for value in record.values():
                assert value in text

    @pytest.mark.parametrize("kind", LAYOUTS)
    def test_name_xpath_separable(self, kind):
        """On every layout the XPATH inductor isolates names exactly."""
        html, spans = render(kind)
        site = Site.from_html("t", [html])
        gold = frozenset(
            site.pages[0].text_node_containing(span.start).node_id
            for span in spans
        )
        wrapper = XPathInductor().induce(site, gold)
        assert wrapper.extract(site) == gold


class TestBoldCols:
    def test_lr_cannot_isolate_names(self):
        """The defining property: no LR delimiter pair separates the
        name column from the rotating bold promo column."""
        html, spans = render("bold-cols")
        site = Site.from_html("t", [html])
        gold = frozenset(
            site.pages[0].text_node_containing(span.start).node_id
            for span in spans
        )
        wrapper = LRInductor().induce(site, gold)
        extracted = wrapper.extract(site)
        assert gold < extracted  # promos leak in
        leaked = {site.text_node(n).text for n in extracted - gold}
        assert leaked <= {
            "In Stock",
            "Call for availability",
            "Authorized dealer",
        }

    def test_xpath_still_isolates_names(self):
        html, spans = render("bold-cols")
        site = Site.from_html("t", [html])
        gold = frozenset(
            site.pages[0].text_node_containing(span.start).node_id
            for span in spans
        )
        assert XPathInductor().induce(site, gold).extract(site) == gold


class TestChrome:
    def test_header_nav_footer(self):
        rng = random.Random(1)
        chrome = Chrome.build(rng, "Test Site")
        out = PageEmitter()
        chrome.emit_head(out, "Page One")
        chrome.emit_header(out, rng)
        chrome.emit_sidebar(out, rng, noise_entries=["BESTBUY"])
        chrome.emit_footer(out, rng)
        doc = parse_html(out.html())
        text = doc.root.text_content()
        assert "Test Site" in text
        assert "BESTBUY" in text
        assert "©" in text

    def test_noise_entries_are_standalone_nodes(self):
        rng = random.Random(2)
        chrome = Chrome.build(rng, "S")
        out = PageEmitter()
        out.raw("<html><body>")
        chrome.emit_sidebar(out, rng, noise_entries=["OFFICE DEPOT"])
        out.raw("</body></html>")
        doc = parse_html(out.html())
        matches = [
            t for t in doc.text_nodes() if t.text.strip() == "OFFICE DEPOT"
        ]
        assert len(matches) == 1

    def test_sidebar_without_noise(self):
        rng = random.Random(3)
        chrome = Chrome.build(rng, "S")
        out = PageEmitter()
        chrome.emit_sidebar(out, rng, noise_entries=None)
        assert "<h4>" not in out.html()


class TestMakeClass:
    def test_deterministic_per_rng_state(self):
        assert make_class(random.Random(7)) == make_class(random.Random(7))

    def test_produces_valid_css_tokens(self):
        rng = random.Random(9)
        for _ in range(50):
            name = make_class(rng)
            assert name
            assert " " not in name
            assert "<" not in name
