"""Tunables of the engine's cache hierarchy, in one place.

Every bounded cache the evaluation engine maintains — posting-trie
nodes, per-engine site memo tables, the sites a warm scheduler worker
keeps interned — reads its bound from the process-wide
:class:`EngineConfig` instead of a scattering of module constants.
Long-running services can widen the bounds (more memory, warmer
caches); test suites can narrow them to exercise eviction.

The config is deliberately tiny and mutable in place:
:func:`get_config` returns the live instance, :func:`configure` updates
named fields and returns it.  Bounds are read at *use* time, so a
``configure`` call affects caches that already exist (an oversized trie
shrinks on its next lookup).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["EngineConfig", "configure", "get_config"]


@dataclass(slots=True)
class EngineConfig:
    """Bounds of the engine's cache hierarchy.

    Attributes:
        trie_node_bound: max nodes of one site's posting
            :class:`~repro.engine.trie.FeatureTrie` before its
            least-recently-used leaves are evicted.
        site_cache_bound: max per-site extraction-memo tables one
            :class:`~repro.engine.core.EvaluationEngine` holds before
            the least-recently-used site's memo is evicted.
        interned_site_bound: max sites a warm scheduler worker
            (:mod:`repro.api.scheduler`) keeps interned, LRU-evicted
            with all their derived caches.
    """

    trie_node_bound: int = 65536
    site_cache_bound: int = 64
    interned_site_bound: int = 32


_CONFIG = EngineConfig()

_FIELDS = frozenset(f.name for f in fields(EngineConfig))


def get_config() -> EngineConfig:
    """The live process-wide engine configuration."""
    return _CONFIG


def configure(**overrides: int) -> EngineConfig:
    """Update named fields of the live config; returns it.

    Unknown field names and non-positive bounds are rejected — a zero
    bound would turn every cache into a rebuild-per-use path.
    """
    for name, value in overrides.items():
        if name not in _FIELDS:
            raise ValueError(
                f"unknown engine config field {name!r} "
                f"(known: {', '.join(sorted(_FIELDS))})"
            )
        if not isinstance(value, int) or value <= 0:
            raise ValueError(f"{name} must be a positive integer; got {value!r}")
    for name, value in overrides.items():
        setattr(_CONFIG, name, value)
    return _CONFIG
