"""Prefix-sharing batch evaluation of feature-set wrappers.

The enumerated candidate space of a feature-based inductor is a family
of feature sets that overlap heavily: every candidate is a superset of
the features shared by its label subset, so candidates for one site
share long common cores.  :class:`FeatureTrie` exploits that overlap —
it maps each feature item to its *posting set* (the node ids carrying
the item) and evaluates a wrapper as the intersection of its items'
postings, walking a trie keyed by a canonical item order so that shared
prefixes are intersected exactly once per site, however many candidates
(or ranking passes) reuse them.

Item order is most-selective-first: rare items (small postings) come
first, so intersections shrink immediately and the cached prefix sets
stay small.  Posting sizes are per-site constants, which keeps the
order canonical across every wrapper evaluated on the site.

A trie that outgrows its node bound (``trie_node_bound`` in
:mod:`repro.engine.config`) sheds its least-recently-used *leaves*
rather than resetting wholesale: every lookup stamps the nodes along
its path with a recency tick, and eviction peels cold leaves inward
(a parent whose last child is evicted becomes a leaf itself) until the
trie is back under three quarters of the bound.  Long-running warm
workers therefore keep the hot prefix sets of the wrappers they are
actually re-applying, losing only the cold tails.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Hashable, Iterable, Mapping

from repro.engine.config import get_config
from repro.htmldom.dom import NodeId

#: Trie-node layout (plain lists keep the hot path allocation-light):
#: the set at this prefix, child edges by item, the parent node, the
#: edge item leading here, and the recency tick of the last lookup
#: that touched this node.
_SET = 0
_CHILDREN = 1
_PARENT = 2
_ITEM = 3
_TICK = 4

_EMPTY: frozenset[NodeId] = frozenset()


class FeatureTrie:
    """Shared-prefix evaluator over a fixed posting index.

    Args:
        postings: feature item -> frozenset of node ids carrying it.
        universe: result for the empty feature set (every candidate
            node, typically all text nodes of the site).
        node_bound: max trie nodes before LRU leaf eviction; ``None``
            reads the live :func:`repro.engine.config.get_config` bound
            at each lookup, so reconfiguring shrinks existing tries.
    """

    __slots__ = (
        "postings",
        "universe",
        "node_bound",
        "_order_keys",
        "_root",
        "_nodes",
        "_tick",
    )

    def __init__(
        self,
        postings: Mapping[Hashable, frozenset[NodeId]],
        universe: frozenset[NodeId],
        node_bound: int | None = None,
    ) -> None:
        self.postings = postings
        self.universe = universe
        self.node_bound = node_bound
        # Canonical total order: ascending posting size, then a stable
        # textual key (items mix tuple shapes, so they are not directly
        # comparable).  Lazy posting stores (the arena's
        # :class:`~repro.arena.sitepack.ArenaPostings`) expose the same
        # keys through ``order_keys()`` without materializing a single
        # posting frozenset — sizes come straight from the packed
        # offset table.
        order_keys = getattr(postings, "order_keys", None)
        if order_keys is not None:
            self._order_keys: dict[Hashable, tuple[int, str]] = dict(
                order_keys()
            )
        else:
            self._order_keys = {
                item: (len(nodes), repr(item))
                for item, nodes in postings.items()
            }
        self._root: list = [universe, {}, None, None, 0]
        self._nodes = 1
        self._tick = 0

    @property
    def node_count(self) -> int:
        """Current number of trie nodes (root included)."""
        return self._nodes

    def lookup(self, items: Iterable[Hashable]) -> frozenset[NodeId]:
        """Nodes whose feature set contains every item (∩ of postings)."""
        order_keys = self._order_keys
        missing_key = (len(self.universe) + 1, "")
        ordered = sorted(
            items, key=lambda item: order_keys.get(item, missing_key)
        )
        self._tick += 1
        tick = self._tick
        node = self._root
        postings = self.postings
        result: frozenset[NodeId] = node[_SET]
        for item in ordered:
            child = node[_CHILDREN].get(item)
            if child is None:
                parent_set: frozenset[NodeId] = node[_SET]
                posting = postings.get(item)
                current = parent_set & posting if posting else _EMPTY
                child = [current, {}, node, item, tick]
                node[_CHILDREN][item] = child
                self._nodes += 1
            node = child
            node[_TICK] = tick
            if not node[_SET]:
                result = _EMPTY
                break
        else:
            result = node[_SET]
        bound = (
            self.node_bound
            if self.node_bound is not None
            else get_config().trie_node_bound
        )
        if self._nodes > bound:
            self._evict(bound)
        return result

    def _evict(self, bound: int) -> None:
        """Peel least-recently-used leaves until under 3/4 of ``bound``.

        Leaves carry the ticks of the last lookup that reached them;
        removing a leaf may expose its parent as the next candidate, so
        cold branches are peeled inward while hot prefixes survive.
        """
        target = max(1, (bound * 3) // 4)
        counter = itertools.count()  # tie-break: lists are not comparable
        heap: list[tuple[int, int, list]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            children = node[_CHILDREN]
            if children:
                stack.extend(children.values())
            elif node is not self._root:
                heapq.heappush(heap, (node[_TICK], next(counter), node))
        while heap and self._nodes > target:
            _, _, node = heapq.heappop(heap)
            parent = node[_PARENT]
            del parent[_CHILDREN][node[_ITEM]]
            node[_PARENT] = None
            self._nodes -= 1
            if not parent[_CHILDREN] and parent is not self._root:
                heapq.heappush(heap, (parent[_TICK], next(counter), parent))


def build_postings(
    feature_sets: Mapping[NodeId, frozenset],
) -> dict[Hashable, frozenset[NodeId]]:
    """Invert per-node feature sets into per-item posting sets."""
    raw: dict[Hashable, set[NodeId]] = {}
    for node_id, items in feature_sets.items():
        for item in items:
            bucket = raw.get(item)
            if bucket is None:
                raw[item] = {node_id}
            else:
                bucket.add(node_id)
    return {item: frozenset(nodes) for item, nodes in raw.items()}
