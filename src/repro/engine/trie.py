"""Prefix-sharing batch evaluation of feature-set wrappers.

The enumerated candidate space of a feature-based inductor is a family
of feature sets that overlap heavily: every candidate is a superset of
the features shared by its label subset, so candidates for one site
share long common cores.  :class:`FeatureTrie` exploits that overlap —
it maps each feature item to its *posting set* (the node ids carrying
the item) and evaluates a wrapper as the intersection of its items'
postings, walking a trie keyed by a canonical item order so that shared
prefixes are intersected exactly once per site, however many candidates
(or ranking passes) reuse them.

Item order is most-selective-first: rare items (small postings) come
first, so intersections shrink immediately and the cached prefix sets
stay small.  Posting sizes are per-site constants, which keeps the
order canonical across every wrapper evaluated on the site.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.htmldom.dom import NodeId

#: Trie-node layout: the set at this prefix plus child edges by item.
#: (plain tuples keep the hot path allocation-light).
_SET = 0
_CHILDREN = 1

#: Reset threshold: a trie that outgrows this many nodes is discarded
#: (prefix sets are frozensets of NodeId; unbounded growth across very
#: long sessions would otherwise pin memory).
_MAX_TRIE_NODES = 65536

_EMPTY: frozenset[NodeId] = frozenset()


class FeatureTrie:
    """Shared-prefix evaluator over a fixed posting index.

    Args:
        postings: feature item -> frozenset of node ids carrying it.
        universe: result for the empty feature set (every candidate
            node, typically all text nodes of the site).
    """

    __slots__ = ("postings", "universe", "_order_keys", "_root", "_nodes")

    def __init__(
        self,
        postings: Mapping[Hashable, frozenset[NodeId]],
        universe: frozenset[NodeId],
    ) -> None:
        self.postings = postings
        self.universe = universe
        # Canonical total order: ascending posting size, then a stable
        # textual key (items mix tuple shapes, so they are not directly
        # comparable).
        self._order_keys: dict[Hashable, tuple[int, str]] = {
            item: (len(nodes), repr(item)) for item, nodes in postings.items()
        }
        self._root: list = [universe, {}]
        self._nodes = 1

    def lookup(self, items: Iterable[Hashable]) -> frozenset[NodeId]:
        """Nodes whose feature set contains every item (∩ of postings)."""
        order_keys = self._order_keys
        missing_key = (len(self.universe) + 1, "")
        ordered = sorted(
            items, key=lambda item: order_keys.get(item, missing_key)
        )
        if self._nodes > _MAX_TRIE_NODES:
            self._root = [self.universe, {}]
            self._nodes = 1
        node = self._root
        postings = self.postings
        for item in ordered:
            child = node[_CHILDREN].get(item)
            if child is None:
                parent_set: frozenset[NodeId] = node[_SET]
                posting = postings.get(item)
                current = parent_set & posting if posting else _EMPTY
                child = [current, {}]
                node[_CHILDREN][item] = child
                self._nodes += 1
            node = child
            if not node[_SET]:
                return _EMPTY
        return node[_SET]


def build_postings(
    feature_sets: Mapping[NodeId, frozenset],
) -> dict[Hashable, frozenset[NodeId]]:
    """Invert per-node feature sets into per-item posting sets."""
    raw: dict[Hashable, set[NodeId]] = {}
    for node_id, items in feature_sets.items():
        for item in items:
            bucket = raw.get(item)
            if bucket is None:
                raw[item] = {node_id}
            else:
                bucket.add(node_id)
    return {item: frozenset(nodes) for item, nodes in raw.items()}
