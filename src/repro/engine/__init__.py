"""Shared evaluation engine: indexed pages, compiled rules, batched
candidate extraction.

See :mod:`repro.engine.core` for the cache hierarchy and lifecycle and
:mod:`repro.engine.trie` for the prefix-sharing posting trie used to
evaluate enumerated candidate sets in batch.
"""

from repro.engine.config import EngineConfig, configure, get_config
from repro.engine.core import (
    EvaluationEngine,
    SiteCache,
    get_engine,
    register_extractor,
    resolve_engine,
    text_span_table,
)
from repro.engine.trie import FeatureTrie, build_postings

__all__ = [
    "EngineConfig",
    "EvaluationEngine",
    "FeatureTrie",
    "SiteCache",
    "build_postings",
    "configure",
    "get_config",
    "get_engine",
    "register_extractor",
    "resolve_engine",
    "text_span_table",
]
