"""The shared evaluation engine: one cache hierarchy for the hot path.

Every stage that applies wrappers to pages — BottomUp closure
evaluation, candidate ranking, artifact ``apply()``, batch jobs — used
to re-derive everything per call: per-node feature maps, posting sets,
extraction results.  The engine splits that state by lifetime:

- **page indexes** live on the frozen
  :class:`~repro.htmldom.dom.Document` (built at freeze time, valid
  forever);
- **site-derived structures** (feature indexes, posting tries, text-span
  tables) are memoized on the :class:`~repro.site.Site` itself via
  :meth:`~repro.site.Site.derived` — sites are immutable, so the
  structures are valid for the site's lifetime and shared by *every*
  engine that touches the site (no double builds when a pipeline
  threads its own engine);
- **extraction memos** (wrapper → extracted labels, per site) live
  here, in :class:`EvaluationEngine`, bounded and identity-keyed.

Wrapper classes register a compiled extractor — ``(site, wrapper) ->
labels`` — via :func:`register_extractor`; the engine dispatches
``extract``/``batch_extract`` through the registry and the memo.  The
batch path evaluates an enumerated candidate set in one pass, sharing
posting-trie prefixes and memo hits across candidates.

A default process-wide engine (:func:`get_engine`) serves ad-hoc
``wrapper.extract(site)`` calls; pipelines
(:class:`~repro.framework.ntw.NoiseTolerantWrapper`,
:class:`~repro.api.extractor.Extractor`, the batch layer) thread one
engine instance through learn → rank → apply so every stage hits the
same memos.  Engines pickle empty: caches are transient acceleration
state, never payload.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import Any

from repro.engine.config import get_config
from repro.htmldom.dom import Document, Node
from repro.site import Site
from repro.wrappers.base import Labels, Wrapper
from repro.xpathlang.ast import LocationPath
from repro.xpathlang.compiled import CompiledPath, compile_xpath

#: Wrapper class -> compiled extractor ``(site, wrapper) -> Labels``.
_EXTRACTORS: dict[type, Callable[[Any, Any], Labels]] = {}


def register_extractor(wrapper_cls: type):
    """Class-keyed registration of a compiled extractor.

    Wrapper modules call this at import time; the engine never imports
    wrapper modules, so the dependency arrow stays wrappers → engine.
    A compiled extractor must never call ``wrapper.extract`` — wrapper
    ``extract`` methods delegate to the engine, and the compiler is
    what breaks that loop.
    """

    def register(fn: Callable[[Any, Any], Labels]):
        _EXTRACTORS[wrapper_cls] = fn
        return fn

    return register


def text_span_table(site) -> list[tuple[str, list]]:
    """Per page: ``(source, sorted (start, end, node) span table)``.

    The string-view wrapper families (LR, HLRT) match text nodes by
    their source character context; this table gives them the sourced
    text nodes of every page without re-walking trees.  Memoized on the
    site; duck-typed page collections are served uncached.
    """

    def build(target) -> list[tuple[str, list]]:
        return [(page.source, page.text_spans()) for page in target.pages]

    if isinstance(site, Site):
        return site.derived("text_spans", build)
    return build(site)


class SiteCache:
    """One engine's per-site state: the wrapper → extraction memo.

    (Site-derived evaluation structures live on the site itself, via
    :meth:`repro.site.Site.derived` — see the module docstring.)
    """

    __slots__ = ("site", "extractions")

    def __init__(self, site: Site) -> None:
        self.site = site
        self.extractions: dict[Wrapper, Labels] = {}


class EvaluationEngine:
    """Shared, bounded extraction memos for wrapper evaluation."""

    __slots__ = ("_site_caches",)

    def __init__(self) -> None:
        self._site_caches: OrderedDict[int, SiteCache] = OrderedDict()

    # Engines ride along on picklable pipeline objects (Extractor) into
    # process pools; memos are identity-keyed and transient, so an
    # engine always pickles as a fresh, empty engine.
    def __reduce__(self):
        return (EvaluationEngine, ())

    def site_cache(self, site: Site) -> SiteCache:
        """The memo slot for ``site`` (created on first use).

        Bounded LRU: when ``site_cache_bound`` is reached, only the
        stalest site's memo is evicted — one over-bound insert must not
        cold-start every other site a warm worker is serving.
        """
        key = id(site)
        cached = self._site_caches.get(key)
        if cached is not None and cached.site is site:
            self._site_caches.move_to_end(key)
            return cached
        bound = get_config().site_cache_bound
        while len(self._site_caches) >= bound:
            self._site_caches.popitem(last=False)
        cache = SiteCache(site)
        self._site_caches[key] = cache
        return cache

    # -- wrapper extraction -------------------------------------------------

    def extract(self, corpus: Any, wrapper: Wrapper) -> Labels:
        """Apply ``wrapper`` to ``corpus`` through the compiled path.

        Wrappers with a registered compiler are evaluated through it —
        memoized per ``(site, wrapper)`` for real :class:`Site` corpora,
        uncached for duck-typed page collections.  Wrappers without a
        compiler fall back to their own ``extract`` (safe: only
        compiler-backed wrapper classes delegate ``extract`` here).
        """
        compiler = _EXTRACTORS.get(type(wrapper))
        if compiler is None:
            return wrapper.extract(corpus)
        if not isinstance(corpus, Site):
            return compiler(corpus, wrapper)
        memo = self.site_cache(corpus).extractions
        extracted = memo.get(wrapper)
        if extracted is None:
            extracted = compiler(corpus, wrapper)
            memo[wrapper] = extracted
        return extracted

    def batch_extract(
        self, corpus: Any, wrappers: Sequence[Wrapper]
    ) -> list[Labels]:
        """Extractions for a candidate set, in input order.

        Sharing happens through the site-derived caches: posting-trie
        prefixes common to several candidates are intersected once, and
        candidates already evaluated (this batch or any earlier stage on
        the same engine) are memo hits.
        """
        return [self.extract(corpus, wrapper) for wrapper in wrappers]

    # -- compiled xpath evaluation ------------------------------------------

    def evaluate_path(
        self, path: LocationPath | str | CompiledPath, document: Document
    ) -> list[Node]:
        """Index-backed xpath evaluation (compiled once, memoized per page)."""
        if not isinstance(path, CompiledPath):
            path = compile_xpath(path)
        return path.evaluate(document)

    def clear(self) -> None:
        """Drop every memo (results are unaffected; only speed is)."""
        self._site_caches.clear()


#: The default process-wide engine behind ad-hoc ``wrapper.extract`` calls.
_DEFAULT_ENGINE = EvaluationEngine()


def get_engine() -> EvaluationEngine:
    """The default engine (one per process)."""
    return _DEFAULT_ENGINE


def resolve_engine(engine: EvaluationEngine | None) -> EvaluationEngine:
    """``engine`` itself, or the process default when ``None``."""
    return engine if engine is not None else _DEFAULT_ENGINE
