"""Regular-expression annotation.

The paper's zipcode annotator is "a regular expression identifying
five-digit US zipcodes" (Appendix A.2); its noise comes from five-digit
street numbers and boilerplate.  :data:`ZIPCODE_PATTERN` reproduces it.
"""

from __future__ import annotations

import re

from repro.annotators.base import Annotator
from repro.site import Site
from repro.wrappers.base import Labels

#: Five consecutive digits appearing as their own word.
ZIPCODE_PATTERN = r"(?<!\d)\d{5}(?!\d)"


class RegexAnnotator(Annotator):
    """Labels text nodes whose text matches ``pattern``.

    Args:
        pattern: regular expression searched inside the node text.
        full_match: when true, the *stripped* node text must match the
            pattern in full rather than merely contain a match.
    """

    def __init__(self, pattern: str, full_match: bool = False) -> None:
        self.pattern = re.compile(pattern)
        self.full_match = full_match

    def annotate(self, site: Site) -> Labels:
        found = []
        for node_id in site.iter_text_node_ids():
            text = site.text_node(node_id).text.strip()
            matched = (
                self.pattern.fullmatch(text)
                if self.full_match
                else self.pattern.search(text)
            )
            if matched:
                found.append(node_id)
        return frozenset(found)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegexAnnotator({self.pattern.pattern!r}, full_match={self.full_match})"


def zipcode_annotator() -> RegexAnnotator:
    """The Appendix A zipcode annotator."""
    return RegexAnnotator(ZIPCODE_PATTERN)
