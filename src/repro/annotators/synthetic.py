"""The controlled-noise annotator of Section 7.4.

Takes the set of correct nodes as input and labels each correct node
with probability ``p1`` and each incorrect node with probability ``p2``.
The expected recall is ``p1``; the expected precision is
``n1*p1 / (n1*p1 + n2*p2)`` for ``n1`` correct and ``n2`` incorrect
nodes — so sweeping ``(p1, p2)`` constructs annotators with any desired
precision/recall, which is how Table 1 is produced.
"""

from __future__ import annotations

import random

from repro.annotators.base import Annotator
from repro.site import Site
from repro.wrappers.base import Labels


class OracleNoiseAnnotator(Annotator):
    """Bernoulli corruption of a known gold set."""

    def __init__(self, gold: Labels, p1: float, p2: float, seed: int) -> None:
        if not (0.0 <= p1 <= 1.0 and 0.0 <= p2 <= 1.0):
            raise ValueError(f"probabilities must lie in [0, 1]; got {p1}, {p2}")
        self.gold = gold
        self.p1 = p1
        self.p2 = p2
        self.seed = seed

    def annotate(self, site: Site) -> Labels:
        rng = random.Random(self.seed)
        found = []
        # Iterate in stable site order so the same seed reproduces the
        # same annotation regardless of set iteration order.
        for node_id in site.iter_text_node_ids():
            probability = self.p1 if node_id in self.gold else self.p2
            if rng.random() < probability:
                found.append(node_id)
        return frozenset(found)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OracleNoiseAnnotator(p1={self.p1}, p2={self.p2}, seed={self.seed})"
        )
