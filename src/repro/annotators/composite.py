"""Composition and transformation of annotators."""

from __future__ import annotations

from repro.annotators.base import Annotator
from repro.site import Site
from repro.wrappers.base import Labels


class UnionAnnotator(Annotator):
    """Labels the union of several annotators' labels.

    Useful for combining complementary dictionaries (e.g. several brand
    dictionaries) into one higher-recall annotator for the same type.
    """

    def __init__(self, annotators: list[Annotator]) -> None:
        if not annotators:
            raise ValueError("union of zero annotators")
        self.annotators = list(annotators)

    def annotate(self, site: Site) -> Labels:
        combined: frozenset = frozenset()
        for annotator in self.annotators:
            combined |= annotator.annotate(site)
        return combined

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UnionAnnotator({self.annotators!r})"


class FlippedAnnotator(Annotator):
    """Labels the complement of another annotator's labels.

    Section 6 notes that when ``1 - p > r`` — the annotator picks wrong
    nodes with higher probability than right ones — Eq. 4 is maximised
    by the *complement* of the label set, so one can "flip the output of
    the annotator and use it instead".  The flipped annotator's noise
    profile is ``(p', r') = (r-complement, p-complement)``: a node is in
    the flipped label set exactly when the original annotator skipped it.
    """

    def __init__(self, inner: Annotator) -> None:
        self.inner = inner

    def annotate(self, site: Site) -> Labels:
        return site.text_node_ids() - self.inner.annotate(site)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlippedAnnotator({self.inner!r})"
