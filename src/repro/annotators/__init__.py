"""Automatic annotators — the cheap, noisy supervision of Section 1.

An annotator inspects a site and labels a subset of its text nodes as
(probably) belonging to the target type.  The framework never assumes
annotations are correct; it only needs the annotator's noise profile
``(p, r)``.  Provided implementations:

- :class:`DictionaryAnnotator` — exact-mention matching against an
  entity dictionary (the paper's business-name and track annotators);
- :class:`RegexAnnotator` — pattern matching (the zipcode annotator);
- :class:`OracleNoiseAnnotator` — the Sec. 7.4 controlled annotator that
  labels true nodes with probability ``p1`` and false nodes with
  probability ``p2``, for sweeping annotator quality;
- :class:`UnionAnnotator` — union of other annotators' labels.
"""

from repro.annotators.base import Annotator, measure_noise
from repro.annotators.dictionary import DictionaryAnnotator
from repro.annotators.regex import RegexAnnotator
from repro.annotators.synthetic import OracleNoiseAnnotator
from repro.annotators.composite import FlippedAnnotator, UnionAnnotator

__all__ = [
    "Annotator",
    "DictionaryAnnotator",
    "FlippedAnnotator",
    "OracleNoiseAnnotator",
    "RegexAnnotator",
    "UnionAnnotator",
    "measure_noise",
]
