"""Dictionary-based annotation (paper Sec. 1 and 7).

Labels a text node when its (normalised) text exactly mentions an entry
of the dictionary.  This is the paper's DEALERS annotator (a database of
business names, measured at precision 0.95 / recall 0.24 — low recall
because the dictionary covers only popular names, imperfect precision
because entries collide with addresses and product descriptions) and its
DISC annotator (seed album tracks, precision 0.8 / recall 0.9).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.annotators.base import Annotator
from repro.site import Site
from repro.wrappers.base import Labels


def normalize_mention(text: str) -> str:
    """Canonical form used for dictionary matching: trimmed, case-folded,
    internal whitespace collapsed."""
    return " ".join(text.split()).casefold()


class DictionaryAnnotator(Annotator):
    """Exact-mention matching against a fixed entity dictionary."""

    def __init__(self, entries: Iterable[str]) -> None:
        self.entries = frozenset(
            normalize_mention(entry) for entry in entries if entry.strip()
        )
        if not self.entries:
            raise ValueError("dictionary annotator needs at least one entry")

    def annotate(self, site: Site) -> Labels:
        found = []
        for node_id in site.iter_text_node_ids():
            text = normalize_mention(site.text_node(node_id).text)
            if text in self.entries:
                found.append(node_id)
        return frozenset(found)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DictionaryAnnotator(entries={len(self.entries)})"
