"""Annotator interface and empirical noise measurement."""

from __future__ import annotations

import abc

from repro.site import Site
from repro.wrappers.base import Labels


class Annotator(abc.ABC):
    """Labels a subset of a site's text nodes with one target type."""

    @abc.abstractmethod
    def annotate(self, site: Site) -> Labels:
        """Return the ids of the text nodes this annotator labels."""


def measure_noise(
    labels: Labels, gold: Labels, total_text_nodes: int
) -> tuple[float, float]:
    """Empirical ``(precision, recall)`` of a label set against gold.

    Precision is over the emitted labels; recall over the gold nodes.
    Conventions: an empty label set has precision 1; an empty gold set
    has recall 1 (nothing to find).
    """
    if labels:
        precision = len(labels & gold) / len(labels)
    else:
        precision = 1.0
    if gold:
        recall = len(labels & gold) / len(gold)
    else:
        recall = 1.0
    return precision, recall
