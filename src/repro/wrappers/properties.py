"""Checkers for the *well-behaved* properties of Definition 1.

The enumeration algorithms are only correct for inductors satisfying
fidelity (``L ⊆ phi(L)``), closure (``phi(L) = phi(L ∪ {l})`` for any
``l ∈ phi(L)``) and monotonicity (``L1 ⊆ L2 ⇒ phi(L1) ⊆ phi(L2)``).
These functions verify the properties on concrete label sets; the test
suite drives them with hypothesis-generated inputs for all inductors.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.wrappers.base import Labels, WrapperInductor


def check_fidelity(
    inductor: WrapperInductor, corpus: Any, labels: Labels
) -> bool:
    """``L ⊆ phi(L)``."""
    if not labels:
        return True
    return labels <= inductor.induce(corpus, labels).extract(corpus)


def check_closure(
    inductor: WrapperInductor, corpus: Any, labels: Labels
) -> bool:
    """``l ∈ phi(L) ⇒ phi(L) = phi(L ∪ {l})`` for every extracted ``l``."""
    if not labels:
        return True
    extracted = inductor.induce(corpus, labels).extract(corpus)
    universe = inductor.candidates(corpus)
    for extra in extracted & universe:
        grown = inductor.induce(corpus, labels | {extra}).extract(corpus)
        if grown != extracted:
            return False
    return True


def check_monotonicity(
    inductor: WrapperInductor, corpus: Any, labels: Labels
) -> bool:
    """``L1 ⊆ L2 ⇒ phi(L1) ⊆ phi(L2)`` over one-element extensions and
    all 2-subsets (a practical, falsifiable approximation of the full
    quantifier)."""
    if not labels:
        return True
    full = inductor.induce(corpus, labels).extract(corpus)
    label_list = sorted(labels)
    subsets = [frozenset(label_list[:-1])] if len(label_list) > 1 else []
    subsets.extend(
        frozenset(pair) for pair in itertools.combinations(label_list, 2)
    )
    subsets.extend(frozenset({l}) for l in label_list)
    for subset in subsets:
        if not subset:
            continue
        part = inductor.induce(corpus, subset).extract(corpus)
        if not part <= full:
            return False
    return True


def is_well_behaved(
    inductor: WrapperInductor, corpus: Any, labels: Labels
) -> bool:
    """All three Definition 1 properties on the given label set."""
    return (
        check_fidelity(inductor, corpus, labels)
        and check_closure(inductor, corpus, labels)
        and check_monotonicity(inductor, corpus, labels)
    )
