"""HLRT wrappers — WIEN's head/tail extension of LR (paper Sec. 5).

An HLRT rule adds a *head* string ``H`` and a *tail* string ``T`` to the
``(left, right)`` delimiter pair: extraction only applies between the
first occurrence of ``H`` and the first subsequent occurrence of ``T`` on
each page, which lets the wrapper ignore navigation chrome and footers
that happen to contain matching delimiters.

Induction: ``left``/``right`` as in LR; ``H`` is the longest string
that ends immediately before the page's first label and is shared by
every page (the longest common suffix of the pre-first-label page
prefixes — its first occurrence is therefore at or before the first
item, so it can only exclude leading chrome, never data).  ``T`` must
satisfy WIEN's consistency constraint — it has to occur *after the last
item* on every page but *never between items*, otherwise extraction
stops mid-list — so it is chosen from whole-tag candidate substrings of
the post-last-label region, taking the first candidate that never
appears between the first and last label of any labeled page.  Empty
``H``/``T`` disable the respective restriction, so HLRT degrades
gracefully to LR.  The paper notes the enumeration/ranking analysis of
LR extends to HLRT; this class is provided as that extension and is
exercised by tests and an ablation bench rather than the headline
figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import get_engine, register_extractor, text_span_table
from repro.htmldom.dom import NodeId, TextNode
from repro.site import Site
from repro.wrappers.base import Labels, Wrapper, WrapperInductor, spec_kind
from repro.wrappers.lr import (
    LRInductor,
    _common_prefix,
    _common_suffix,
)

#: Cap on head/tail length, mirroring the LR delimiter cap.
MAX_CONTEXT_LENGTH = 256


@spec_kind("hlrt")
@dataclass(frozen=True, slots=True)
class HLRTWrapper(Wrapper):
    """An HLRT rule: head, left, right, tail."""

    head: str
    left: str
    right: str
    tail: str

    def to_spec(self) -> dict:
        return {
            "kind": "hlrt",
            "head": self.head,
            "left": self.left,
            "right": self.right,
            "tail": self.tail,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "HLRTWrapper":
        return cls(
            head=str(spec["head"]),
            left=str(spec["left"]),
            right=str(spec["right"]),
            tail=str(spec["tail"]),
        )

    def extract(self, corpus: Site) -> Labels:
        """Windowed delimiter matching, via the engine's span table."""
        return get_engine().extract(corpus, self)

    def rule(self) -> str:
        return (
            f"HLRT(head={self.head!r}, left={self.left!r}, "
            f"right={self.right!r}, tail={self.tail!r})"
        )


@register_extractor(HLRTWrapper)
def _extract_hlrt(site: Site, wrapper: HLRTWrapper) -> Labels:
    """Compiled extraction: per-page head/tail window over the cached
    span table, then the LR delimiter test on the raw source."""
    left = wrapper.left
    left_len = len(left)
    found: list[NodeId] = []
    for source, spans in text_span_table(site):
        window_start = 0
        window_end = len(source)
        if wrapper.head:
            at = source.find(wrapper.head)
            if at == -1:
                continue
            window_start = at + len(wrapper.head)
        if wrapper.tail:
            at = source.find(wrapper.tail, window_start)
            if at != -1:
                window_end = at
        for start, end, node in spans:
            if start < window_start or end > window_end:
                continue
            if start < left_len:
                continue
            if source.startswith(left, start - left_len) and source.startswith(
                wrapper.right, end
            ):
                found.append(node.node_id)
    return frozenset(found)


class HLRTInductor(WrapperInductor):
    """Induces :class:`HLRTWrapper` rules from labeled text nodes."""

    def __init__(self, max_context_length: int = MAX_CONTEXT_LENGTH) -> None:
        self.max_context_length = max_context_length
        self._lr = LRInductor(max_delimiter_length=max_context_length)

    def induce(self, corpus: Site, labels: Labels) -> HLRTWrapper:
        if not labels:
            raise ValueError("cannot induce a wrapper from zero labels")
        lr = self._lr.induce(corpus, labels)
        head = self._common_head(corpus, labels)
        tail = self._common_tail(corpus, labels)
        return HLRTWrapper(head=head, left=lr.left, right=lr.right, tail=tail)

    def candidates(self, corpus: Site) -> Labels:
        return corpus.text_node_ids()

    def _common_head(self, corpus: Site, labels: Labels) -> str:
        """Longest common suffix of the page prefixes before the first label."""
        prefixes: list[str] = []
        for page_index, first_start in self._label_bounds(corpus, labels, first=True):
            source = corpus.pages[page_index].source
            prefixes.append(
                source[max(0, first_start - self.max_context_length) : first_start]
            )
        if not prefixes:
            return ""
        return _common_suffix(iter(prefixes))

    def _common_tail(self, corpus: Site, labels: Labels) -> str:
        """A tag substring after every page's last label, never between labels.

        Candidates are whole tags (``</table>``, ``<div ...`` prefixes)
        drawn from the first labeled page's post-region in order of
        appearance; the first candidate consistent with every labeled
        page wins.  Returns ``""`` (no tail restriction) when no
        consistent candidate exists.
        """
        first_bounds = dict(self._label_bounds(corpus, labels, first=True))
        last_bounds = dict(self._label_bounds(corpus, labels, first=False))
        if not last_bounds:
            return ""
        regions = []
        posts = []
        for page_index, last_end in sorted(last_bounds.items()):
            source = corpus.pages[page_index].source
            first_start = first_bounds[page_index]
            regions.append(source[first_start:last_end])
            posts.append(source[last_end : last_end + 4 * self.max_context_length])
        for candidate in _tag_candidates(posts[0]):
            if all(candidate in post for post in posts) and not any(
                candidate in region for region in regions
            ):
                return candidate
        return ""

    def _label_bounds(
        self, corpus: Site, labels: Labels, first: bool
    ) -> list[tuple[int, int]]:
        """Per labeled page: (page, start of first label) or (page, end of last)."""
        return _label_bounds(corpus, labels, first)


def _tag_candidates(post: str) -> list[str]:
    """Whole-tag substrings of ``post`` in order of appearance."""
    candidates: list[str] = []
    position = 0
    while True:
        open_at = post.find("<", position)
        if open_at == -1:
            break
        close_at = post.find(">", open_at)
        if close_at == -1:
            break
        candidates.append(post[open_at : close_at + 1])
        position = open_at + 1
    return candidates


def _label_bounds(
    corpus: Site, labels: Labels, first: bool
) -> list[tuple[int, int]]:
    """Per labeled page: (page, start of first label) or (page, end of last)."""
    bounds: dict[int, int] = {}
    for node_id in labels:
        node = corpus.text_node(node_id)
        if node.start < 0:
            continue
        if first:
            current = bounds.get(node_id.page)
            if current is None or node.start < current:
                bounds[node_id.page] = node.start
        else:
            current = bounds.get(node_id.page)
            if current is None or node.end > current:
                bounds[node_id.page] = node.end
    return sorted(bounds.items())
