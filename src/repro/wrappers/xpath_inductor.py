"""The XPATH wrapper inductor (Dalvi et al., SIGMOD'09; paper Sec. 5).

Every text node is described by the properties of its root path: at
position 1 (its parent element), position 2 (grandparent), and so on up
to the page root, the features are the tag name, the child number (the
node's 1-based index among same-tag siblings — the semantics of the
xpath filter ``td[2]``), and each HTML attribute.  Induction is the
intersection of the label feature sets — the most specific rule in the
fragment consistent with all labels — and extraction matches any text
node whose features contain the intersection.

The learned wrapper renders to an xpath of the supported fragment
(:meth:`XPathWrapper.to_xpath`); rendering is exact (evaluating the
xpath reproduces ``extract``) whenever every position carrying a
child-number constraint also carries a tag constraint, which
:attr:`XPathWrapper.exactly_renderable` reports.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass

from repro.engine import (
    FeatureTrie,
    build_postings,
    get_engine,
    register_extractor,
)
from repro.htmldom.dom import Document, ElementNode, NodeId, TextNode
from repro.site import Site
from repro.wrappers.base import (
    Attribute,
    FeatureBasedInductor,
    Labels,
    Wrapper,
    spec_kind,
)
from repro.xpathlang.ast import (
    AttributePredicate,
    Axis,
    LocationPath,
    PositionPredicate,
    Predicate,
    Step,
)

#: Feature attributes are ``(position, kind)`` with position >= 1 counted
#: from the text node's parent upward; kind is ``"tag"``, ``"childnum"``
#: or ``"@<attrname>"``.
PathAttribute = tuple[int, str]


def _node_features(node: TextNode) -> dict[PathAttribute, Hashable]:
    """Root-path feature map of a text node."""
    features: dict[PathAttribute, Hashable] = {}
    position = 0
    for ancestor in node.ancestors():
        position += 1
        features[(position, "tag")] = ancestor.tag
        features[(position, "childnum")] = ancestor.child_number()
        for name, value in ancestor.attrs.items():
            features[(position, "@" + name)] = value
    return features


class _FeatureIndex:
    """Per-site cache of text-node feature maps (computed once per page).

    ``as_set`` holds the same features as frozensets of items so that
    wrapper matching is a single C-speed subset test.  Feature maps
    depend only on the text node's parent chain, so nodes sharing a
    parent share one map (and one frozenset) — the dicts are treated as
    read-only throughout the inductor.
    """

    __slots__ = ("by_node", "as_set")

    def __init__(self, site: Site) -> None:
        self.by_node: dict[NodeId, dict[PathAttribute, Hashable]] = {}
        self.as_set: dict[NodeId, frozenset] = {}
        for page in site.pages:
            by_parent: dict[int, tuple[dict, frozenset]] = {}
            for node in page.nodes:
                if not isinstance(node, TextNode):
                    continue
                key = id(node.parent)
                shared = by_parent.get(key)
                if shared is None:
                    features = _node_features(node)
                    shared = (features, frozenset(features.items()))
                    by_parent[key] = shared
                self.by_node[node.node_id] = shared[0]
                self.as_set[node.node_id] = shared[1]


def _build_trie(site: Site) -> FeatureTrie:
    # Arena-attached sites ship their feature postings pre-packed in the
    # mapped segment: serve the trie straight off those flat arrays —
    # no feature-map pass, no posting inversion, postings materialize
    # lazily per item on first lookup.
    binding = getattr(site, "_arena", None)
    if (
        binding is not None
        and binding.reader is not None
        and binding.reader.has("feat.offs")
    ):
        from repro.arena.sitepack import ArenaPostings, arena_text_universe

        # Postings and universe stay in packed int space (page<<32|pre):
        # the trie intersects plain int frozensets at C speed and the
        # engine decodes only the final (small) result set to NodeIds.
        return FeatureTrie(
            ArenaPostings(binding.reader, binding.pool),
            universe=arena_text_universe(binding.reader),
        )
    index = _index_for(site)
    return FeatureTrie(
        build_postings(index.as_set), universe=frozenset(index.as_set)
    )


def _site_trie(site: Site) -> FeatureTrie:
    """The site's posting trie (built from the feature index on demand)."""
    if isinstance(site, Site):
        return site.derived("xpath.trie", _build_trie)
    return _build_trie(site)


def _index_for(site: Site) -> _FeatureIndex:
    """Feature index for ``site``, memoized on the site itself.

    Both induction (feature maps, attribute streams) and extraction
    (posting trie) read this one structure, whatever engine instance is
    driving — duck-typed page collections are served uncached.
    """
    if isinstance(site, Site):
        return site.derived("xpath.features", _FeatureIndex)
    return _FeatureIndex(site)


@spec_kind("xpath")
@dataclass(frozen=True)
class XPathWrapper(Wrapper):
    """An XPATH rule: a frozen root-path feature set."""

    features: frozenset[tuple[PathAttribute, Hashable]]

    def to_spec(self) -> dict:
        """Portable spec: features as sorted ``[position, kind, value]`` rows.

        Feature values are tag names / attribute values (strings) or
        child numbers (ints), so the rows survive a JSON round-trip
        unchanged.
        """
        rows = sorted(
            [position, kind, value]
            for (position, kind), value in self.features
        )
        return {"kind": "xpath", "features": rows}

    @classmethod
    def from_spec(cls, spec: dict) -> "XPathWrapper":
        return cls(
            features=frozenset(
                ((int(position), str(kind)), value)
                for position, kind, value in spec["features"]
            )
        )

    def extract(self, corpus: Site) -> Labels:
        """Extraction through the engine: a posting-trie intersection.

        Equivalent (node for node) to testing ``self.features`` as a
        subset of every text node's feature set; the engine memoizes
        the result per ``(site, wrapper)`` and shares trie prefixes
        with every other wrapper evaluated on the site.
        """
        return get_engine().extract(corpus, self)

    @property
    def exactly_renderable(self) -> bool:
        """True when :meth:`to_xpath` evaluates to exactly ``extract``.

        A child-number constraint at a position with no tag constraint
        renders as an unfiltered ``*`` step, which is strictly more
        general than the feature test.
        """
        positions_with_childnum = {
            pos for (pos, kind), _ in self.features if kind == "childnum"
        }
        positions_with_tag = {
            pos for (pos, kind), _ in self.features if kind == "tag"
        }
        return positions_with_childnum <= positions_with_tag

    def to_xpath(self) -> LocationPath:
        """Render the feature set as a path in the supported fragment."""
        by_position: dict[int, dict[str, Hashable]] = {}
        for (position, kind), value in self.features:
            by_position.setdefault(position, {})[kind] = value
        max_position = max(by_position, default=0)
        steps: list[Step] = []
        for position in range(max_position, 0, -1):
            kinds = by_position.get(position, {})
            predicates: list[Predicate] = []
            test = str(kinds.get("tag", "*"))
            if "childnum" in kinds and "tag" in kinds:
                predicates.append(PositionPredicate(int(kinds["childnum"])))
            for kind, value in sorted(kinds.items()):
                if kind.startswith("@"):
                    predicates.append(
                        AttributePredicate(name=kind[1:], value=str(value))
                    )
            axis = Axis.DESCENDANT if position == max_position else Axis.CHILD
            steps.append(Step(axis=axis, test=test, predicates=tuple(predicates)))
        if not steps:
            steps = [Step(axis=Axis.DESCENDANT, test="*", predicates=())]
        return LocationPath(steps=tuple(steps), selects_text=True)

    def rule(self) -> str:
        return str(self.to_xpath())


@register_extractor(XPathWrapper)
def _extract_xpath(site: Site, wrapper: XPathWrapper) -> Labels:
    """Compiled extraction: intersect the posting sets of the rule's
    features via the site's shared prefix trie."""
    trie = _site_trie(site)
    result = trie.lookup(wrapper.features)
    # Arena tries intersect packed int codes; decode the final (small)
    # result set back to NodeIds at this one boundary.
    decode = getattr(trie.postings, "decode_result", None)
    return decode(result) if decode is not None else result


class XPathInductor(FeatureBasedInductor):
    """Induces :class:`XPathWrapper` rules from labeled text nodes."""

    def feature_map(self, corpus: Site, node_id: NodeId) -> dict[Attribute, Hashable]:
        return _index_for(corpus).by_node[node_id]

    def attribute_stream(self, corpus: Site, labels: Labels) -> Iterator[Attribute]:
        """All attributes any label carries (finite: bounded by tree depth)."""
        seen: set[Attribute] = set()
        index = _index_for(corpus)
        for node_id in sorted(labels):
            for attr in index.by_node[node_id]:
                if attr not in seen:
                    seen.add(attr)
                    yield attr

    def wrapper_for_features(
        self, corpus: Site, features: dict[Attribute, Hashable]
    ) -> XPathWrapper:
        return XPathWrapper(features=frozenset(features.items()))

    def candidates(self, corpus: Site) -> Labels:
        return corpus.text_node_ids()
