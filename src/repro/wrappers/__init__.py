"""Wrapper languages and their inductors.

Three concrete inductors are provided, all *well-behaved* in the sense of
Definition 1 (fidelity, closure, monotonicity) and all *feature-based* in
the sense of Section 4.2:

- :class:`~repro.wrappers.table.TableInductor` — the paper's pedagogical
  TABLE inductor over an abstract grid (Examples 1–3);
- :class:`~repro.wrappers.lr.LRInductor` — the WIEN LR family: a pair of
  delimiter strings over the raw character stream;
- :class:`~repro.wrappers.xpath_inductor.XPathInductor` — root-path
  feature intersection rendered as an xpath of the supported fragment.

``HLRTInductor`` extends LR with head/tail context (paper Sec. 5 notes the
analysis extends to HLRT).
"""

from repro.wrappers.base import (
    FeatureBasedInductor,
    Wrapper,
    WrapperInductor,
    spec_kind,
    spec_kinds,
    wrapper_from_spec,
)
from repro.wrappers.hlrt import HLRTInductor, HLRTWrapper
from repro.wrappers.lr import LRInductor, LRWrapper
from repro.wrappers.properties import (
    check_closure,
    check_fidelity,
    check_monotonicity,
    is_well_behaved,
)
from repro.wrappers.table import Grid, TableInductor, TableWrapper
from repro.wrappers.xpath_inductor import XPathInductor, XPathWrapper

__all__ = [
    "FeatureBasedInductor",
    "Grid",
    "HLRTInductor",
    "HLRTWrapper",
    "LRInductor",
    "LRWrapper",
    "TableInductor",
    "TableWrapper",
    "Wrapper",
    "WrapperInductor",
    "XPathInductor",
    "XPathWrapper",
    "check_closure",
    "check_fidelity",
    "check_monotonicity",
    "is_well_behaved",
    "spec_kind",
    "spec_kinds",
    "wrapper_from_spec",
]
