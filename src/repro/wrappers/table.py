"""The TABLE wrapper inductor of the paper's Examples 1–3.

TABLE works on an abstract grid of cells.  Induction from labels:

- a single label generalizes to just itself;
- labels all in one row (or one column) generalize to that row (column);
- labels spanning at least two rows *and* two columns generalize to the
  whole table.

Example 3 shows TABLE is feature-based with attributes ``row`` and
``col``; this implementation is exactly that formulation, so the same
code path exercises both the blackbox (BottomUp) and the feature-based
(TopDown) enumeration algorithms in tests.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass

from repro.htmldom.dom import NodeId
from repro.wrappers.base import (
    Attribute,
    FeatureBasedInductor,
    Labels,
    Wrapper,
    spec_kind,
)


class Grid:
    """An ``n_rows x n_cols`` grid of cells, the corpus TABLE works on.

    Cells are identified by :class:`NodeId` with ``page=0`` and
    ``preorder = row * n_cols + col`` (both zero-based), so label sets on
    grids use the same currency as label sets on HTML sites.
    """

    __slots__ = ("n_rows", "n_cols")

    def __init__(self, n_rows: int, n_cols: int) -> None:
        if n_rows <= 0 or n_cols <= 0:
            raise ValueError("grid dimensions must be positive")
        self.n_rows = n_rows
        self.n_cols = n_cols

    def cell(self, row: int, col: int) -> NodeId:
        """Node id of the cell at (row, col), zero-based."""
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise IndexError(f"cell ({row}, {col}) outside {self!r}")
        return NodeId(page=0, preorder=row * self.n_cols + col)

    def position(self, node_id: NodeId) -> tuple[int, int]:
        """Inverse of :meth:`cell`."""
        return divmod(node_id.preorder, self.n_cols)

    def all_cells(self) -> frozenset[NodeId]:
        return frozenset(
            NodeId(page=0, preorder=i) for i in range(self.n_rows * self.n_cols)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Grid {self.n_rows}x{self.n_cols}>"


@spec_kind("table")
@dataclass(frozen=True, slots=True)
class TableWrapper(Wrapper):
    """A TABLE rule: a fixed row, a fixed column, a single cell, or everything.

    ``row``/``col`` are zero-based; ``None`` means unconstrained.  Both
    ``None`` selects the whole table; both set selects one cell.
    """

    row: int | None
    col: int | None

    def to_spec(self) -> dict:
        return {"kind": "table", "row": self.row, "col": self.col}

    @classmethod
    def from_spec(cls, spec: dict) -> "TableWrapper":
        row = spec["row"]
        col = spec["col"]
        return cls(
            row=int(row) if row is not None else None,
            col=int(col) if col is not None else None,
        )

    def extract(self, corpus: Grid) -> Labels:
        rows = range(corpus.n_rows) if self.row is None else (self.row,)
        cols = range(corpus.n_cols) if self.col is None else (self.col,)
        return frozenset(corpus.cell(r, c) for r in rows for c in cols)

    def rule(self) -> str:
        if self.row is None and self.col is None:
            return "table"
        if self.row is None:
            return f"col[{self.col}]"
        if self.col is None:
            return f"row[{self.row}]"
        return f"cell[{self.row},{self.col}]"


class TableInductor(FeatureBasedInductor):
    """Feature-based TABLE inductor (attributes ``row`` and ``col``)."""

    def feature_map(self, corpus: Grid, node_id: NodeId) -> dict[Attribute, Hashable]:
        row, col = corpus.position(node_id)
        return {"row": row, "col": col}

    def attribute_stream(self, corpus: Grid, labels: Labels) -> Iterator[Attribute]:
        yield "row"
        yield "col"

    def wrapper_for_features(
        self, corpus: Grid, features: dict[Attribute, Hashable]
    ) -> TableWrapper:
        return TableWrapper(row=features.get("row"), col=features.get("col"))

    def candidates(self, corpus: Grid) -> Labels:
        return corpus.all_cells()
