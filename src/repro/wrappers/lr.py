"""The WIEN LR wrapper family (Kushmerick et al.), Section 5 of the paper.

An LR wrapper is a pair of delimiter strings ``(left, right)``.  The
paper proves LR is feature-based: node ``n`` has attribute ``Lk`` = the
``k`` characters immediately preceding it in the document and ``Rk`` =
the ``k`` characters immediately following it.  Induction is therefore
"longest common preceding string, longest common following string".

Following that characterization, extraction here is evaluated over the
text-node universe: a text node matches ``(left, right)`` when its
source-character context ends with ``left`` and continues with ``right``.
This keeps LR provably well-behaved (it is a feature intersection) while
preserving the paper's headline behaviour — with noisy labels the common
delimiters collapse to short, promiscuous strings (often a single ``>``
/ ``<``) and the wrapper grossly over-generalizes.  The classic
WIEN "scan for minimal delimited substrings" procedure is also provided
(:meth:`LRWrapper.scan_page`) for completeness and examples.

Delimiter length is capped (:data:`MAX_DELIMITER_LENGTH`) — listing pages
repeat markup, so common contexts can otherwise grow with page size and
slow induction without changing any experimental outcome.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.engine import get_engine, register_extractor, text_span_table
from repro.htmldom.dom import NodeId, TextNode
from repro.site import Site
from repro.wrappers.base import (
    Attribute,
    FeatureBasedInductor,
    Labels,
    Wrapper,
    spec_kind,
)

#: Upper bound on delimiter length considered during induction.
MAX_DELIMITER_LENGTH = 256


@spec_kind("lr")
@dataclass(frozen=True, slots=True)
class LRWrapper(Wrapper):
    """An LR rule: the pair of delimiter strings."""

    left: str
    right: str

    def to_spec(self) -> dict:
        return {"kind": "lr", "left": self.left, "right": self.right}

    @classmethod
    def from_spec(cls, spec: dict) -> "LRWrapper":
        return cls(left=str(spec["left"]), right=str(spec["right"]))

    def extract(self, corpus: Site) -> Labels:
        """Text nodes whose immediate context matches both delimiters.

        Runs through the engine: the per-site span table replaces the
        tree walk and the result is memoized per ``(site, wrapper)``.
        """
        return get_engine().extract(corpus, self)

    def scan_page(self, source: str) -> list[tuple[int, int]]:
        """Classic WIEN extraction: minimal ``left``..``right`` spans.

        Scans the raw string, returning ``[start, end)`` spans of the
        minimal substrings delimited by the pair.  Provided for
        demonstration; the framework's evaluation uses :meth:`extract`.
        """
        if not self.left or not self.right:
            return []
        spans: list[tuple[int, int]] = []
        cursor = 0
        while True:
            open_at = source.find(self.left, cursor)
            if open_at == -1:
                break
            start = open_at + len(self.left)
            close_at = source.find(self.right, start)
            if close_at == -1:
                break
            spans.append((start, close_at))
            cursor = close_at + len(self.right)
        return spans

    def rule(self) -> str:
        return f"LR({self.left!r}, {self.right!r})"


@register_extractor(LRWrapper)
def _extract_lr(site: Site, wrapper: LRWrapper) -> Labels:
    """Compiled extraction over the site's cached text-span table."""
    left = wrapper.left
    right = wrapper.right
    left_len = len(left)
    found: list[NodeId] = []
    for source, spans in text_span_table(site):
        for start, end, node in spans:
            if start < left_len:
                continue
            if source.startswith(left, start - left_len) and source.startswith(
                right, end
            ):
                found.append(node.node_id)
    return frozenset(found)


class LRInductor(FeatureBasedInductor):
    """Induces :class:`LRWrapper` rules from labeled text nodes."""

    def __init__(self, max_delimiter_length: int = MAX_DELIMITER_LENGTH) -> None:
        self.max_delimiter_length = max_delimiter_length

    # -- blackbox interface -------------------------------------------------

    def induce(self, corpus: Site, labels: Labels) -> LRWrapper:
        if not labels:
            raise ValueError("cannot induce a wrapper from zero labels")
        contexts = [self._context(corpus, node_id) for node_id in sorted(labels)]
        left = _common_suffix((before for before, _ in contexts))
        right = _common_prefix((after for _, after in contexts))
        return LRWrapper(left=left, right=right)

    def candidates(self, corpus: Site) -> Labels:
        return corpus.text_node_ids()

    # -- feature-based interface --------------------------------------------

    def feature_map(self, corpus: Site, node_id: NodeId) -> dict[Attribute, Hashable]:
        before, after = self._context(corpus, node_id)
        features: dict[Attribute, Hashable] = {}
        for k in range(1, len(before) + 1):
            features[("L", k)] = before[-k:]
        for k in range(1, len(after) + 1):
            features[("R", k)] = after[:k]
        return features

    def value(self, corpus: Site, node_id: NodeId, attr: Attribute) -> Hashable | None:
        side, k = attr
        before, after = self._context(corpus, node_id)
        if side == "L":
            return before[-k:] if len(before) >= k else None
        return after[:k] if len(after) >= k else None

    def attribute_stream(self, corpus: Site, labels: Labels) -> Iterator[Attribute]:
        """Yield ``L1..Lk`` and ``R1..Rk`` up to the separating depth.

        Two labels stop sharing ``Lk`` once ``k`` exceeds the length of
        their longest common preceding string, so attributes beyond
        ``1 + max pairwise common length`` can never subdivide further.
        """
        contexts = [self._context(corpus, node_id) for node_id in sorted(labels)]
        befores = [before for before, _ in contexts]
        afters = [after for _, after in contexts]
        for k in range(1, _separation_depth(befores, reverse=True) + 1):
            yield ("L", k)
        for k in range(1, _separation_depth(afters, reverse=False) + 1):
            yield ("R", k)

    def wrapper_for_features(
        self, corpus: Site, features: dict[Attribute, Hashable]
    ) -> LRWrapper:
        left = ""
        right = ""
        for (side, k), value in features.items():
            if side == "L" and k > len(left):
                left = str(value)
            elif side == "R" and k > len(right):
                right = str(value)
        return LRWrapper(left=left, right=right)

    # -- helpers --------------------------------------------------------------

    def _context(self, corpus: Site, node_id: NodeId) -> tuple[str, str]:
        """(preceding, following) character context of a text node.

        Contexts are cached on the site (keyed by the delimiter cap,
        which changes the slices) — induction revisits the same label
        contexts throughout an enumeration.
        """
        if isinstance(corpus, Site):
            contexts = corpus.derived(
                ("lr.contexts", self.max_delimiter_length), lambda site: {}
            )
            cached = contexts.get(node_id)
            if cached is None:
                cached = self._compute_context(corpus, node_id)
                contexts[node_id] = cached
            return cached
        return self._compute_context(corpus, node_id)

    def _compute_context(self, corpus: Site, node_id: NodeId) -> tuple[str, str]:
        node = corpus.text_node(node_id)
        source = corpus.pages[node_id.page].source
        limit = self.max_delimiter_length
        before = source[max(0, node.start - limit) : node.start]
        after = source[node.end : node.end + limit]
        return before, after


def _common_suffix(strings: Iterator[str] | Any) -> str:
    """Longest common suffix of the given strings."""
    iterator = iter(strings)
    try:
        common = next(iterator)
    except StopIteration:
        return ""
    for text in iterator:
        limit = min(len(common), len(text))
        k = 0
        while k < limit and common[-1 - k] == text[-1 - k]:
            k += 1
        common = common[len(common) - k :] if k else ""
        if not common:
            break
    return common


def _common_prefix(strings: Iterator[str] | Any) -> str:
    """Longest common prefix of the given strings."""
    iterator = iter(strings)
    try:
        common = next(iterator)
    except StopIteration:
        return ""
    for text in iterator:
        limit = min(len(common), len(text))
        k = 0
        while k < limit and common[k] == text[k]:
            k += 1
        common = common[:k]
        if not common:
            break
    return common


def _separation_depth(strings: list[str], reverse: bool) -> int:
    """Smallest depth beyond which no pair of strings can be subdivided.

    For each pair, the separating depth is one past the length of their
    common prefix (suffix when ``reverse``); the stream must cover the
    maximum over pairs, bounded by the longest string.
    """
    if len(strings) <= 1:
        return min(1, len(strings[0])) if strings else 0
    depth = 1
    for i, a in enumerate(strings):
        for b in strings[i + 1 :]:
            limit = min(len(a), len(b))
            k = 0
            if reverse:
                while k < limit and a[-1 - k] == b[-1 - k]:
                    k += 1
            else:
                while k < limit and a[k] == b[k]:
                    k += 1
            # Separation happens at k + 1 (a differing character or one
            # string running out); cap by the longer string's length.
            depth = max(depth, min(k + 1, max(len(a), len(b))))
    return depth
