"""Core wrapper interfaces.

A :class:`Wrapper` is a learned rule; applying it to a corpus yields the
set of extracted node ids (for single-type extraction the paper
identifies a wrapper with its output, Sec. 4).  A
:class:`WrapperInductor` learns a wrapper from a set of labeled node ids.

Corpora are duck-typed: the HTML inductors work on
:class:`repro.site.Site`, the pedagogical TABLE inductor works on
:class:`repro.wrappers.table.Grid`.  All label and extraction sets are
``frozenset[NodeId]`` so they can be hashed, compared and used as keys.

:class:`FeatureBasedInductor` is the Section 4.2 specialization: every
candidate node carries a feature map (attribute -> value, at most one
value per attribute per node), induction is feature-set intersection, and
``subdivision`` is the primitive the TopDown enumeration algorithm needs.
"""

from __future__ import annotations

import abc
from collections.abc import Hashable, Iterable, Iterator
from typing import Any, ClassVar

from repro.htmldom.dom import NodeId

Labels = frozenset[NodeId]

#: Registered spec kinds -> wrapper class, populated by :func:`spec_kind`.
_SPEC_KINDS: dict[str, type["Wrapper"]] = {}


def spec_kind(kind: str):
    """Class decorator registering a wrapper class under a spec ``kind``.

    The kind is the dispatch key of the portable wrapper-spec format
    (see :meth:`Wrapper.to_spec`); registration makes the class
    reachable from :func:`wrapper_from_spec`.
    """

    def register(cls: type["Wrapper"]) -> type["Wrapper"]:
        existing = _SPEC_KINDS.get(kind)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"spec kind {kind!r} already registered to {existing.__name__}"
            )
        cls.SPEC_KIND = kind
        _SPEC_KINDS[kind] = cls
        return cls

    return register


def spec_kinds() -> tuple[str, ...]:
    """All registered wrapper spec kinds (sorted)."""
    return tuple(sorted(_SPEC_KINDS))


def wrapper_from_spec(spec: dict) -> "Wrapper":
    """Rebuild a wrapper from its portable spec (``to_spec`` inverse)."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ValueError(f"wrapper spec must be a dict with a 'kind'; got {spec!r}")
    kind = spec["kind"]
    cls = _SPEC_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown wrapper spec kind {kind!r} (known: {', '.join(spec_kinds())})"
        )
    return cls.from_spec(spec)

#: A feature attribute (hashable, inductor-specific), e.g. ``("L", 3)``
#: for "the 3 characters preceding the node" or ``(2, "tag")`` for "the
#: tag name of the grandparent".
Attribute = Hashable


class Wrapper(abc.ABC):
    """A learned extraction rule.

    Concrete wrappers must be immutable, hashable and comparable by
    *rule* (two wrappers with the same rule are the same wrapper); the
    enumeration algorithms rely on this for deduplication.

    Wrappers are also *portable*: :meth:`to_spec` captures the rule as a
    JSON-safe dict (with a ``kind`` dispatch key) and
    :func:`wrapper_from_spec` rebuilds it, so a learned rule can be
    saved once and re-applied to new pages without relearning.
    """

    #: Dispatch key of the portable spec format, set by :func:`spec_kind`.
    SPEC_KIND: ClassVar[str | None] = None

    @abc.abstractmethod
    def extract(self, corpus: Any) -> Labels:
        """Apply the rule; return the extracted node ids."""

    @abc.abstractmethod
    def rule(self) -> str:
        """Human-readable form of the rule (e.g. an xpath)."""

    def to_spec(self) -> dict:
        """The rule as a JSON-safe dict; inverse of :func:`wrapper_from_spec`."""
        raise NotImplementedError(
            f"{type(self).__name__} does not define a portable spec"
        )

    @classmethod
    def from_spec(cls, spec: dict) -> "Wrapper":
        """Rebuild a wrapper of this class from its spec dict."""
        raise NotImplementedError(
            f"{cls.__name__} does not define a portable spec"
        )


class WrapperInductor(abc.ABC):
    """Learns a wrapper from (noise-free) labeled examples.

    The noise-tolerant framework (Sec. 3) treats the inductor as a
    blackbox: it only relies on the *well-behaved* properties of
    Definition 1, which all inductors in this package satisfy.
    """

    @abc.abstractmethod
    def induce(self, corpus: Any, labels: Labels) -> Wrapper:
        """Learn a wrapper from ``labels`` (non-empty)."""

    @abc.abstractmethod
    def candidates(self, corpus: Any) -> Labels:
        """The universe of extractable node ids in ``corpus``."""

    def closure(self, corpus: Any, labels: Labels, universe: Labels) -> Labels:
        """``phi-breve(s) = phi(s) ∩ L`` — the closure operator of Sec. 4.1."""
        return self.induce(corpus, labels).extract(corpus) & universe


class FeatureBasedInductor(WrapperInductor):
    """A wrapper inductor defined by per-node feature maps (Sec. 4.2).

    ``phi(L) = { n | F(n) ⊇ ∩_{l∈L} F(l) }`` over the candidate universe.
    Subclasses supply the feature maps (or per-attribute values) and a
    wrapper factory for the intersected feature set; this base class
    provides induction and ``subdivision``.
    """

    @abc.abstractmethod
    def feature_map(self, corpus: Any, node_id: NodeId) -> dict[Attribute, Hashable]:
        """All features of ``node_id`` as an attribute -> value mapping.

        Inductors with unbounded attribute families (LR) may instead
        override :meth:`value` and :meth:`attribute_stream` and raise
        here; the default implementations below only use those two.
        """

    def value(self, corpus: Any, node_id: NodeId, attr: Attribute) -> Hashable | None:
        """Value of one attribute for one node (None if absent)."""
        return self.feature_map(corpus, node_id).get(attr)

    @abc.abstractmethod
    def attribute_stream(
        self, corpus: Any, labels: Labels
    ) -> Iterator[Attribute]:
        """Attributes relevant to ``labels``, for TopDown subdivision.

        The stream must include every attribute that can separate two
        labels in ``labels`` (attributes on which all labels agree or
        which no label has can be skipped — they never subdivide).
        """

    @abc.abstractmethod
    def wrapper_for_features(
        self, corpus: Any, features: dict[Attribute, Hashable]
    ) -> Wrapper:
        """Build the concrete wrapper matching ``features``."""

    def induce(self, corpus: Any, labels: Labels) -> Wrapper:
        if not labels:
            raise ValueError("cannot induce a wrapper from zero labels")
        return self.wrapper_for_features(
            corpus, self.shared_features(corpus, labels)
        )

    def shared_features(
        self, corpus: Any, labels: Labels
    ) -> dict[Attribute, Hashable]:
        """Intersection of the label feature maps (most specific rule)."""
        label_list = sorted(labels)
        shared = dict(self.feature_map(corpus, label_list[0]))
        for node_id in label_list[1:]:
            other = self.feature_map(corpus, node_id)
            for attr in list(shared):
                if other.get(attr) != shared[attr]:
                    del shared[attr]
            if not shared:
                break
        return shared

    def subdivision(
        self, corpus: Any, subset: Labels, attr: Attribute
    ) -> list[Labels]:
        """Partition ``subset`` by the value of ``attr`` (Sec. 4.2).

        Nodes lacking the attribute belong to no part, so the parts need
        not cover ``subset``.
        """
        groups: dict[Hashable, set[NodeId]] = {}
        for node_id in subset:
            value = self.value(corpus, node_id, attr)
            if value is not None:
                groups.setdefault(value, set()).add(node_id)
        return [frozenset(group) for group in groups.values()]

    def matches(
        self,
        corpus: Any,
        node_id: NodeId,
        features: dict[Attribute, Hashable],
    ) -> bool:
        """Does ``node_id``'s feature map contain all of ``features``?"""
        node_features = self.feature_map(corpus, node_id)
        return all(node_features.get(a) == v for a, v in features.items())


def extract_by_features(
    inductor: FeatureBasedInductor,
    corpus: Any,
    features: dict[Attribute, Hashable],
    candidates: Iterable[NodeId],
) -> Labels:
    """Generic feature-matching extraction over a candidate universe."""
    return frozenset(
        node_id
        for node_id in candidates
        if inductor.matches(corpus, node_id, features)
    )
