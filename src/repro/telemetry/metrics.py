"""The metrics core: counters, gauges and log-bucket histograms.

Design constraints, in order:

- **Cheap on the hot path.**  An increment is a dict lookup and an
  int add — no locks, no allocation after the first observation of a
  labelset.  Instruments are *single-writer*: each process mutates only
  its own registry (workers their fork-local one, the daemon its own),
  and the GIL makes the individual ``+=`` safe against the snapshot
  readers, so there is nothing to lock.
- **Mergeable.**  Worker processes :meth:`~MetricsRegistry.drain` their
  registry (read-and-reset) and the parent :meth:`~MetricsRegistry.merge`
  the delta into its own.  Counters and histogram buckets add, so merge
  is associative and commutative — deltas may arrive late, coalesced,
  or not at all (a crashed worker's unflushed tail is simply lost).
- **Fixed log-scale histogram buckets.**  Every histogram shares one
  bucket scheme (powers of two from 1µs), so any two histograms —
  from any process, any PR, any machine — merge exactly, and quantile
  estimation needs no per-series configuration.

Metric names must be declared in :mod:`repro.telemetry.names`;
emitting an undeclared name raises
:class:`~repro.telemetry.names.TelemetryError`.

The process-global default registry (:func:`get_registry`) honors the
``REPRO_TELEMETRY`` environment variable: ``0``/``off``/``false``
installs a disabled registry whose instruments are shared no-ops —
the kill switch the overhead benchmark measures against.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Optional

from repro.telemetry.names import validate_name

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "quantile_from",
    "render_prometheus",
    "set_registry",
]

#: The shared histogram bucket upper bounds, seconds: ``1e-6 * 2**i``
#: (1µs .. ~67s).  Observations above the last bound land in one
#: overflow bucket, so every histogram carries
#: ``len(BUCKET_BOUNDS) + 1`` counts.
BUCKET_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2.0**i for i in range(27))

_ENV_SWITCH = "REPRO_TELEMETRY"


def _label_key(labels: dict) -> str:
    """Canonical labelset encoding: ``""`` or ``"k=v,k2=v2"`` sorted."""
    if not labels:
        return ""
    return ",".join(f"{key}={labels[key]}" for key in sorted(labels))


class Counter:
    """A monotonically increasing sum, per labelset."""

    __slots__ = ("name", "_values")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: dict[str, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every labelset."""
        return sum(self._values.values())


class Gauge:
    """A point-in-time value, per labelset (merge takes the incoming)."""

    __slots__ = ("name", "_values")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: dict[str, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = value

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0)


class Histogram:
    """Fixed log-bucket distribution of seconds, per labelset."""

    __slots__ = ("name", "_series")

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        #: labelset -> [count, sum, bucket_counts list]
        self._series: dict[str, list] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = [0, 0.0, [0] * (len(BUCKET_BOUNDS) + 1)]
        series[0] += 1
        series[1] += value
        series[2][bisect_left(BUCKET_BOUNDS, value)] += 1

    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return series[0] if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        return series[1] if series else 0.0

    def quantile(self, q: float, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        if not series or not series[0]:
            return 0.0
        return quantile_from(series[2], series[0], q)


def quantile_from(buckets: list, count: int, q: float) -> float:
    """Estimate the q-quantile (0..1) from shared-scheme bucket counts.

    Returns the upper bound of the bucket holding the target rank —
    a conservative (over-)estimate with bounded relative error 2x,
    the bucket growth factor.  Works on raw snapshot data, so remote
    consumers (the ``repro stats`` CLI) can compute p50/p99 from the
    wire payload without reconstructing Histogram objects.
    """
    if count <= 0:
        return 0.0
    target = max(1, int(q * count + 0.5))
    cumulative = 0
    for index, bucket_count in enumerate(buckets):
        cumulative += bucket_count
        if cumulative >= target:
            return BUCKET_BOUNDS[min(index, len(BUCKET_BOUNDS) - 1)]
    return BUCKET_BOUNDS[-1]


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0

    def total(self) -> float:
        return 0

    def count(self, **labels: object) -> int:
        return 0

    def sum(self, **labels: object) -> float:
        return 0.0

    def quantile(self, q: float, **labels: object) -> float:
        return 0.0


_NULL = _NullInstrument()


class MetricsRegistry:
    """A named bag of instruments with snapshot / drain / merge.

    One registry per process role: the daemon's (and any parent
    process's) global registry plus one fresh registry per worker
    child.  Families are memoized by name, so the hot path after the
    first call is two dict lookups and an add.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: dict[str, object] = {}

    def _family(self, name: str, factory: type):
        family = self._families.get(name)
        if family is None:
            validate_name(name)
            family = self._families[name] = factory(name)
        return family

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            validate_name(name)
            return _NULL  # type: ignore[return-value]
        return self._family(name, Counter)

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            validate_name(name)
            return _NULL  # type: ignore[return-value]
        return self._family(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            validate_name(name)
            return _NULL  # type: ignore[return-value]
        return self._family(name, Histogram)

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-data view of every series (JSON-serializable)."""
        out: dict = {}
        for name, family in sorted(self._families.items()):
            if isinstance(family, Histogram):
                values = {
                    key: {
                        "count": series[0],
                        "sum": series[1],
                        "buckets": list(series[2]),
                    }
                    for key, series in family._series.items()
                }
            else:
                values = dict(family._values)  # type: ignore[union-attr]
            if values:
                out[name] = {"type": family.kind, "values": values}
        return out

    def drain(self) -> dict:
        """Snapshot, then reset — the worker-side delta flush."""
        delta = self.snapshot()
        for family in self._families.values():
            if isinstance(family, Histogram):
                family._series.clear()
            else:
                family._values.clear()  # type: ignore[union-attr]
        return delta

    def merge(self, delta: Optional[dict]) -> None:
        """Fold a :meth:`snapshot`/:meth:`drain` payload into this
        registry: counters and histogram buckets add, gauges take the
        incoming value.  Addition makes merge associative, so deltas
        from many workers in any interleaving converge to the same
        totals."""
        if not delta:
            return
        for name, payload in delta.items():
            kind = payload.get("type")
            values = payload.get("values") or {}
            if kind == "histogram":
                family = self.histogram(name)
                if family is _NULL:
                    continue
                for key, series in values.items():
                    mine = family._series.get(key)
                    if mine is None:
                        mine = family._series[key] = [
                            0,
                            0.0,
                            [0] * (len(BUCKET_BOUNDS) + 1),
                        ]
                    mine[0] += series["count"]
                    mine[1] += series["sum"]
                    buckets = series["buckets"]
                    mine_buckets = mine[2]
                    for index in range(min(len(buckets), len(mine_buckets))):
                        mine_buckets[index] += buckets[index]
            elif kind == "gauge":
                family = self.gauge(name)
                if family is _NULL:
                    continue
                family._values.update(values)
            else:
                family = self.counter(name)
                if family is _NULL:
                    continue
                for key, value in values.items():
                    family._values[key] = family._values.get(key, 0) + value


def _prom_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _prom_labels(key: str, extra: str = "") -> str:
    parts = [extra] if extra else []
    if key:
        for pair in key.split(","):
            label, _, value = pair.partition("=")
            escaped = value.replace("\\", "\\\\").replace('"', '\\"')
            parts.append(f'{label}="{escaped}"')
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: dict, descriptions: Optional[dict] = None) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    Dots become underscores under a ``repro_`` prefix; histograms
    render cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``, the exposition-format contract scrapers expect.
    """
    if descriptions is None:
        from repro.telemetry.names import NAME_DESCRIPTIONS

        descriptions = NAME_DESCRIPTIONS
    lines: list[str] = []
    for name in sorted(snapshot):
        payload = snapshot[name]
        kind = payload.get("type", "counter")
        values = payload.get("values") or {}
        prom = _prom_name(name)
        help_text = descriptions.get(name)
        if help_text:
            lines.append(f"# HELP {prom} {help_text}")
        lines.append(f"# TYPE {prom} {kind}")
        if kind == "histogram":
            for key in sorted(values):
                series = values[key]
                cumulative = 0
                for index, bucket_count in enumerate(series["buckets"]):
                    cumulative += bucket_count
                    bound = (
                        f"{BUCKET_BOUNDS[index]:.9g}"
                        if index < len(BUCKET_BOUNDS)
                        else "+Inf"
                    )
                    le = 'le="' + bound + '"'
                    lines.append(
                        f"{prom}_bucket{_prom_labels(key, le)} {cumulative}"
                    )
                lines.append(f"{prom}_sum{_prom_labels(key)} {series['sum']:.9g}")
                lines.append(f"{prom}_count{_prom_labels(key)} {series['count']}")
        else:
            for key in sorted(values):
                lines.append(f"{prom}{_prom_labels(key)} {values[key]:.9g}")
    return "\n".join(lines) + ("\n" if lines else "")


_registry: Optional[MetricsRegistry] = None


def _default_enabled() -> bool:
    return os.environ.get(_ENV_SWITCH, "").lower() not in (
        "0",
        "off",
        "false",
        "disabled",
    )


def get_registry() -> MetricsRegistry:
    """The process-global registry (created lazily, env-gated)."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry(enabled=_default_enabled())
    return _registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install (or with ``None``, re-create) the process-global registry.

    Worker children call this at startup with a fresh registry so the
    fork-inherited copy of the parent's totals is never flushed back
    upstream as a delta (which would double-count every parent-side
    event once per worker)."""
    global _registry
    _registry = registry if registry is not None else MetricsRegistry(
        enabled=_default_enabled()
    )
    return _registry
