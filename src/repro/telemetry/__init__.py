"""Unified telemetry: metrics, request tracing, and exposition.

One coherent, queryable surface over the whole extraction stack:

- :mod:`repro.telemetry.names` — the central metric-name registry
  (every series declared and described in one place; enforced by the
  ``telemetry-consistency`` lint rule);
- :mod:`repro.telemetry.metrics` — process-local counters / gauges /
  fixed log-bucket histograms with drain/merge for worker deltas and
  Prometheus-text rendering;
- :mod:`repro.telemetry.tracing` — per-request stage timelines and
  the NDJSON :class:`TraceRecorder` with slowest-N capture.

Convenience module-level ``counter`` / ``gauge`` / ``histogram``
shorthands bind to the process-global registry.
"""

from repro.telemetry import names
from repro.telemetry.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    quantile_from,
    render_prometheus,
    set_registry,
)
from repro.telemetry.names import (
    NAME_DESCRIPTIONS,
    NAMES,
    TelemetryError,
    validate_name,
)
from repro.telemetry.tracing import TraceRecorder, tile

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NAME_DESCRIPTIONS",
    "NAMES",
    "TelemetryError",
    "TraceRecorder",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "names",
    "quantile_from",
    "render_prometheus",
    "set_registry",
    "tile",
    "validate_name",
]


def counter(name: str) -> Counter:
    """``get_registry().counter(name)`` — the global-registry shorthand."""
    return get_registry().counter(name)


def gauge(name: str) -> Gauge:
    return get_registry().gauge(name)


def histogram(name: str) -> Histogram:
    return get_registry().histogram(name)
