"""Request tracing: per-stage timing spans over existing request ids.

A *trace* is the timing breakdown of one service request, identified
by the request id the client already chose — no new correlation token
rides the wire.  The server stamps a monotonic timeline as the request
crosses each boundary (socket read, dispatch, pool submit, worker
start/hydrate/extract, settle); :func:`tile` turns that timeline into
contiguous named stages whose durations sum to the request's
wall-clock by construction, so "where did this slow apply spend its
time?" has an exact answer, not a sampled guess.

Worker-side stamps use ``time.monotonic()``: on Linux that is
``CLOCK_MONOTONIC``, one system-wide clock, so a parent-side stamp
minus a worker-side stamp is a real duration (``perf_counter`` is
per-process and would not be).

:class:`TraceRecorder` is the sink: it appends one NDJSON ``trace``
event per finished request to an optional log file (seeded sampling
via ``sample_rate``) and always keeps the full span tree of the
slowest ``slow_keep`` requests in memory, flushed as ``slow`` events
on close — the capture that makes tail latency debuggable even when
sampling would have dropped the interesting request.
"""

from __future__ import annotations

import heapq
import itertools
import json
import random
import threading
import time
from typing import IO, Optional

__all__ = ["TraceRecorder", "tile"]


def tile(
    start: float, marks: list[tuple[str, Optional[float]]]
) -> list[tuple[str, float, float]]:
    """Contiguous stages from a monotonic timeline.

    ``marks`` is ``[(stage_name, end_stamp), ...]`` in timeline order;
    a ``None`` stamp skips its stage.  Returns ``[(name, start, dur),
    ...]`` tiling ``start .. last_stamp`` exactly: each stage begins
    where the previous ended, so the durations sum to the covered
    wall-clock with no gaps or overlaps (clock skew clamps to 0).
    """
    stages: list[tuple[str, float, float]] = []
    previous = start
    for name, stamp in marks:
        if stamp is None:
            continue
        stages.append((name, previous, max(0.0, stamp - previous)))
        previous = max(previous, stamp)
    return stages


class TraceRecorder:
    """NDJSON trace sink with seeded sampling and slowest-N capture."""

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        sample_rate: float = 1.0,
        seed: Optional[int] = None,
        slow_keep: int = 5,
    ) -> None:
        self.path = path
        self.sample_rate = sample_rate
        self.slow_keep = slow_keep
        self.sampled = 0
        self.dropped = 0
        self._rng = random.Random(seed)
        self._seq = itertools.count()
        #: min-heap of (total_s, seq, record) — root is the fastest of
        #: the kept-slow set, evicted first.
        self._slow: list[tuple[float, int, dict]] = []
        self._lock = threading.Lock()
        self._file: Optional[IO[str]] = (
            open(path, "a", encoding="utf-8") if path else None
        )

    def record(
        self,
        *,
        request_id: object,
        op: str,
        site: Optional[str],
        ok: bool,
        start: float,
        stages: list[tuple[str, float, float]],
        total_s: float,
    ) -> None:
        """Finish one request's trace.  ``stages`` is :func:`tile`
        output; ``start`` is the request's first monotonic stamp (stage
        starts are emitted relative to it)."""
        event = {
            "event": "trace",
            "id": request_id,
            "op": op,
            "site": site,
            "ok": ok,
            "total_s": total_s,
            "stages": [
                {
                    "stage": name,
                    "start_s": round(stage_start - start, 9),
                    "dur_s": round(dur, 9),
                }
                for name, stage_start, dur in stages
            ],
            "ts": time.time(),
        }
        with self._lock:
            if self.slow_keep > 0:
                entry = (total_s, next(self._seq), event)
                if len(self._slow) < self.slow_keep:
                    heapq.heappush(self._slow, entry)
                elif total_s > self._slow[0][0]:
                    heapq.heapreplace(self._slow, entry)
            if self._file is None:
                return
            if self.sample_rate < 1.0 and self._rng.random() >= self.sample_rate:
                self.dropped += 1
                return
            self.sampled += 1
            self._file.write(json.dumps(event, separators=(",", ":")) + "\n")
            self._file.flush()

    def slowest(self) -> list[dict]:
        """The kept slow-request traces, slowest first."""
        with self._lock:
            return [
                entry[2]
                for entry in sorted(self._slow, key=lambda e: -e[0])
            ]

    def close(self) -> None:
        """Flush the slowest-N span trees as ``slow`` events and close."""
        with self._lock:
            file = self._file
            self._file = None
            slow = [e[2] for e in sorted(self._slow, key=lambda e: -e[0])]
        if file is None:
            return
        for rank, event in enumerate(slow, 1):
            file.write(
                json.dumps(
                    {**event, "event": "slow", "rank": rank},
                    separators=(",", ":"),
                )
                + "\n"
            )
        file.close()
