"""The central metric-name registry: every series the stack emits.

This module is the single source of truth for telemetry metric names,
exactly as :mod:`repro.faults.registry` is for fault injection points.
Instrumentation sites spell names through the constants below; the
``telemetry-consistency`` lint rule statically checks every
``.counter("...")`` / ``.gauge("...")`` / ``.histogram("...")`` call
site in the tree against :data:`NAMES`, so a dashboard can never end
up charting a name no code actually emits (or vice versa).

Adding a metric is a two-line change **here first**: a constant and a
:data:`NAME_DESCRIPTIONS` entry.  Emitting an undeclared name raises
:class:`TelemetryError` at runtime and fails lint at review time.

Naming convention: ``<subsystem>.<what>`` with a ``_s`` suffix for
histograms of seconds.  Label keys ride separately (``site=...``,
``stage=...``, ``where=...``, ``strategy=...``) and are free-form.
"""

from __future__ import annotations

__all__ = [
    "NAME_DESCRIPTIONS",
    "NAMES",
    "TelemetryError",
    "validate_name",
]


class TelemetryError(ValueError):
    """An undeclared metric name (or otherwise invalid telemetry use)."""


# -- service front end -------------------------------------------------------

SERVER_REQUESTS = "server.requests"
SERVER_RESPONSES = "server.responses"
SERVER_ERRORS = "server.errors"
SERVER_DEADLINE_EXPIRED = "server.deadline_expired"
SERVER_DROPPED_READERS = "server.dropped_readers"
SERVER_SWALLOWED_ERRORS = "server.swallowed_errors"
SERVER_ARENA_REAPED = "server.arena_reaped"
SERVER_APPLY_LATENCY = "server.apply_latency_s"
SERVER_LEARN_LATENCY = "server.learn_latency_s"
SERVER_STAGE = "server.stage_s"

# -- worker pool (parent side) ----------------------------------------------

SCHEDULER_JOBS = "scheduler.jobs"
SCHEDULER_CHUNKS = "scheduler.chunks"
SCHEDULER_ARENA_SHIPS = "scheduler.arena_ships"
SCHEDULER_SHIP_S = "scheduler.ship_s"
SCHEDULER_WORKER_DEATHS = "scheduler.worker_deaths"
SCHEDULER_RESPAWNS = "scheduler.respawns"
SCHEDULER_QUARANTINED = "scheduler.quarantined"
SCHEDULER_SWALLOWED_ERRORS = "scheduler.swallowed_errors"

# -- worker processes (merged parent-side via outbox flush deltas) -----------

WORKER_JOBS = "worker.jobs"
WORKER_PAGES = "worker.pages"
WORKER_HYDRATE_S = "worker.hydrate_s"
WORKER_EXTRACT_S = "worker.extract_s"

# -- wrapper registry --------------------------------------------------------

REGISTRY_HITS = "registry.hits"
REGISTRY_MISSES = "registry.misses"
REGISTRY_LEARNED = "registry.learned"
REGISTRY_RESOLVE_HITS = "registry.resolve_hits"
REGISTRY_RESOLVE_MISSES = "registry.resolve_misses"
REGISTRY_CORRUPT_CHAINS = "registry.corrupt_chains"

# -- shared-memory arena -----------------------------------------------------

ARENA_BUILT = "arena.built"
ARENA_ATTACHES = "arena.attaches"
ARENA_ATTACH_HITS = "arena.attach_hits"
ARENA_REBUILD_FALLBACKS = "arena.rebuild_fallbacks"

# -- streaming ingestion -----------------------------------------------------

INGEST_SUBMITTED = "ingest.submitted"
INGEST_RESULTS = "ingest.results"

# -- wrapper lifecycle -------------------------------------------------------

LIFECYCLE_DRIFT_CHECKS = "lifecycle.drift_checks"
LIFECYCLE_DRIFT_DETECTED = "lifecycle.drift_detected"
LIFECYCLE_REPAIRS = "lifecycle.repairs"
LIFECYCLE_LADDER_HITS = "lifecycle.ladder_hits"


#: Name -> one-line description; the normative catalogue.  ``NAMES``
#: (what the lint rule and ``validate_name`` check) derives from it so
#: a name cannot be declared without documenting what it measures.
NAME_DESCRIPTIONS: dict[str, str] = {
    SERVER_REQUESTS: "requests read off client sockets, by op",
    SERVER_RESPONSES: "responses written back to clients",
    SERVER_ERRORS: "failure responses written back to clients",
    SERVER_DEADLINE_EXPIRED: "requests answered with a deadline error",
    SERVER_DROPPED_READERS: "client reader threads that died on an error",
    SERVER_SWALLOWED_ERRORS: (
        "exceptions intentionally swallowed in server loops, by where="
    ),
    SERVER_ARENA_REAPED: "orphaned arena segments reaped by this daemon",
    SERVER_APPLY_LATENCY: "apply request wall-clock seconds, accept to answer",
    SERVER_LEARN_LATENCY: "learn request wall-clock seconds, accept to answer",
    SERVER_STAGE: "per-stage request seconds, by stage= (trace tiling)",
    SCHEDULER_JOBS: "jobs submitted to the worker pool",
    SCHEDULER_CHUNKS: "job chunks shipped to workers",
    SCHEDULER_ARENA_SHIPS: "payloads shipped as arena segment handles",
    SCHEDULER_SHIP_S: "seconds packing/shipping one payload to a worker",
    SCHEDULER_WORKER_DEATHS: "worker processes found dead",
    SCHEDULER_RESPAWNS: "worker processes respawned after a death",
    SCHEDULER_QUARANTINED: "jobs quarantined as poison work",
    SCHEDULER_SWALLOWED_ERRORS: (
        "exceptions intentionally swallowed in pool teardown, by where="
    ),
    WORKER_JOBS: "jobs completed inside worker processes",
    WORKER_PAGES: "pages extracted inside worker processes",
    WORKER_HYDRATE_S: "seconds resolving/hydrating a site in a worker",
    WORKER_EXTRACT_S: "seconds applying the wrapper in a worker",
    REGISTRY_HITS: "hot-LRU artifact cache hits",
    REGISTRY_MISSES: "hot-LRU artifact cache misses (backend loads)",
    REGISTRY_LEARNED: "wrappers learned and stored via learn-on-miss",
    REGISTRY_RESOLVE_HITS: "resolve() calls answered from the registry",
    REGISTRY_RESOLVE_MISSES: "resolve() calls with no usable wrapper",
    REGISTRY_CORRUPT_CHAINS: "version chains skipped as corrupt",
    ARENA_BUILT: "arena segments packed and written",
    ARENA_ATTACHES: "arena segments mapped by this process",
    ARENA_ATTACH_HITS: "arena attaches served by a live mapping",
    ARENA_REBUILD_FALLBACKS: "sites rebuilt from sources (arena miss)",
    INGEST_SUBMITTED: "records submitted through ingest sessions",
    INGEST_RESULTS: "outcomes yielded by ingest sessions",
    LIFECYCLE_DRIFT_CHECKS: "drift detector verdicts computed",
    LIFECYCLE_DRIFT_DETECTED: "drift detector verdicts that flagged drift",
    LIFECYCLE_REPAIRS: "repair attempts, by strategy= (incl. failed)",
    LIFECYCLE_LADDER_HITS: "repairs served by alternate-ladder promotion",
}

#: Every declared metric name, in declaration order.
NAMES: tuple[str, ...] = tuple(NAME_DESCRIPTIONS)


def validate_name(name: str) -> str:
    """Return *name* if declared; raise :class:`TelemetryError` if not."""
    if name not in NAME_DESCRIPTIONS:
        known = ", ".join(NAMES)
        raise TelemetryError(
            f"undeclared metric name {name!r}; declare it in "
            f"repro.telemetry.names first (declared: {known})"
        )
    return name
