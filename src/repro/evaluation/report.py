"""Plain-text report rendering for experiment outcomes.

Used by the command-line interface and handy in notebooks: turns
:class:`~repro.evaluation.runner.MethodOutcome` maps into the aligned
tables the paper prints.
"""

from __future__ import annotations

from repro.evaluation.metrics import PRF
from repro.evaluation.runner import MethodOutcome


def format_prf_table(
    outcomes: dict[str, MethodOutcome], title: str = ""
) -> str:
    """A compact method x (P, R, F1) table."""
    lines: list[str] = []
    if title:
        lines.append(title)
    header = f"{'method':8s} {'precision':>9s} {'recall':>9s} {'f1':>9s}"
    lines.append(header)
    lines.append("-" * len(header))
    for method, outcome in outcomes.items():
        overall = outcome.overall
        lines.append(
            f"{method:8s} {overall.precision:9.3f} "
            f"{overall.recall:9.3f} {overall.f1:9.3f}"
        )
    return "\n".join(lines)


def format_per_site_table(
    outcomes: dict[str, MethodOutcome], title: str = ""
) -> str:
    """Per-site F1 for every method, one row per site."""
    methods = list(outcomes)
    if not methods:
        return title
    site_names = outcomes[methods[0]].site_names
    lines: list[str] = []
    if title:
        lines.append(title)
    header = f"{'site':16s}" + "".join(f"{m:>10s}" for m in methods)
    lines.append(header)
    lines.append("-" * len(header))
    for index, name in enumerate(site_names):
        row = f"{name:16s}"
        for method in methods:
            row += f"{outcomes[method].per_site[index].f1:10.3f}"
        lines.append(row)
    return "\n".join(lines)


def format_grid(
    table: dict[tuple[float, float], float],
    row_values: tuple[float, ...],
    col_values: tuple[float, ...],
    corner: str = "p\\r",
) -> str:
    """A Table 1 style grid of scalars keyed by (row, col)."""
    lines = [f"{corner:5s}" + "".join(f"{c:7.2f}" for c in col_values)]
    for row in row_values:
        lines.append(
            f"{row:5.2f}" + "".join(f"{table[(row, c)]:7.2f}" for c in col_values)
        )
    return "\n".join(lines)


def summarize_prf(result: PRF) -> str:
    """One-line summary of a PRF triple."""
    return (
        f"precision={result.precision:.3f} recall={result.recall:.3f} "
        f"f1={result.f1:.3f}"
    )
