"""The Section 7 experiment harness.

Methodology (paper, "Learning the model parameters"): split the sites of
a dataset in half; on the training half, estimate the annotator's noise
profile ``(p, r)`` and fit the two publication-feature distributions
from the gold lists; on the held-out half, learn wrappers from the noisy
annotations with each method and score the extractions against gold.

Methods: NAIVE (inductor on all labels), NTW (full ranking), NTW-L
(annotation term only), NTW-X (publication term only) — the Sec. 7.2 and
7.3 comparisons.

Per-site learning runs through the :class:`repro.api.Extractor` facade,
so the experiment exercises exactly the pipeline (and artifact
round-trip) that production callers use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.annotators.base import Annotator
from repro.api.extractor import Extractor, ExtractorConfig, ExtractorError
from repro.datasets.sitegen import GeneratedSite
from repro.evaluation.metrics import PRF, aggregate, prf
from repro.ranking.annotation import AnnotationModel
from repro.ranking.publication import PublicationModel
from repro.ranking.scorer import WrapperScorer
from repro.wrappers.base import Labels, WrapperInductor

#: The method names understood by the experiment runner.
METHODS = ("naive", "ntw", "ntw-l", "ntw-x")


@dataclass(slots=True)
class ExperimentModels:
    """Models fitted on the training half."""

    annotation: AnnotationModel
    publication: PublicationModel


def split_sites(
    sites: list[GeneratedSite],
) -> tuple[list[GeneratedSite], list[GeneratedSite]]:
    """Deterministic half split (even indices train, odd test)."""
    train = [site for index, site in enumerate(sites) if index % 2 == 0]
    test = [site for index, site in enumerate(sites) if index % 2 == 1]
    return train, test


def fit_models(
    train: list[GeneratedSite],
    annotator: Annotator,
    gold_type: str,
    labels_cache: dict[str, Labels] | None = None,
) -> ExperimentModels:
    """Estimate ``(p, r)`` and fit the publication prior on ``train``."""
    triples = []
    publication_pairs = []
    for generated in train:
        labels = _labels_for(generated, annotator, labels_cache)
        gold = generated.gold.get(gold_type, frozenset())
        triples.append((labels, gold, generated.site.total_text_nodes()))
        if gold:
            publication_pairs.append((generated.site, gold))
    annotation = AnnotationModel.estimate(triples)
    publication = PublicationModel.fit(publication_pairs)
    return ExperimentModels(annotation=annotation, publication=publication)


@dataclass(slots=True)
class MethodOutcome:
    """Aggregate and per-site results of one method."""

    method: str
    per_site: list[PRF] = field(default_factory=list)
    site_names: list[str] = field(default_factory=list)

    @property
    def overall(self) -> PRF:
        return aggregate(self.per_site)


class SingleTypeExperiment:
    """Runs the NAIVE/NTW comparison on one dataset + inductor."""

    def __init__(
        self,
        sites: list[GeneratedSite],
        annotator: Annotator,
        inductor: WrapperInductor,
        gold_type: str = "name",
        max_labels: int = 40,
    ) -> None:
        self.sites = sites
        self.annotator = annotator
        self.inductor = inductor
        self.gold_type = gold_type
        self.max_labels = max_labels
        self._labels_cache: dict[str, Labels] = {}
        self.train, self.test = split_sites(sites)
        self.models = fit_models(
            self.train, annotator, gold_type, self._labels_cache
        )

    def extractor_for(self, method: str) -> Extractor:
        """The facade configured for ``method`` with the fitted models."""
        config = ExtractorConfig(method=method, max_labels=self.max_labels)
        return Extractor(
            config,
            annotation_model=self.models.annotation,
            publication_model=self.models.publication,
            inductor=self.inductor,
        )

    def scorer_for(self, method: str) -> WrapperScorer | None:
        if method == "naive":
            return None
        return self.extractor_for(method).scorer()

    def run(
        self,
        methods: tuple[str, ...] = ("naive", "ntw"),
        evaluate_on: str = "test",
        executor=None,
    ) -> dict[str, MethodOutcome]:
        """Run the requested methods; returns per-method outcomes.

        Learning goes through the batch layer
        (:func:`repro.api.batch.learn_many`), so ``executor`` accepts
        everything it does — ``None``/``"serial"``, ``"process"``,
        ``"pool"`` or a :class:`~repro.api.scheduler.WorkerPool` whose
        warm workers persist across the methods' batches.  Labels are
        annotated once per site up front (cached), so every method and
        every executor sees identical inputs.
        """
        from repro.api.batch import learn_many

        if evaluate_on == "test":
            targets = self.test
        elif evaluate_on == "all":
            targets = self.sites
        else:
            raise ValueError(f"evaluate_on must be 'test' or 'all', got {evaluate_on!r}")
        labels_list = [
            _labels_for(generated, self.annotator, self._labels_cache)
            for generated in targets
        ]
        outcomes = {method: MethodOutcome(method=method) for method in methods}
        for method in methods:
            batch = learn_many(
                self.extractor_for(method),
                targets,
                labels=labels_list,
                executor=executor,
            )
            for generated, outcome in zip(targets, batch.outcomes):
                # An ExtractorError (no labels / empty wrapper space)
                # simply extracts nothing — the paper's accounting for a
                # method that cannot produce a wrapper.  Anything else
                # is a genuine bug and must not silently depress the
                # reported accuracy; re-raise it like the pre-batch
                # per-site path did.
                if not outcome.ok and not (outcome.error or "").startswith(
                    "ExtractorError"
                ):
                    raise RuntimeError(
                        f"learning failed on site {outcome.site}: "
                        f"{outcome.error}"
                    )
                extracted = (
                    outcome.artifact.apply(generated.site)
                    if outcome.ok and outcome.artifact is not None
                    else frozenset()
                )
                gold = generated.gold.get(self.gold_type, frozenset())
                outcomes[method].per_site.append(prf(extracted, gold))
                outcomes[method].site_names.append(generated.name)
        return outcomes

    def _extract(
        self, method: str, generated: GeneratedSite, labels: Labels
    ) -> Labels:
        """Single-site learn+apply (kept for ad-hoc probing and tests)."""
        try:
            artifact = self.extractor_for(method).learn(
                generated.site, labels, site_name=generated.name
            )
        except ExtractorError:
            # No labels / empty wrapper space: the method extracts nothing.
            return frozenset()
        return artifact.apply(generated.site)


def _labels_for(
    generated: GeneratedSite,
    annotator: Annotator,
    cache: dict[str, Labels] | None,
) -> Labels:
    if cache is not None and generated.name in cache:
        return cache[generated.name]
    labels = annotator.annotate(generated.site)
    if cache is not None:
        cache[generated.name] = labels
    return labels
