"""Evaluation: precision/recall/F1 metrics and the experiment runner
that reproduces the paper's Section 7 methodology (half the sites for
parameter learning, the rest for measurement)."""

from repro.evaluation.metrics import PRF, aggregate, prf
from repro.evaluation.runner import (
    ExperimentModels,
    MethodOutcome,
    SingleTypeExperiment,
    fit_models,
    split_sites,
)

__all__ = [
    "PRF",
    "ExperimentModels",
    "MethodOutcome",
    "SingleTypeExperiment",
    "aggregate",
    "fit_models",
    "prf",
    "split_sites",
]
