"""Extraction-quality metrics.

Per-site precision/recall are computed over node-id sets against the
generator's gold; the F1 measure is their harmonic mean.  Dataset-level
numbers are macro-averages over sites, matching the paper's per-website
learning and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wrappers.base import Labels


@dataclass(frozen=True, slots=True)
class PRF:
    """A precision/recall/F1 triple."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f}"
        )


def prf(predicted: Labels, gold: Labels) -> PRF:
    """Precision/recall of a predicted node set against gold.

    Conventions: empty prediction has precision 1 (nothing wrong was
    said); empty gold has recall 1 (nothing was missed).  An empty
    prediction against non-empty gold therefore scores F1 = 0 via recall.
    """
    if predicted:
        precision = len(predicted & gold) / len(predicted)
    else:
        precision = 1.0
    if gold:
        recall = len(predicted & gold) / len(gold)
    else:
        recall = 1.0
    return PRF(precision=precision, recall=recall)


def aggregate(results: list[PRF]) -> PRF:
    """Macro-average precision and recall over sites."""
    if not results:
        return PRF(precision=0.0, recall=0.0)
    return PRF(
        precision=sum(r.precision for r in results) / len(results),
        recall=sum(r.recall for r in results) / len(results),
    )


def record_prf(
    predicted: list[tuple], gold: list[tuple]
) -> PRF:
    """Precision/recall over assembled records (exact-tuple match)."""
    predicted_set = set(predicted)
    gold_set = set(gold)
    if predicted_set:
        precision = len(predicted_set & gold_set) / len(predicted_set)
    else:
        precision = 1.0
    if gold_set:
        recall = len(predicted_set & gold_set) / len(gold_set)
    else:
        recall = 1.0
    return PRF(precision=precision, recall=recall)
