"""Deterministic entity pools for the synthetic datasets.

Pools are generated combinatorially from word lists so they are large,
diverse and reproducible without shipping data files.  All generators
take explicit sizes and derive every choice from the pool index, so the
same call always yields the same pool.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

# -- business listings (DEALERS) ---------------------------------------------

_BUSINESS_FIRST = [
    "OAKWOOD", "PORTER", "WOODLAND", "SUMMIT", "RIVERSIDE", "HERITAGE",
    "LIBERTY", "PIONEER", "STERLING", "MAGNOLIA", "CRESCENT", "HARBOR",
    "PRAIRIE", "CEDAR", "WILLOW", "GRANITE", "BLUEBIRD", "REDWOOD",
    "LAKESIDE", "HILLTOP", "MEADOW", "CYPRESS", "FALCON", "BEACON",
    "CHESTNUT", "DOGWOOD", "ELMWOOD", "FOXGLOVE", "GOLDENROD", "HICKORY",
    "IRONWOOD", "JUNIPER", "KINGFISHER", "LANTERN", "MAPLE", "NORTHGATE",
    "ORCHARD", "PALMETTO", "QUARRY", "ROSEWOOD", "SPRUCE", "THISTLE",
    "UPLAND", "VALLEY", "WHISPERING", "YELLOWSTONE", "ANCHOR", "BRIDGE",
]

_BUSINESS_SECOND = [
    "FURNITURE", "APPLIANCE", "HARDWARE", "ELECTRONICS", "INTERIORS",
    "HOME CENTER", "GALLERY", "DESIGN", "SUPPLY", "TRADING",
    "OUTFITTERS", "CABINETS", "LIGHTING", "FLOORING", "KITCHENS",
    "BEDDING", "DECOR", "WOODWORKS", "UPHOLSTERY", "ANTIQUES",
]

_BUSINESS_SUFFIX = ["", "", "", " CO.", " INC.", " & SONS", " OUTLET", " DEPOT"]

_STREET_NAMES = [
    "MAIN", "OAK", "MAPLE", "ELM", "WASHINGTON", "LAKE", "HILL",
    "PARK", "PINE", "CEDAR", "RIVER", "CHURCH", "SPRING", "MILL",
    "FRONT", "CENTER", "WALNUT", "JACKSON", "HIGHLAND", "FOREST",
]

_STREET_SUFFIX = ["ST.", "AVE.", "BLVD.", "RD.", "DR.", "LN.", "HWY. 30"]

_CITIES = [
    ("NEW ALBANY", "MS"), ("WOODLAND", "MS"), ("SAN MATEO", "CA"),
    ("SAN JOSE", "CA"), ("SAN BRUNO", "CA"), ("SAN RAFAEL", "CA"),
    ("SPRINGFIELD", "IL"), ("MADISON", "WI"), ("FRANKLIN", "TN"),
    ("GREENVILLE", "SC"), ("BRISTOL", "CT"), ("CLINTON", "IA"),
    ("SALEM", "OR"), ("FAIRVIEW", "NJ"), ("GEORGETOWN", "KY"),
    ("ARLINGTON", "TX"), ("CLAYTON", "MO"), ("DAYTON", "OH"),
    ("ASHLAND", "VA"), ("BURLINGTON", "VT"), ("CAMDEN", "ME"),
    ("DOVER", "DE"), ("EUGENE", "OR"), ("FARGO", "ND"),
    ("GRAFTON", "WV"), ("HELENA", "MT"), ("ITHACA", "NY"),
    ("JOPLIN", "MO"), ("KENOSHA", "WI"), ("LAREDO", "TX"),
]


@dataclass(frozen=True, slots=True)
class Business:
    """One business-listing record (the DEALERS schema)."""

    name: str
    street: str
    city: str
    state: str
    zipcode: str
    phone: str


def business_pool(size: int, seed: int = 7001) -> list[Business]:
    """A deterministic pool of distinct business records."""
    rng = random.Random(seed)
    names: list[str] = []
    seen: set[str] = set()
    while len(names) < size:
        name = (
            rng.choice(_BUSINESS_FIRST)
            + " "
            + rng.choice(_BUSINESS_SECOND)
            + rng.choice(_BUSINESS_SUFFIX)
        )
        if name not in seen:
            seen.add(name)
            names.append(name)
    pool: list[Business] = []
    for index, name in enumerate(names):
        city, state = _CITIES[rng.randrange(len(_CITIES))]
        zipcode = f"{10000 + (index * 137 + rng.randrange(90)) % 89999:05d}"
        street = (
            f"{rng.randrange(100, 9900)} "
            f"{rng.choice(_STREET_NAMES)} {rng.choice(_STREET_SUFFIX)}"
        )
        phone = (
            f"{rng.randrange(200, 999)}-"
            f"{rng.randrange(200, 999)}-{rng.randrange(1000, 9999)}"
        )
        pool.append(
            Business(
                name=name,
                street=street,
                city=city,
                state=state,
                zipcode=zipcode,
                phone=phone,
            )
        )
    return pool


# -- discography (DISC) -------------------------------------------------------

_TRACK_WORDS_A = [
    "Midnight", "Golden", "Silent", "Electric", "Broken", "Crimson",
    "Wandering", "Velvet", "Hollow", "Shining", "Distant", "Paper",
    "Winter", "Summer", "Neon", "Gentle", "Restless", "Faded",
    "Burning", "Silver", "Lonely", "Hidden", "Rising", "Falling",
]

_TRACK_WORDS_B = [
    "River", "Sky", "Heart", "Road", "Dream", "Fire", "Rain",
    "Shadow", "Light", "Train", "Garden", "Mirror", "Echo",
    "Harbor", "Window", "Dancer", "Stranger", "Mountain", "Ocean",
    "Letter", "Season", "Motel", "Station", "Carousel",
]

_ARTIST_FIRST = [
    "The", "Miss", "Young", "Old", "Saint", "Big", "Little", "Silver",
]

_ARTIST_SECOND = [
    "Harbors", "Nightingales", "Cartographers", "Lanterns", "Foxes",
    "Wanderers", "Pines", "Meridians", "Satellites", "Arrows",
    "Malone", "Tiller", "Whitfield", "Corvane", "Ashbury", "Delmar",
]


@dataclass(frozen=True, slots=True)
class Album:
    """One album with its ordered track listing (the DISC schema)."""

    title: str
    artist: str
    year: int
    tracks: tuple[str, ...]


def album_catalog(size: int, seed: int = 7101) -> list[Album]:
    """A deterministic catalog of distinct albums with track listings."""
    rng = random.Random(seed)
    albums: list[Album] = []
    seen_titles: set[str] = set()
    seen_tracks: set[str] = set()
    while len(albums) < size:
        title = f"{rng.choice(_TRACK_WORDS_A)} {rng.choice(_TRACK_WORDS_B)}"
        if title in seen_titles:
            continue
        seen_titles.add(title)
        artist = f"{rng.choice(_ARTIST_FIRST)} {rng.choice(_ARTIST_SECOND)}"
        year = rng.randrange(1962, 2011)
        n_tracks = rng.randrange(8, 14)
        tracks: list[str] = []
        while len(tracks) < n_tracks:
            track = f"{rng.choice(_TRACK_WORDS_A)} {rng.choice(_TRACK_WORDS_B)}"
            if rng.random() < 0.3:
                track += " " + rng.choice(
                    ["Blues", "Serenade", "Lullaby", "Reprise", "Waltz", "Anthem"]
                )
            if track not in seen_tracks and track != title:
                seen_tracks.add(track)
                tracks.append(track)
        albums.append(
            Album(title=title, artist=artist, year=year, tracks=tuple(tracks))
        )
    return albums


# -- shopping (PRODUCTS) ------------------------------------------------------

#: Brands whose models form the PRODUCTS dictionary (5 brands, paper App. B.1)
DICTIONARY_BRANDS = ["Nokia", "Samsung", "Motorola", "LG", "Sony Ericsson"]

#: Brands sold by the shops but absent from the dictionary.
OTHER_BRANDS = ["HTC", "BlackBerry", "Palm"]

_MODEL_SERIES = {
    "Nokia": ["N", "E", "C", ""],
    "Samsung": ["SGH-A", "SGH-T", "SCH-U", "Galaxy "],
    "Motorola": ["RAZR V", "KRZR K", "ROKR E", "Droid "],
    "LG": ["VX", "KP", "GD", "Chocolate "],
    "Sony Ericsson": ["K", "W", "C", "Xperia X"],
    "HTC": ["Touch ", "Hero ", "Magic ", "Desire "],
    "BlackBerry": ["Curve 8", "Bold 9", "Pearl 8", "Storm 9"],
    "Palm": ["Treo 6", "Treo 7", "Centro ", "Pre "],
}


@dataclass(frozen=True, slots=True)
class Phone:
    """One cellphone product (the PRODUCTS schema)."""

    name: str  # "<brand> <model>"
    brand: str
    price: str
    rating: str


def phone_pool(per_brand: int, seed: int = 7201) -> list[Phone]:
    """Deterministic phone products across all brands.

    ``per_brand`` phones for each dictionary brand and each other brand.
    """
    rng = random.Random(seed)
    pool: list[Phone] = []
    seen: set[str] = set()
    for brand in DICTIONARY_BRANDS + OTHER_BRANDS:
        series = _MODEL_SERIES[brand]
        produced = 0
        while produced < per_brand:
            model = f"{rng.choice(series)}{rng.randrange(10, 99)}"
            name = f"{brand} {model}"
            if name in seen:
                continue
            seen.add(name)
            produced += 1
            price = f"${rng.randrange(49, 699)}.{rng.choice(['00', '99', '95'])}"
            rating = f"{rng.randrange(2, 5)}.{rng.randrange(0, 9)} stars"
            pool.append(Phone(name=name, brand=brand, price=price, rating=rating))
    return pool


def phone_dictionary(pool: list[Phone]) -> list[str]:
    """The 463-entry-style dictionary: names of dictionary-brand phones."""
    return [phone.name for phone in pool if phone.brand in DICTIONARY_BRANDS]
