"""The DEALERS dataset: dealer-locator sites with business listings.

The paper compiled 330 businesses with dealer-locator forms, generated
pages per zipcode by automatic form filling, and annotated store names
with a Yahoo! Local dictionary measured at precision 0.95 / recall 0.24.
This generator reproduces that setting synthetically:

- each site gets its own rendering script (layout family, CSS classes,
  field wrapping) drawn from the per-site RNG — structurally uniform
  within a site, diverse across sites;
- each page lists the dealers "for one zipcode query";
- the name dictionary covers a configurable fraction of the global
  business-name pool (recall knob), and dictionary names are injected
  into sidebar "featured partners" boxes and per-page "featured brand"
  callouts as standalone text nodes (precision knob) — the analogue of
  the paper's dictionary collisions with addresses and product text;
- gold sets track every listing name node (and, optionally, zipcode
  nodes rendered as their own text node for the multi-type experiments
  of Appendix A).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.annotators.dictionary import DictionaryAnnotator, normalize_mention
from repro.datasets.entities import Business, business_pool
from repro.datasets.sitegen import GeneratedSite, SiteSpec, assemble_site
from repro.datasets.templates import Chrome, ListingLayout, PageEmitter

#: Default scale (paper: 330 sites; benches scale down via arguments).
DEFAULT_SITES = 330
DEFAULT_PAGES = 10


@dataclass(slots=True)
class DealersConfig:
    """Knobs of the DEALERS generator (defaults target the paper's
    annotator profile of precision ~0.95, recall ~0.24)."""

    n_sites: int = DEFAULT_SITES
    pages_per_site: int = DEFAULT_PAGES
    min_records: int = 4
    max_records: int = 10
    dictionary_coverage: float = 0.24
    partner_box_rate: float = 0.06
    featured_brand_rate: float = 0.04
    separate_zip: bool = False
    pool_size: int = 2400
    seed: int = 11


@dataclass(slots=True)
class DealersDataset:
    """The generated dataset plus its dictionary annotator."""

    sites: list[GeneratedSite]
    dictionary: list[str]
    config: DealersConfig = field(default_factory=DealersConfig)

    def annotator(self) -> DictionaryAnnotator:
        return DictionaryAnnotator(self.dictionary)


def generate_dealers(
    n_sites: int = DEFAULT_SITES,
    pages_per_site: int = DEFAULT_PAGES,
    separate_zip: bool = False,
    seed: int = 11,
    config: DealersConfig | None = None,
) -> DealersDataset:
    """Generate the DEALERS dataset (deterministic in ``seed``)."""
    if config is None:
        config = DealersConfig(
            n_sites=n_sites,
            pages_per_site=pages_per_site,
            separate_zip=separate_zip,
            seed=seed,
        )
    pool = business_pool(config.pool_size, seed=config.seed * 1000 + 1)
    dictionary_rng = random.Random(config.seed * 1000 + 2)
    dictionary_size = max(1, int(len(pool) * config.dictionary_coverage))
    dictionary = [
        business.name
        for business in dictionary_rng.sample(pool, dictionary_size)
    ]
    sites = [
        _generate_site(index, pool, dictionary, config)
        for index in range(config.n_sites)
    ]
    return DealersDataset(sites=sites, dictionary=dictionary, config=config)


def _site_fields(config: DealersConfig) -> tuple[tuple[str, ...], dict[str, str]]:
    """Field order and own-node fields for a dealers site.

    Phones always render inside their own inline tag (as real listing
    pages do), which keeps them xpath-separable in the flat layouts
    (``dl-list``, ``table-cell``) and so usable as a third record type;
    zipcodes get a *different* tag so the two stay separable from each
    other.
    """
    if config.separate_zip:
        return (
            ("name", "street", "cityline", "zipcode", "phone"),
            {"zipcode": "span", "phone": "em"},
        )
    return ("name", "street", "cityline", "phone"), {"phone": "em"}


def _record_values(business: Business, config: DealersConfig) -> dict[str, str]:
    if config.separate_zip:
        cityline = f"{business.city}, {business.state}"
    else:
        cityline = f"{business.city}, {business.state} {business.zipcode}"
    return {
        "name": business.name,
        "street": business.street,
        "cityline": cityline,
        "zipcode": business.zipcode,
        "phone": f"Phone: {business.phone}",
    }


def _generate_site(
    index: int,
    pool: list[Business],
    dictionary: list[str],
    config: DealersConfig,
) -> GeneratedSite:
    site_seed = config.seed * 100000 + index
    rng = random.Random(site_seed)
    brand = pool[rng.randrange(len(pool))]
    site_title = f"{brand.name.title()} Dealer Locator"
    chrome = Chrome.build(rng, site_title)
    fields, own_node = _site_fields(config)
    layout = ListingLayout.build(
        rng, primary="name", fields=fields, own_node_fields=own_node
    )
    # Names are always gold-tracked; phones too (they render as their
    # own text node in every layout family), enabling the full
    # (name, address, phone)-style schema of Appendix A.  Zipcodes are
    # tracked when rendered as their own node.
    gold_types = {"name": "name", "phone": "phone"}
    if config.separate_zip:
        gold_types["zipcode"] = "zipcode"

    rendered = []
    for page_number in range(config.pages_per_site):
        page_rng = random.Random(site_seed * 1000 + page_number)
        n_records = page_rng.randrange(config.min_records, config.max_records + 1)
        businesses = [pool[page_rng.randrange(len(pool))] for _ in range(n_records)]
        records = [_record_values(b, config) for b in businesses]
        out = PageEmitter()
        zipcode_query = f"{page_rng.randrange(10000, 99999):05d}"
        chrome.emit_head(out, f"{site_title} — results for {zipcode_query}")
        chrome.emit_header(out, page_rng)
        noise: list[str] | None = None
        if page_rng.random() < config.partner_box_rate:
            noise = page_rng.sample(dictionary, k=page_rng.randrange(1, 3))
        chrome.emit_sidebar(out, page_rng, noise_entries=noise)
        out.raw("<p>")
        out.text(
            f"There are {n_records} stores within 50 miles of zipcode "
            f"{zipcode_query}"
        )
        out.raw("</p>")
        layout.emit(out, records, gold_types)
        if page_rng.random() < config.featured_brand_rate:
            out.raw("<div><h4>Featured brand</h4><p>")
            out.text(page_rng.choice(dictionary))
            out.raw("</p></div>")
        chrome.emit_footer(out, page_rng)
        rendered.append((out.html(), out.spans))

    spec = SiteSpec(name=f"dealers-{index:03d}", domain="dealers", seed=site_seed)
    generated = assemble_site(
        spec,
        rendered,
        metadata={"layout": layout.kind, "site_title": site_title},
    )
    if "zipcode" not in generated.gold and config.separate_zip:
        generated.gold["zipcode"] = frozenset()
    return generated


def dictionary_recall_upper_bound(
    dataset: DealersDataset,
) -> float:
    """Fraction of gold name nodes whose text is in the dictionary.

    This is the ceiling on the dictionary annotator's recall (useful for
    checking the generator hits the paper's ~0.24 target).
    """
    entries = {normalize_mention(entry) for entry in dataset.dictionary}
    total = hits = 0
    for generated in dataset.sites:
        for node_id in generated.gold.get("name", frozenset()):
            total += 1
            text = normalize_mention(generated.site.text_node(node_id).text)
            if text in entries:
                hits += 1
    return hits / total if total else 0.0
