"""Dataset generators: the web-publication model as a simulator.

The paper evaluates on crawled websites (330 dealer locators, 15
discography sites, 10 shopping sites) that we cannot fetch.  Section 2.1
models how such sites come to be — pick a schema, pick a rendering
script, render database records into pages — and this subpackage *is*
that model, run forwards: per-site randomized templates render
synthetic entity records into HTML pages, with realistic chrome and
annotator-colliding noise, while tracking exactly which text nodes carry
which field (the gold labels the paper obtained by hand-building rules).

Entry points: :func:`repro.datasets.dealers.generate_dealers`,
:func:`repro.datasets.disc.generate_disc`,
:func:`repro.datasets.products.generate_products`.
"""

from repro.datasets.sitegen import GeneratedSite, SiteSpec
from repro.datasets.dealers import generate_dealers
from repro.datasets.disc import generate_disc
from repro.datasets.products import generate_products

__all__ = [
    "GeneratedSite",
    "SiteSpec",
    "generate_dealers",
    "generate_disc",
    "generate_products",
]
