"""Rendering machinery: emitters, chrome, and per-site listing layouts.

A *rendering script* in the paper's publication model is a deterministic
function from records to HTML.  :class:`PageEmitter` builds the HTML
string while recording the character span of every gold value it writes,
so the generator can later resolve gold labels to parsed text nodes
without any string matching (and therefore without ambiguity when the
same string also appears as annotator-colliding noise).

:class:`ListingLayout` implements five structural families for listing
pages (the kinds of markup dealer locators actually use): one-cell-per-
record tables, one-column-per-field tables, stacked divs, ``ul`` lists
and definition lists.  All tag classes, field wrappers and orderings are
drawn per-site from the supplied RNG, giving each generated site a
distinct rendering script while all pages within a site share one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.htmldom.entities import encode_entities

# -- emitter -------------------------------------------------------------------


@dataclass(slots=True)
class GoldSpan:
    """A gold value's character span in the emitted page."""

    start: int
    end: int
    type_name: str


class PageEmitter:
    """Accumulates HTML text and records gold value spans."""

    __slots__ = ("_parts", "_length", "spans")

    def __init__(self) -> None:
        self._parts: list[str] = []
        self._length = 0
        self.spans: list[GoldSpan] = []

    def raw(self, text: str) -> None:
        """Append literal markup."""
        self._parts.append(text)
        self._length += len(text)

    def text(self, text: str) -> None:
        """Append entity-encoded character data."""
        self.raw(encode_entities(text))

    def value(self, text: str, type_name: str | None = None) -> None:
        """Append an encoded value, recording its span when it is gold."""
        encoded = encode_entities(text)
        if type_name is not None:
            self.spans.append(
                GoldSpan(
                    start=self._length,
                    end=self._length + len(encoded),
                    type_name=type_name,
                )
            )
        self.raw(encoded)

    def html(self) -> str:
        return "".join(self._parts)


# -- shared chrome --------------------------------------------------------------

_CLASS_WORDS = [
    "main", "content", "results", "listing", "dealer", "store", "info",
    "panel", "box", "area", "wrap", "block", "grid", "row", "col",
    "page", "body", "inner", "outer", "list", "data", "view",
]

_NAV_LABELS = [
    "Home", "About Us", "Our Products", "Dealer Locator", "Contact Us",
    "Events", "Employment", "FAQ", "Support", "News", "Careers",
]

_PROMO_LINES = [
    "Free shipping on orders over $50!",
    "Sign up for our newsletter and save 10%.",
    "Now hiring in all locations.",
    "Visit our clearance center for weekly deals.",
    "Financing available on approved credit.",
    "Follow us for seasonal promotions.",
]


def make_class(rng: random.Random) -> str:
    """A plausible site-specific CSS class name."""
    a = rng.choice(_CLASS_WORDS)
    b = rng.choice(_CLASS_WORDS)
    style = rng.randrange(3)
    if style == 0:
        return f"{a}-{b}"
    if style == 1:
        return a + b.capitalize()
    return a + str(rng.randrange(1, 9))


@dataclass(slots=True)
class Chrome:
    """Per-site page chrome: header, navigation, sidebar, footer."""

    site_title: str
    header_class: str
    nav_class: str
    sidebar_class: str
    footer_class: str
    nav_labels: list[str] = field(default_factory=list)

    @classmethod
    def build(cls, rng: random.Random, site_title: str) -> "Chrome":
        labels = rng.sample(_NAV_LABELS, k=rng.randrange(4, 8))
        return cls(
            site_title=site_title,
            header_class=make_class(rng),
            nav_class=make_class(rng),
            sidebar_class=make_class(rng),
            footer_class=make_class(rng),
            nav_labels=labels,
        )

    def emit_head(self, out: PageEmitter, page_title: str) -> None:
        out.raw("<html><head><title>")
        out.text(page_title)
        out.raw("</title></head><body>")

    def emit_header(self, out: PageEmitter, rng: random.Random) -> None:
        out.raw(f'<div class="{self.header_class}"><h1>')
        out.text(self.site_title)
        out.raw(f'</h1></div><ul class="{self.nav_class}">')
        for label in self.nav_labels:
            out.raw('<li><a href="#">')
            out.text(label)
            out.raw("</a></li>")
        out.raw("</ul>")

    def emit_sidebar(
        self,
        out: PageEmitter,
        rng: random.Random,
        noise_entries: list[str] | None = None,
        noise_heading: str = "Featured partners",
    ) -> None:
        """Sidebar promo box; ``noise_entries`` become standalone text
        nodes that can collide with dictionary annotators."""
        out.raw(f'<div class="{self.sidebar_class}"><p>')
        out.text(rng.choice(_PROMO_LINES))
        out.raw("</p>")
        if noise_entries:
            out.raw("<h4>")
            out.text(noise_heading)
            out.raw("</h4><ul>")
            for entry in noise_entries:
                out.raw("<li>")
                out.text(entry)
                out.raw("</li>")
            out.raw("</ul>")
        out.raw("</div>")

    def emit_footer(self, out: PageEmitter, rng: random.Random) -> None:
        out.raw(f'<div class="{self.footer_class}"><p>')
        out.text(f"© 2010 {self.site_title}. All rights reserved.")
        out.raw("</p><p>")
        out.text(" | ".join(self.nav_labels[:3]))
        out.raw("</p></div></body></html>")


# -- listing layouts --------------------------------------------------------------

#: Tags a layout may wrap the primary (name) field in.
_NAME_WRAPS = ["u", "b", "strong", "em", "span", "a"]

LAYOUTS = (
    "table-cell",
    "table-columns",
    "div-stack",
    "ul-list",
    "dl-list",
    "bold-cols",
)

#: Rotating bold callouts used by the ``bold-cols`` layout.  They share
#: the name column's exact local character context (``<td><b>...``), so
#: no LR delimiter pair can isolate the name on such sites — the paper's
#: "a perfect LR wrapper does not exist for some websites" phenomenon —
#: while the xpath child-number feature still can.
_BOLD_PROMOS = ["In Stock", "Call for availability", "Authorized dealer"]


@dataclass(slots=True)
class ListingLayout:
    """One site's rendering script for a list of field-tuple records.

    ``fields`` is the ordered field list; each record is a mapping from
    field name to string.  ``primary`` is the field wrapped in its own
    inline tag (the extraction target); ``own_node_fields`` maps other
    fields to the inline tag each renders in — distinct tags keep the
    fields xpath-separable even in flat layouts, which the multi-type
    experiments need; unmapped fields are plain text lines.
    """

    kind: str
    container_class: str
    item_class: str
    name_wrap: str
    primary: str
    fields: tuple[str, ...]
    own_node_fields: dict[str, str]
    include_extras: bool

    @classmethod
    def build(
        cls,
        rng: random.Random,
        primary: str,
        fields: tuple[str, ...],
        own_node_fields: dict[str, str] | None = None,
        kind: str | None = None,
    ) -> "ListingLayout":
        return cls(
            kind=kind if kind is not None else rng.choice(LAYOUTS),
            container_class=make_class(rng),
            item_class=make_class(rng),
            name_wrap=rng.choice(_NAME_WRAPS),
            primary=primary,
            fields=fields,
            own_node_fields=dict(own_node_fields or {}),
            include_extras=rng.random() < 0.5,
        )

    # Each record is a dict field -> value; gold_types maps a field name
    # to the gold type recorded for it (absent = not gold).
    def emit(
        self,
        out: PageEmitter,
        records: list[dict[str, str]],
        gold_types: dict[str, str],
    ) -> None:
        emitters = {
            "table-cell": self._emit_table_cell,
            "table-columns": self._emit_table_columns,
            "div-stack": self._emit_div_stack,
            "ul-list": self._emit_ul_list,
            "dl-list": self._emit_dl_list,
            "bold-cols": self._emit_bold_cols,
        }
        emitters[self.kind](out, records, gold_types)

    # -- helpers -----------------------------------------------------------

    def _emit_primary(
        self, out: PageEmitter, value: str, gold_types: dict[str, str]
    ) -> None:
        tag = self.name_wrap
        attrs = ' href="#"' if tag == "a" else ""
        out.raw(f"<{tag}{attrs}>")
        out.value(value, gold_types.get(self.primary))
        out.raw(f"</{tag}>")

    def _emit_field(
        self, out: PageEmitter, name: str, value: str, gold_types: dict[str, str]
    ) -> None:
        tag = self.own_node_fields.get(name)
        if tag is not None:
            out.raw(f"<{tag}>")
            out.value(value, gold_types.get(name))
            out.raw(f"</{tag}>")
        else:
            out.value(value, gold_types.get(name))

    def _emit_extras(self, out: PageEmitter) -> None:
        if self.include_extras:
            out.raw('<a href="#">Map &amp; Directions</a>')

    # -- layout families ----------------------------------------------------

    def _emit_table_cell(self, out, records, gold_types) -> None:
        out.raw(f'<div class="{self.container_class}"><table>')
        for record in records:
            out.raw(f'<tr><td class="{self.item_class}">')
            self._emit_primary(out, record[self.primary], gold_types)
            out.raw("<br>")
            for name in self.fields:
                if name == self.primary:
                    continue
                self._emit_field(out, name, record[name], gold_types)
                out.raw("<br>")
            out.raw("</td><td>")
            self._emit_extras(out)
            out.raw("</td></tr>")
        out.raw("</table></div>")

    def _emit_table_columns(self, out, records, gold_types) -> None:
        out.raw(f'<table class="{self.container_class}">')
        for record in records:
            out.raw("<tr>")
            for name in self.fields:
                out.raw(f'<td class="{self.item_class}">' if name == self.primary else "<td>")
                if name == self.primary:
                    self._emit_primary(out, record[name], gold_types)
                else:
                    self._emit_field(out, name, record[name], gold_types)
                out.raw("</td>")
            if self.include_extras:
                out.raw("<td>")
                self._emit_extras(out)
                out.raw("</td>")
            out.raw("</tr>")
        out.raw("</table>")

    def _emit_div_stack(self, out, records, gold_types) -> None:
        out.raw(f'<div class="{self.container_class}">')
        for record in records:
            out.raw(f'<div class="{self.item_class}"><h3>')
            self._emit_primary(out, record[self.primary], gold_types)
            out.raw("</h3>")
            for name in self.fields:
                if name == self.primary:
                    continue
                out.raw("<p>")
                self._emit_field(out, name, record[name], gold_types)
                out.raw("</p>")
            self._emit_extras(out)
            out.raw("</div>")
        out.raw("</div>")

    def _emit_ul_list(self, out, records, gold_types) -> None:
        out.raw(f'<ul class="{self.container_class}">')
        for record in records:
            out.raw(f'<li class="{self.item_class}">')
            self._emit_primary(out, record[self.primary], gold_types)
            for name in self.fields:
                if name == self.primary:
                    continue
                out.raw("<span>")
                self._emit_field(out, name, record[name], gold_types)
                out.raw("</span>")
            self._emit_extras(out)
            out.raw("</li>")
        out.raw("</ul>")

    def _emit_bold_cols(self, out, records, gold_types) -> None:
        """Plain table; name and a rotating promo both render as
        ``<td><b>...</b></td>`` between variable-text columns."""
        other_fields = [n for n in self.fields if n != self.primary]
        out.raw(f'<table class="{self.container_class}">')
        for index, record in enumerate(records):
            out.raw("<tr><td>")
            self._emit_field(out, other_fields[0], record[other_fields[0]], gold_types)
            out.raw("</td><td><b>")
            out.value(record[self.primary], gold_types.get(self.primary))
            out.raw("</b></td>")
            for name in other_fields[1:]:
                out.raw("<td>")
                self._emit_field(out, name, record[name], gold_types)
                out.raw("</td>")
            out.raw("<td><b>")
            out.text(_BOLD_PROMOS[index % len(_BOLD_PROMOS)])
            out.raw('</b></td><td><a href="#">Map</a></td></tr>')
        out.raw("</table>")

    def _emit_dl_list(self, out, records, gold_types) -> None:
        out.raw(f'<dl class="{self.container_class}">')
        for record in records:
            out.raw("<dt>")
            self._emit_primary(out, record[self.primary], gold_types)
            out.raw("</dt>")
            for name in self.fields:
                if name == self.primary:
                    continue
                out.raw("<dd>")
                self._emit_field(out, name, record[name], gold_types)
                out.raw("</dd>")
            if self.include_extras:
                out.raw("<dd>")
                self._emit_extras(out)
                out.raw("</dd>")
        out.raw("</dl>")
