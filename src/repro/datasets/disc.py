"""The DISC dataset: discography sites with album/track listings.

The paper crawled 15 discography sites (Fig. 8) and annotated track
names against 11 seed albums (Fig. 9); the annotator measured precision
0.8 / recall 0.9 *on pages with at least one annotation*.  Errors come
from track titles matching album titles and from titles quoted inside
user comments.  This generator reproduces the setting:

- 15 per-site rendering scripts; one page per album; each site carries
  a random slice of a shared album catalog that always includes several
  of the 11 seed albums (so every site is annotatable);
- track titles are occasionally decorated ("(Live)", "(Remastered)" or
  a leading track number inside the same text node), which breaks exact
  dictionary matching — the recall knob;
- review/quote blocks render seed track titles as standalone text nodes
  — the precision knob;
- the album title appears consistently in the ``<title>`` tag, the main
  heading and a breadcrumb, giving the multiple-correct-wrapper
  situation of the single-entity experiment (App. B.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.annotators.dictionary import DictionaryAnnotator
from repro.datasets.entities import Album, album_catalog
from repro.datasets.sitegen import GeneratedSite, SiteSpec, assemble_site
from repro.datasets.templates import Chrome, PageEmitter, make_class

#: Paper scale: 15 sites, 11 seed albums.
DEFAULT_SITES = 15
SEED_ALBUMS = 11


@dataclass(slots=True)
class DiscConfig:
    """Knobs of the DISC generator (targets precision ~0.8, recall ~0.9)."""

    n_sites: int = DEFAULT_SITES
    catalog_size: int = 70
    min_albums: int = 18
    max_albums: int = 30
    min_seed_albums: int = 4
    decoration_rate: float = 0.10
    quote_block_rate: float = 0.22
    seed: int = 23


@dataclass(slots=True)
class DiscDataset:
    """The generated dataset plus its seed-track dictionary."""

    sites: list[GeneratedSite]
    seed_albums: list[Album]
    config: DiscConfig = field(default_factory=DiscConfig)

    def track_dictionary(self) -> list[str]:
        return [track for album in self.seed_albums for track in album.tracks]

    def annotator(self) -> DictionaryAnnotator:
        return DictionaryAnnotator(self.track_dictionary())

    def title_annotator(self) -> DictionaryAnnotator:
        """Album-title annotator for the single-entity task (App. B.2)."""
        return DictionaryAnnotator([album.title for album in self.seed_albums])


def generate_disc(
    n_sites: int = DEFAULT_SITES,
    seed: int = 23,
    config: DiscConfig | None = None,
) -> DiscDataset:
    """Generate the DISC dataset (deterministic in ``seed``)."""
    if config is None:
        config = DiscConfig(n_sites=n_sites, seed=seed)
    catalog = album_catalog(config.catalog_size, seed=config.seed * 1000 + 1)
    seeds = catalog[:SEED_ALBUMS]
    sites = [
        _generate_site(index, catalog, seeds, config)
        for index in range(config.n_sites)
    ]
    return DiscDataset(sites=sites, seed_albums=seeds, config=config)


_TRACK_LAYOUTS = ("ol-list", "table-rows", "div-rows")
_DECORATIONS = [" (Live)", " (Remastered)", " (Bonus Track)", " [Demo]"]


def _generate_site(
    index: int,
    catalog: list[Album],
    seeds: list[Album],
    config: DiscConfig,
) -> GeneratedSite:
    site_seed = config.seed * 100000 + index
    rng = random.Random(site_seed)
    site_title = f"{make_class(rng).title()} Music Archive {index + 1}"
    chrome = Chrome.build(rng, site_title)
    layout = rng.choice(_TRACK_LAYOUTS)
    container_class = make_class(rng)
    row_class = make_class(rng)

    n_albums = rng.randrange(config.min_albums, config.max_albums + 1)
    n_seeds = max(config.min_seed_albums, min(len(seeds), n_albums // 4))
    chosen_seeds = rng.sample(seeds, n_seeds)
    others = [album for album in catalog if album not in seeds]
    chosen = chosen_seeds + rng.sample(others, n_albums - n_seeds)
    rng.shuffle(chosen)

    seed_track_pool = [track for album in seeds for track in album.tracks]

    rendered = []
    for page_number, album in enumerate(chosen):
        page_rng = random.Random(site_seed * 1000 + page_number)
        out = PageEmitter()
        _emit_album_page(
            out,
            album,
            chrome,
            layout,
            container_class,
            row_class,
            seed_track_pool,
            page_rng,
            config,
        )
        rendered.append((out.html(), out.spans))

    spec = SiteSpec(name=f"disc-{index:02d}", domain="disc", seed=site_seed)
    generated = assemble_site(
        spec,
        rendered,
        metadata={
            "layout": layout,
            "albums": [album.title for album in chosen],
            "n_seed_albums": n_seeds,
        },
    )
    # Single-entity variants: title in <title>, heading, breadcrumb are
    # each a complete, consistent one-per-page gold set.
    variants = [
        generated.gold.get(key, frozenset())
        for key in ("title_head", "title_heading", "title_breadcrumb")
        if generated.gold.get(key)
    ]
    generated.gold_variants["album_title"] = [v for v in variants if v]
    # The canonical gold for the title task is the main heading.
    generated.gold["album_title"] = generated.gold.get("title_heading", frozenset())
    return generated


def _emit_album_page(
    out: PageEmitter,
    album: Album,
    chrome: Chrome,
    layout: str,
    container_class: str,
    row_class: str,
    seed_track_pool: list[str],
    rng: random.Random,
    config: DiscConfig,
) -> None:
    out.raw("<html><head><title>")
    out.value(album.title, "title_head")
    out.raw("</title></head><body>")
    chrome.emit_header(out, rng)
    out.raw('<p class="crumbs">Albums &gt; ')
    out.raw("<span>")
    out.value(album.title, "title_breadcrumb")
    out.raw("</span></p>")
    out.raw("<h2>")
    out.value(album.title, "title_heading")
    out.raw("</h2><p>")
    out.text(f"by {album.artist} ({album.year})")
    out.raw("</p>")
    _emit_tracks(out, album, layout, container_class, row_class, rng, config)
    if rng.random() < config.quote_block_rate:
        _emit_review(out, seed_track_pool, rng)
    chrome.emit_footer(out, rng)


def _track_text(track: str, number: int, rng: random.Random, config: DiscConfig) -> tuple[str, bool]:
    """Rendered track text and whether it still exactly matches the title."""
    if rng.random() < config.decoration_rate:
        style = rng.randrange(2)
        if style == 0:
            return track + rng.choice(_DECORATIONS), False
        return f"{number}. {track}", False
    return track, True


def _emit_tracks(
    out: PageEmitter,
    album: Album,
    layout: str,
    container_class: str,
    row_class: str,
    rng: random.Random,
    config: DiscConfig,
) -> None:
    durations = [f"{rng.randrange(2, 6)}:{rng.randrange(10, 59)}" for _ in album.tracks]
    if layout == "ol-list":
        out.raw(f'<ol class="{container_class}">')
        for number, track in enumerate(album.tracks, start=1):
            text, _ = _track_text(track, number, rng, config)
            out.raw(f'<li class="{row_class}"><span>')
            out.value(text, "track")
            out.raw("</span><em>")
            out.text(durations[number - 1])
            out.raw("</em></li>")
        out.raw("</ol>")
    elif layout == "table-rows":
        out.raw(f'<table class="{container_class}">')
        for number, track in enumerate(album.tracks, start=1):
            text, _ = _track_text(track, number, rng, config)
            out.raw(f"<tr><td>{number}</td><td class=\"{row_class}\">")
            out.value(text, "track")
            out.raw("</td><td>")
            out.text(durations[number - 1])
            out.raw("</td></tr>")
        out.raw("</table>")
    else:
        out.raw(f'<div class="{container_class}">')
        for number, track in enumerate(album.tracks, start=1):
            text, _ = _track_text(track, number, rng, config)
            out.raw(f'<div class="{row_class}"><b>')
            out.value(text, "track")
            out.raw("</b><span>")
            out.text(durations[number - 1])
            out.raw("</span></div>")
        out.raw("</div>")


def _emit_review(out: PageEmitter, seed_track_pool: list[str], rng: random.Random) -> None:
    """A user-review block quoting seed tracks as standalone text nodes."""
    out.raw('<div class="reviews"><h4>User reviews</h4>')
    for _ in range(rng.randrange(1, 3)):
        out.raw("<p>")
        out.text(
            rng.choice(
                [
                    "Absolutely essential listening.",
                    "The pressing quality is superb.",
                    "A classic from start to finish.",
                ]
            )
        )
        out.raw("</p><blockquote>")
        out.text(rng.choice(seed_track_pool))
        out.raw("</blockquote>")
    out.raw("</div>")
