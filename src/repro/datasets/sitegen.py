"""Assembly of generated sites: render -> parse -> resolve gold labels.

The emitters in :mod:`repro.datasets.templates` record the character
span of every gold value they write.  After parsing, each span is
resolved to the text node containing it, giving exact gold label sets
per type — the ground truth the paper obtained by manually writing a
correct rule per website.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.datasets.templates import GoldSpan
from repro.htmldom.dom import NodeId, TextNode
from repro.site import Site
from repro.wrappers.base import Labels


@dataclass(frozen=True, slots=True)
class SiteSpec:
    """Identifying parameters of one generated site."""

    name: str
    domain: str
    seed: int


@dataclass(slots=True)
class GeneratedSite:
    """A generated site with its gold labels.

    Attributes:
        spec: generation parameters (name, domain, per-site seed).
        site: the parsed pages.
        gold: per-type gold node-id sets (e.g. ``gold["name"]``).
        gold_variants: for single-entity tasks, alternative complete gold
            sets that are each individually correct (paper App. B.2 notes
            sites can have several consistent locations for the entity).
        metadata: free-form extras benches may need (record counts, ...).
    """

    spec: SiteSpec
    site: Site
    gold: dict[str, Labels]
    gold_variants: dict[str, list[Labels]] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name


class GoldResolutionError(RuntimeError):
    """A recorded gold span did not land inside a parsed text node."""


def resolve_gold(
    site: Site, spans_per_page: list[list[GoldSpan]]
) -> dict[str, Labels]:
    """Map recorded gold spans to the text nodes containing them."""
    gold: dict[str, set[NodeId]] = {}
    for page_index, spans in enumerate(spans_per_page):
        page = site.pages[page_index]
        text_nodes = [
            node for node in page.nodes if isinstance(node, TextNode) and node.start >= 0
        ]
        starts = [node.start for node in text_nodes]
        for span in spans:
            position = bisect.bisect_right(starts, span.start) - 1
            if position < 0:
                raise GoldResolutionError(
                    f"span {span} on page {page_index} precedes all text nodes"
                )
            node = text_nodes[position]
            if not (node.start <= span.start and span.end <= node.end):
                raise GoldResolutionError(
                    f"span {span} on page {page_index} not inside the "
                    f"covering text node [{node.start}, {node.end})"
                )
            gold.setdefault(span.type_name, set()).add(node.node_id)
    return {type_name: frozenset(ids) for type_name, ids in gold.items()}


def assemble_site(
    spec: SiteSpec,
    rendered_pages: list[tuple[str, list[GoldSpan]]],
    metadata: dict | None = None,
) -> GeneratedSite:
    """Parse rendered pages and resolve their gold spans into a site."""
    site = Site.from_html(spec.name, [html for html, _ in rendered_pages])
    gold = resolve_gold(site, [spans for _, spans in rendered_pages])
    return GeneratedSite(
        spec=spec, site=site, gold=gold, metadata=metadata or {}
    )
