"""Assembly of generated sites: render -> parse -> resolve gold labels.

The emitters in :mod:`repro.datasets.templates` record the character
span of every gold value they write.  After parsing, each span is
resolved to the text node containing it, giving exact gold label sets
per type — the ground truth the paper obtained by manually writing a
correct rule per website.

This module also hosts the *template-drift mutation generator*
(:func:`drift_site` / :func:`drift_html`): deterministic, text-
preserving rewrites of a generated site's rendering — CSS class
renames, wrapper-div insertion, systematic attribute churn — that
simulate the site redesigns a deployed wrapper must survive.  Because
the mutations never touch character data, gold labels carry over to the
mutated pages by text-node position, giving drift scenarios with exact
ground truth (see :mod:`repro.lifecycle` for the detect/repair side).
"""

from __future__ import annotations

import bisect
import random
import re
import zlib
from dataclasses import dataclass, field, replace

from repro.datasets.templates import GoldSpan
from repro.htmldom.dom import NodeId, TextNode
from repro.site import Site
from repro.wrappers.base import Labels


@dataclass(frozen=True, slots=True)
class SiteSpec:
    """Identifying parameters of one generated site."""

    name: str
    domain: str
    seed: int


@dataclass(slots=True)
class GeneratedSite:
    """A generated site with its gold labels.

    Attributes:
        spec: generation parameters (name, domain, per-site seed).
        site: the parsed pages.
        gold: per-type gold node-id sets (e.g. ``gold["name"]``).
        gold_variants: for single-entity tasks, alternative complete gold
            sets that are each individually correct (paper App. B.2 notes
            sites can have several consistent locations for the entity).
        metadata: free-form extras benches may need (record counts, ...).
    """

    spec: SiteSpec
    site: Site
    gold: dict[str, Labels]
    gold_variants: dict[str, list[Labels]] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name


class GoldResolutionError(RuntimeError):
    """A recorded gold span did not land inside a parsed text node."""


def resolve_gold(
    site: Site, spans_per_page: list[list[GoldSpan]]
) -> dict[str, Labels]:
    """Map recorded gold spans to the text nodes containing them."""
    gold: dict[str, set[NodeId]] = {}
    for page_index, spans in enumerate(spans_per_page):
        page = site.pages[page_index]
        text_nodes = [
            node for node in page.nodes if isinstance(node, TextNode) and node.start >= 0
        ]
        starts = [node.start for node in text_nodes]
        for span in spans:
            position = bisect.bisect_right(starts, span.start) - 1
            if position < 0:
                raise GoldResolutionError(
                    f"span {span} on page {page_index} precedes all text nodes"
                )
            node = text_nodes[position]
            if not (node.start <= span.start and span.end <= node.end):
                raise GoldResolutionError(
                    f"span {span} on page {page_index} not inside the "
                    f"covering text node [{node.start}, {node.end})"
                )
            gold.setdefault(span.type_name, set()).add(node.node_id)
    return {type_name: frozenset(ids) for type_name, ids in gold.items()}


def assemble_site(
    spec: SiteSpec,
    rendered_pages: list[tuple[str, list[GoldSpan]]],
    metadata: dict | None = None,
) -> GeneratedSite:
    """Parse rendered pages and resolve their gold spans into a site."""
    site = Site.from_html(spec.name, [html for html, _ in rendered_pages])
    gold = resolve_gold(site, [spans for _, spans in rendered_pages])
    return GeneratedSite(
        spec=spec, site=site, gold=gold, metadata=metadata or {}
    )


# -- template drift mutations -------------------------------------------------

#: Named severity presets of :meth:`DriftConfig.for_severity`.
DRIFT_SEVERITIES = ("low", "medium", "high")

#: Tags whose open tags may receive churned attributes.  All are
#: container/inline tags the generated layouts use; mutating them never
#: changes text content or tag nesting validity.
_CHURN_TAGS = (
    "div", "table", "tr", "td", "ul", "li", "dl", "dt", "dd",
    "span", "p", "h1", "h3", "h4", "b", "u", "strong", "em", "a",
)

_CLASS_ATTR_RE = re.compile(r'class="([^"]*)"')
_BODY_OPEN_RE = re.compile(r"<body\b[^>]*>", re.IGNORECASE)
_BODY_CLOSE_RE = re.compile(r"</body\s*>", re.IGNORECASE)


class DriftError(RuntimeError):
    """A mutation broke the text-node alignment gold remapping needs."""


@dataclass(frozen=True, slots=True)
class DriftConfig:
    """Knobs of the template-drift generator.

    All mutations are *systematic* — applied template-wide, consistently
    across every page of the site — because real drift is a rendering-
    script change, not per-page noise (and a post-drift relearn must
    still find a template-consistent rule).

    Attributes:
        class_rename_rate: fraction of distinct CSS class values renamed
            site-wide (breaks rules and delimiters keyed on classes).
        attribute_churn_rate: fraction of eligible tag *names* whose
            every open tag gains a new synthetic attribute (breaks
            character-context delimiters; structure-only rules survive).
        wrapper_depth: nested ``<div>`` wrappers inserted around each
            page's body content (shifts ancestor paths and depths).
    """

    class_rename_rate: float = 0.0
    attribute_churn_rate: float = 0.0
    wrapper_depth: int = 0

    @classmethod
    def for_severity(cls, severity: str) -> "DriftConfig":
        """Preset mutation mixes of increasing violence.

        ``low`` churns attributes only (character contexts move, tree
        structure intact); ``medium`` additionally renames most classes
        (attribute-keyed rules break); ``high`` also wraps the body in
        new container divs (ancestor paths shift).
        """
        presets = {
            "low": cls(attribute_churn_rate=0.35),
            "medium": cls(attribute_churn_rate=0.5, class_rename_rate=0.7),
            "high": cls(
                attribute_churn_rate=0.8,
                class_rename_rate=1.0,
                wrapper_depth=2,
            ),
        }
        try:
            return presets[severity]
        except KeyError:
            raise ValueError(
                f"unknown drift severity {severity!r} "
                f"(choose from {', '.join(DRIFT_SEVERITIES)})"
            ) from None


def drift_html(
    sources: list[str],
    severity: str = "medium",
    seed: int = 0,
    config: DriftConfig | None = None,
) -> list[str]:
    """Mutate the pages of one site, template-consistently.

    The same rename map, churn plan and wrapper chrome apply to every
    page (the mutation is a rendering-script update).  Text content is
    never modified, so extraction ground truth carries over by text-node
    position — :func:`drift_site` does that remap for generated sites.
    Deterministic in ``(severity, seed, sources)``.
    """
    if config is None:
        config = DriftConfig.for_severity(severity)
    rng = random.Random(f"drift:{severity}:{seed}")
    renames = _class_rename_map(sources, rng, config.class_rename_rate)
    churn = _churn_plan(sources, rng, config.attribute_churn_rate)
    mutated = []
    for source in sources:
        if renames:
            source = _CLASS_ATTR_RE.sub(
                lambda match: f'class="{renames.get(match.group(1), match.group(1))}"',
                source,
            )
        for tag, attribute in churn:
            source = re.sub(rf"<{tag}(?=[\s>])", f"<{tag} {attribute}", source)
        if config.wrapper_depth > 0:
            source = _wrap_body(source, config.wrapper_depth)
        mutated.append(source)
    return mutated


def drift_site(
    generated: GeneratedSite,
    severity: str = "medium",
    seed: int = 0,
    config: DriftConfig | None = None,
) -> GeneratedSite:
    """A drifted copy of a generated site with gold labels remapped.

    Page sources are mutated via :func:`drift_html`, reparsed, and every
    gold node id (and gold variant) is carried over by per-page
    text-node position — mutations never touch character data, so the
    alignment is exact (verified text-for-text; :class:`DriftError`
    otherwise).  The returned site keeps the original name (a drifted
    site is *the same site*, later in time) and records the mutation in
    ``metadata["drift"]``.
    """
    site = generated.site
    sources = [page.source for page in site.pages]
    if any(not source for source in sources):
        raise DriftError(
            f"site {site.name!r} has pages without HTML sources; "
            "drift mutations rewrite page sources"
        )
    drifted = Site.from_html(
        site.name, drift_html(sources, severity=severity, seed=seed, config=config)
    )
    remap = _text_node_alignment(site, drifted)
    gold = {
        type_name: frozenset(remap[node_id] for node_id in labels)
        for type_name, labels in generated.gold.items()
    }
    gold_variants = {
        type_name: [
            frozenset(remap[node_id] for node_id in variant)
            for variant in variants
        ]
        for type_name, variants in generated.gold_variants.items()
    }
    metadata = dict(generated.metadata)
    metadata["drift"] = {"severity": severity, "seed": seed}
    return GeneratedSite(
        spec=replace(generated.spec),
        site=drifted,
        gold=gold,
        gold_variants=gold_variants,
        metadata=metadata,
    )


def _class_rename_map(
    sources: list[str], rng: random.Random, rate: float
) -> dict[str, str]:
    """Site-wide rename map over distinct ``class`` attribute values."""
    if rate <= 0:
        return {}
    values = sorted(
        {
            match.group(1)
            for source in sources
            for match in _CLASS_ATTR_RE.finditer(source)
        }
    )
    return {
        value: f"v2-{zlib.crc32(value.encode('utf-8')) & 0xFFFF:04x}"
        for value in values
        if rng.random() < rate
    }


def _churn_plan(
    sources: list[str], rng: random.Random, rate: float
) -> list[tuple[str, str]]:
    """Which tag names gain which synthetic attribute, site-wide."""
    if rate <= 0:
        return []
    present = [
        tag
        for tag in _CHURN_TAGS
        if any(re.search(rf"<{tag}[\s>]", source) for source in sources)
    ]
    plan = []
    for tag in present:
        if rng.random() < rate:
            plan.append((tag, f'data-c{rng.randrange(10, 100)}="{rng.randrange(1000)}"'))
    return plan


def _wrap_body(source: str, depth: int) -> str:
    """Nest each page's body content inside ``depth`` new wrapper divs."""
    opens = "".join(f'<div class="skin-l{level}">' for level in range(depth))
    closes = "</div>" * depth
    open_match = _BODY_OPEN_RE.search(source)
    close_match = None
    for close_match in _BODY_CLOSE_RE.finditer(source):
        pass  # keep the last </body>
    if open_match is None:
        return opens + source + closes
    head = source[: open_match.end()]
    if close_match is None or close_match.start() < open_match.end():
        return head + opens + source[open_match.end() :] + closes
    return (
        head
        + opens
        + source[open_match.end() : close_match.start()]
        + closes
        + source[close_match.start() :]
    )


def _text_node_alignment(
    old_site: Site, new_site: Site
) -> dict[NodeId, NodeId]:
    """Old -> new text-node id map by per-page document position.

    Valid because drift mutations never create, remove, split or edit
    text nodes; verified text-for-text so a mutation that ever did would
    fail loudly instead of silently corrupting gold.
    """
    remap: dict[NodeId, NodeId] = {}
    for old_page, new_page in zip(old_site.pages, new_site.pages):
        old_nodes = [n for n in old_page.nodes if isinstance(n, TextNode)]
        new_nodes = [n for n in new_page.nodes if isinstance(n, TextNode)]
        if len(old_nodes) != len(new_nodes):
            raise DriftError(
                f"page {old_page.page_index}: text-node count changed "
                f"{len(old_nodes)} -> {len(new_nodes)} under mutation"
            )
        for old_node, new_node in zip(old_nodes, new_nodes):
            if old_node.text != new_node.text:
                raise DriftError(
                    f"page {old_page.page_index}: text node content "
                    f"changed under mutation ({old_node.text!r} -> "
                    f"{new_node.text!r})"
                )
            remap[old_node.node_id] = new_node.node_id
    return remap
