"""The PRODUCTS dataset: shopping sites selling cellphones (App. B.1).

The paper crawled 10 shopping sites and annotated phone listings with a
463-entry dictionary built from the Wikipedia model lists of five
brands.  This generator reproduces the setting: 10 per-site rendering
scripts, several category pages per site, each listing phones drawn from
a pool that mixes dictionary brands with out-of-dictionary brands (so
the annotator's recall is partial by construction), plus "top sellers"
boxes that repeat dictionary phone names outside the main listing (the
precision noise).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.annotators.dictionary import DictionaryAnnotator
from repro.datasets.entities import Phone, phone_dictionary, phone_pool
from repro.datasets.sitegen import GeneratedSite, SiteSpec, assemble_site
from repro.datasets.templates import Chrome, ListingLayout, PageEmitter

#: Paper scale: 10 shopping sites, 463 dictionary entries.
DEFAULT_SITES = 10
DICTIONARY_SIZE = 463


@dataclass(slots=True)
class ProductsConfig:
    """Knobs of the PRODUCTS generator."""

    n_sites: int = DEFAULT_SITES
    pages_per_site: int = 8
    min_records: int = 5
    max_records: int = 12
    top_sellers_rate: float = 0.15
    per_brand: int = 93
    seed: int = 37


@dataclass(slots=True)
class ProductsDataset:
    """The generated dataset plus its model dictionary."""

    sites: list[GeneratedSite]
    dictionary: list[str]
    config: ProductsConfig = field(default_factory=ProductsConfig)

    def annotator(self) -> DictionaryAnnotator:
        return DictionaryAnnotator(self.dictionary)


def generate_products(
    n_sites: int = DEFAULT_SITES,
    pages_per_site: int = 8,
    seed: int = 37,
    config: ProductsConfig | None = None,
) -> ProductsDataset:
    """Generate the PRODUCTS dataset (deterministic in ``seed``)."""
    if config is None:
        config = ProductsConfig(
            n_sites=n_sites, pages_per_site=pages_per_site, seed=seed
        )
    pool = phone_pool(config.per_brand, seed=config.seed * 1000 + 1)
    dictionary = phone_dictionary(pool)[:DICTIONARY_SIZE]
    sites = [
        _generate_site(index, pool, dictionary, config)
        for index in range(config.n_sites)
    ]
    return ProductsDataset(sites=sites, dictionary=dictionary, config=config)


_CATEGORIES = [
    "Smartphones", "Flip phones", "Slider phones", "Camera phones",
    "Budget phones", "Unlocked phones", "New arrivals", "Refurbished",
    "Best rated", "On sale",
]


def _generate_site(
    index: int,
    pool: list[Phone],
    dictionary: list[str],
    config: ProductsConfig,
) -> GeneratedSite:
    site_seed = config.seed * 100000 + index
    rng = random.Random(site_seed)
    site_title = f"PhoneShop {index + 1}"
    chrome = Chrome.build(rng, site_title)
    layout = ListingLayout.build(
        rng,
        primary="name",
        fields=("name", "price", "rating"),
        own_node_fields={"price": "span"},
    )
    gold_types = {"name": "name"}

    rendered = []
    for page_number in range(config.pages_per_site):
        page_rng = random.Random(site_seed * 1000 + page_number)
        n_records = page_rng.randrange(config.min_records, config.max_records + 1)
        phones = page_rng.sample(pool, n_records)
        records = [
            {"name": phone.name, "price": phone.price, "rating": phone.rating}
            for phone in phones
        ]
        out = PageEmitter()
        category = _CATEGORIES[page_number % len(_CATEGORIES)]
        chrome.emit_head(out, f"{site_title} — {category}")
        chrome.emit_header(out, page_rng)
        noise: list[str] | None = None
        if page_rng.random() < config.top_sellers_rate:
            noise = page_rng.sample(dictionary, k=page_rng.randrange(1, 3))
        chrome.emit_sidebar(
            out, page_rng, noise_entries=noise, noise_heading="Top sellers"
        )
        out.raw("<h2>")
        out.text(category)
        out.raw("</h2>")
        layout.emit(out, records, gold_types)
        chrome.emit_footer(out, page_rng)
        rendered.append((out.html(), out.spans))

    spec = SiteSpec(
        name=f"products-{index:02d}", domain="products", seed=site_seed
    )
    return assemble_site(
        spec, rendered, metadata={"layout": layout.kind, "site_title": site_title}
    )
