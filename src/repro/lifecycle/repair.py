"""Self-repair: cascade through the ranked-alternate ladder, then relearn.

At learn time the ranker scores an entire wrapper space and keeps one
winner; since schema v2 the artifact also carries the top runner-ups
(:attr:`~repro.api.artifacts.WrapperArtifact.alternates`).  When the
winner drifts, those alternates are the cheapest possible repair: rules
the learner already certified as near-best on this site, re-validated
against the *drifted* pages in one shared-engine batch — no enumeration,
no ranking, no annotator sweep.

:class:`RepairPolicy` runs the cascade:

1. **validate each alternate** (ladder order) on the drifted pages —
   against fresh weak annotations when available (the annotator is
   still the ground-truth proxy the paper trusts), and against the
   artifact's health baseline structurally (count ratio, emptiness)
   either way;
2. **promote the first that passes** into a new artifact: same
   provenance lineage, refreshed baseline measured on the drifted
   pages, remaining alternates kept as the next ladder;
3. **fall back to a full facade relearn** through
   :class:`~repro.api.extractor.Extractor` when the ladder is
   exhausted — the paper's one-shot induction re-run on the new
   template, using the same weak supervision that built the original.

Every attempt is recorded in a structured :class:`RepairReport`, so
operations can audit why a wrapper was swapped (and monitoring can
count alternate-promotions vs relearns — the repair benchmark does
exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.api.artifacts import WrapperArtifact
from repro.engine import EvaluationEngine, resolve_engine
from repro.lifecycle.monitor import (
    DriftReport,
    HealthBaseline,
    agreement_score,
    baseline_from_extraction,
    page_counts,
)
from repro.site import Site
from repro.telemetry import counter
from repro.telemetry import names as metric_names
from repro.wrappers.base import Labels, wrapper_from_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.annotators.base import Annotator
    from repro.api.extractor import Extractor

__all__ = [
    "AlternateAttempt",
    "RepairPolicy",
    "RepairReport",
    "rung_features",
    "select_diverse",
]


def rung_features(spec: dict) -> frozenset | None:
    """The structural feature set of a wrapper spec, or ``None``.

    Feature-conjunction wrappers (the xpath family) serialize as
    ``{"kind": ..., "features": [[position, kind, value], ...]}``;
    the rows come back as a hashable frozenset for subset comparison.
    Specs of other shapes are incomparable: return ``None`` so
    :func:`select_diverse` leaves them alone.
    """
    if not isinstance(spec, dict):
        return None
    rows = spec.get("features")
    if not isinstance(rows, list) or not rows:
        return None
    try:
        return frozenset(tuple(row) for row in rows)
    except TypeError:
        return None


def select_diverse(
    winner_spec: dict, specs: list[dict], k: int
) -> list[int]:
    """Indices of up to ``k`` specs forming a diversity-pruned ladder.

    The alternates ladder exists to survive drifts that kill the
    winner, so rungs must *fail differently* from it.  For
    feature-conjunction wrappers the features are ANDed constraints:
    a rung whose feature set is a superset of the winner's (or of a
    higher-ranked kept rung's) extracts a subset of that wrapper's
    nodes on every page — whenever the subsumed wrapper drifts to an
    empty extraction, the superset rung is empty too.  Such a rung can
    never repair the drift that broke what it subsumes; keeping it
    burns a ladder slot on a redundant failure mode.

    Candidates are scanned in ranked order and kept unless their
    feature set subsumes the winner's or an already-kept rung's.
    Incomparable specs (no feature rows) are always kept.  If pruning
    would leave free slots, the pruned rungs backfill in rank order —
    a redundant rung still beats an empty slot.
    """
    if k <= 0:
        return []
    winner = rung_features(winner_spec)
    kept: list[int] = []
    kept_features: list[frozenset] = [winner] if winner is not None else []
    pruned: list[int] = []
    for index, spec in enumerate(specs):
        features = rung_features(spec)
        if features is not None and any(
            features >= shadow for shadow in kept_features
        ):
            pruned.append(index)
            continue
        kept.append(index)
        if features is not None:
            kept_features.append(features)
        if len(kept) == k:
            return kept
    kept.extend(pruned[: k - len(kept)])
    return sorted(kept)


@dataclass(slots=True)
class AlternateAttempt:
    """Validation record of one ladder rung on the drifted pages."""

    rank: int
    rule: str
    promoted: bool
    extracted: int
    agreement: float | None = None
    count_ratio: float | None = None
    reasons: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "rule": self.rule,
            "promoted": self.promoted,
            "extracted": self.extracted,
            "agreement": self.agreement,
            "count_ratio": self.count_ratio,
            "reasons": list(self.reasons),
        }


@dataclass(slots=True)
class RepairReport:
    """Structured outcome of one repair cascade."""

    site: str
    strategy: str  # "alternate" | "relearn" | "failed"
    old_rule: str
    new_rule: str | None = None
    artifact: WrapperArtifact | None = None
    attempts: list[AlternateAttempt] = field(default_factory=list)
    promoted_rank: int | None = None
    error: str | None = None
    drift: DriftReport | None = None

    @property
    def ok(self) -> bool:
        return self.artifact is not None

    def to_dict(self) -> dict:
        """JSON-safe summary (the repaired artifact itself is omitted —
        serialize it separately via ``artifact.to_dict()``)."""
        payload: dict = {
            "site": self.site,
            "ok": self.ok,
            "strategy": self.strategy,
            "old_rule": self.old_rule,
            "new_rule": self.new_rule,
            "promoted_rank": self.promoted_rank,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.drift is not None:
            payload["drift"] = self.drift.to_dict()
        return payload


class RepairPolicy:
    """Validate-and-promote over an artifact's ranked-alternate ladder.

    Args:
        annotator: weak annotator used to (re)label the drifted pages
            when the caller supplies no explicit labels.  Without either,
            validation is structural only (against the artifact's
            baseline) and the relearn fallback is unavailable.
        extractor: :class:`~repro.api.extractor.Extractor` used for the
            full-relearn fallback when the ladder is exhausted (omit to
            disable relearning).
        engine: shared evaluation engine for alternate validation (the
            process default when omitted) — validating a ladder is one
            batch-extract on the drifted site.
        min_agreement: weak-label coverage an alternate must reach on
            the drifted pages when the baseline recorded no learn-time
            agreement to compare against.
        agreement_drop_tolerance: how far an alternate's weak-label
            coverage may fall *below* the learn-time coverage — losing
            much more means the rule no longer lands on the labeled
            content.
        agreement_gain_tolerance: how far it may rise *above* it — a
            deliberately tight bound, because the learn-time winner's
            coverage is what the ranker certified: labels it excluded
            are (statistically) the annotator's noise, and an alternate
            that suddenly covers them is scooping up chrome (the
            match-everything trap covers every label trivially).
        min_count_ratio / max_count_ratio: acceptable band of the
            alternate's nodes-per-page relative to the baseline mean
            (checked only when the artifact carries a baseline) — the
            structural half of the same trap guard.
    """

    def __init__(
        self,
        annotator: "Annotator | None" = None,
        extractor: "Extractor | None" = None,
        engine: EvaluationEngine | None = None,
        min_agreement: float = 0.6,
        agreement_drop_tolerance: float = 0.15,
        agreement_gain_tolerance: float = 0.05,
        min_count_ratio: float = 0.5,
        max_count_ratio: float = 2.0,
    ) -> None:
        self.annotator = annotator
        self.extractor = extractor
        self.engine = resolve_engine(engine)
        self.min_agreement = min_agreement
        self.agreement_drop_tolerance = agreement_drop_tolerance
        self.agreement_gain_tolerance = agreement_gain_tolerance
        self.min_count_ratio = min_count_ratio
        self.max_count_ratio = max_count_ratio

    # -- the cascade --------------------------------------------------------

    def repair(
        self,
        artifact: WrapperArtifact,
        site: Site,
        labels: Labels | None = None,
        drift: DriftReport | None = None,
    ) -> RepairReport:
        """Run the cascade for ``artifact`` on the drifted ``site``.

        ``labels`` are weak annotations of the drifted pages (computed
        via the policy's annotator when omitted).  ``drift`` optionally
        attaches the detection verdict that triggered the repair to the
        report.  Never raises for a failed repair — the report's
        ``strategy`` is ``"failed"`` and ``error`` says why.
        """
        report = self._repair(artifact, site, labels, drift)
        counter(metric_names.LIFECYCLE_REPAIRS).inc(strategy=report.strategy)
        if report.strategy == "alternate":
            counter(metric_names.LIFECYCLE_LADDER_HITS).inc()
        return report

    def _repair(
        self,
        artifact: WrapperArtifact,
        site: Site,
        labels: Labels | None,
        drift: DriftReport | None,
    ) -> RepairReport:
        site = _as_site(site)
        if labels is None and self.annotator is not None:
            try:
                labels = self.annotator.annotate(site)
            except Exception as error:
                return RepairReport(
                    site=site.name,
                    strategy="failed",
                    old_rule=artifact.rule,
                    error=f"annotator failed on drifted pages: "
                    f"{type(error).__name__}: {error}",
                    drift=drift,
                )
        baseline = artifact.health_baseline()
        if not labels and baseline is None:
            return RepairReport(
                site=site.name,
                strategy="failed",
                old_rule=artifact.rule,
                error=(
                    "nothing to validate against: no weak labels (pass "
                    "labels= or an annotator) and no stored baseline "
                    "(schema v1 artifact)"
                ),
                drift=drift,
            )
        attempts: list[AlternateAttempt] = []
        # One shared-engine batch over the whole ladder: alternates
        # evaluated during an earlier cascade are memo hits.
        wrappers = [
            wrapper_from_spec(alt["wrapper_spec"]) for alt in artifact.alternates
        ]
        extractions = self.engine.batch_extract(site, wrappers)
        for rank, (alternate, extracted) in enumerate(
            zip(artifact.alternates, extractions), start=1
        ):
            attempt = self._validate(
                rank, alternate, extracted, len(site), labels, baseline
            )
            attempts.append(attempt)
            if attempt.promoted:
                return RepairReport(
                    site=site.name,
                    strategy="alternate",
                    old_rule=artifact.rule,
                    new_rule=attempt.rule,
                    artifact=self._promote(artifact, site, rank, extracted, labels),
                    attempts=attempts,
                    promoted_rank=rank,
                    drift=drift,
                )
        return self._relearn(artifact, site, labels, attempts, drift)

    # -- steps --------------------------------------------------------------

    def _validate(
        self,
        rank: int,
        alternate: dict,
        extracted: Labels,
        n_pages: int,
        labels: Labels | None,
        baseline: HealthBaseline | None,
    ) -> AlternateAttempt:
        reasons: list[str] = []
        agreement = agreement_score(extracted, labels)
        ratio: float | None = None
        if not extracted:
            reasons.append("extracts nothing on the drifted pages")
        if agreement is not None:
            expected = baseline.agreement if baseline is not None else None
            if expected is None:
                if agreement < self.min_agreement:
                    reasons.append(
                        f"weak-label agreement {agreement:.2f} < "
                        f"{self.min_agreement}"
                    )
            elif agreement < expected - self.agreement_drop_tolerance:
                reasons.append(
                    f"weak-label agreement {agreement:.2f} fell more than "
                    f"{self.agreement_drop_tolerance} below the learn-time "
                    f"{expected:.2f} (lost labeled content)"
                )
            elif agreement > expected + self.agreement_gain_tolerance:
                reasons.append(
                    f"weak-label agreement {agreement:.2f} rose more than "
                    f"{self.agreement_gain_tolerance} above the learn-time "
                    f"{expected:.2f} (covers annotator noise the learn-time "
                    "ranker excluded)"
                )
        if baseline is not None and baseline.mean_per_page > 0:
            counts = page_counts(extracted, n_pages)
            mean = sum(counts) / len(counts) if counts else 0.0
            ratio = mean / baseline.mean_per_page
            if not (self.min_count_ratio <= ratio <= self.max_count_ratio):
                reasons.append(
                    f"nodes/page ratio {ratio:.2f} outside "
                    f"[{self.min_count_ratio}, {self.max_count_ratio}]"
                )
        return AlternateAttempt(
            rank=rank,
            rule=str(alternate.get("rule", "")),
            promoted=not reasons,
            extracted=len(extracted),
            agreement=agreement,
            count_ratio=ratio,
            reasons=reasons,
        )

    def _promote(
        self,
        artifact: WrapperArtifact,
        site: Site,
        rank: int,
        extracted: Labels,
        labels: Labels | None,
    ) -> WrapperArtifact:
        """Build the repaired artifact around the promoted alternate.

        The remaining rungs (including ones that failed *this* drift —
        they may pass the next) stay on as the new ladder; the demoted
        winner is dropped, since it just demonstrably broke.  The
        baseline is re-measured on the drifted pages, so the next
        detector compares against the post-repair profile.
        """
        promoted = artifact.alternates[rank - 1]
        remaining = [
            alt for index, alt in enumerate(artifact.alternates)
            if index != rank - 1
        ]
        provenance = dict(artifact.provenance)
        repairs = list(provenance.get("repairs") or [])
        repairs.append(
            {
                "strategy": "alternate",
                "promoted_rank": rank,
                "previous_rule": artifact.rule,
            }
        )
        provenance["repairs"] = repairs
        baseline = baseline_from_extraction(extracted, len(site), labels=labels)
        return WrapperArtifact(
            wrapper_spec=dict(promoted["wrapper_spec"]),
            rule=str(promoted.get("rule", "")),
            site=artifact.site or site.name,
            inductor=artifact.inductor,
            method=artifact.method,
            score=dict(promoted.get("score") or {}),
            provenance=provenance,
            alternates=remaining,
            baseline=baseline.to_dict(),
        )

    def _relearn(
        self,
        artifact: WrapperArtifact,
        site: Site,
        labels: Labels | None,
        attempts: list[AlternateAttempt],
        drift: DriftReport | None,
    ) -> RepairReport:
        ladder = (
            f"ladder exhausted ({len(attempts)} alternates rejected)"
            if attempts
            else "artifact carries no alternates"
        )
        if self.extractor is None:
            return RepairReport(
                site=site.name,
                strategy="failed",
                old_rule=artifact.rule,
                attempts=attempts,
                error=f"{ladder} and no extractor for relearning",
                drift=drift,
            )
        if not labels:
            return RepairReport(
                site=site.name,
                strategy="failed",
                old_rule=artifact.rule,
                attempts=attempts,
                error=f"{ladder} and no weak labels to relearn from",
                drift=drift,
            )
        try:
            relearned = self.extractor.learn(
                site, labels, site_name=artifact.site or site.name
            )
        except Exception as error:
            return RepairReport(
                site=site.name,
                strategy="failed",
                old_rule=artifact.rule,
                attempts=attempts,
                error=f"relearn failed: {type(error).__name__}: {error}",
                drift=drift,
            )
        provenance = dict(relearned.provenance)
        repairs = list(artifact.provenance.get("repairs") or [])
        repairs.append(
            {"strategy": "relearn", "previous_rule": artifact.rule}
        )
        provenance["repairs"] = repairs
        relearned.provenance = provenance
        return RepairReport(
            site=site.name,
            strategy="relearn",
            old_rule=artifact.rule,
            new_rule=relearned.rule,
            artifact=relearned,
            attempts=attempts,
            drift=drift,
        )


def _as_site(site) -> Site:
    """Accept a bare site or a dataset's generated site."""
    inner = getattr(site, "site", None)
    return inner if isinstance(inner, Site) else site
