"""``repro.lifecycle`` — keeping deployed wrappers healthy over time.

Learning a wrapper is a one-shot event; *serving* it is not.  Sites
redesign, CMS upgrades rename CSS classes, ad frameworks wrap listings
in new container divs — and a deployed :class:`~repro.api.artifacts.
WrapperArtifact` keeps matching whatever its rule still matches,
silently extracting garbage (or nothing).  Ferrara & Baumgartner's
adaptable-wrapper line of work frames the fix as a lifecycle:
**detect** that extractions have drifted from the learn-time profile,
**repair** automatically from knowledge the learner already paid for,
and **redeploy** without stopping the pipeline.

This package is that lifecycle for the ranked wrapper space of the
paper:

- :mod:`repro.lifecycle.monitor` — :class:`DriftDetector` compares
  per-apply health signals (extraction-count distribution, empty-page
  rate, annotator re-agreement) against the learn-time
  :class:`HealthBaseline` stored in every artifact, over rolling
  windows, with a pluggable :class:`ThresholdPolicy`;
- :mod:`repro.lifecycle.repair` — :class:`RepairPolicy` cascades
  through the artifact's *ranked alternates* (the runner-up wrappers
  the scorer already ranked at learn time), validating each against
  weak annotations on the drifted pages, and falls back to a full
  facade relearn when the ladder is exhausted; every attempt is
  recorded in a structured :class:`RepairReport`.

Redeployment is the live half: :meth:`repro.api.scheduler.WorkerPool.
update_shared` / :meth:`repro.api.ingest.IngestSession.update_shared`
ship a refit extractor through the live stream session, and repaired
artifacts ride ordinary apply submissions — no session restart.
"""

from repro.lifecycle.monitor import (
    DriftDetector,
    DriftReport,
    HealthBaseline,
    HealthSignals,
    ThresholdPolicy,
    baseline_from_extraction,
    page_counts,
)
from repro.lifecycle.repair import (
    AlternateAttempt,
    RepairPolicy,
    RepairReport,
)

__all__ = [
    "AlternateAttempt",
    "DriftDetector",
    "DriftReport",
    "HealthBaseline",
    "HealthSignals",
    "RepairPolicy",
    "RepairReport",
    "ThresholdPolicy",
    "baseline_from_extraction",
    "page_counts",
]
