"""Drift detection: per-apply health signals vs a learn-time baseline.

A wrapper's learn-time behaviour is a statistical profile, not just a
rule: how many nodes it extracts per page, how often a page yields
nothing, and how much of the weak annotator's evidence it captures.
:func:`baseline_from_extraction` freezes that profile into a
:class:`HealthBaseline` (serialized into every artifact — see
:attr:`repro.api.artifacts.WrapperArtifact.baseline`), and a
:class:`DriftDetector` replays the same measurements over live apply
results, in a rolling window, asking a pluggable
:class:`ThresholdPolicy` whether the profile has moved enough to call
the wrapper *drifted*.

Three signal families, mirroring the self-repairing-wrapper literature
(Ferrara & Baumgartner):

- **extraction-count distribution** — mean/std nodes-per-page against
  the baseline (a template change typically collapses the extraction to
  zero or explodes it onto chrome nodes);
- **empty-page rate** — the fraction of pages yielding nothing (the
  most common drift smell: the rule simply stops matching);
- **annotator re-agreement** — when the caller can re-annotate sampled
  pages, the fraction of weak labels the extraction still covers (the
  content-level check: structure may match while meaning moved).

Signals are cheap (set arithmetic over already-computed extractions),
so a detector can ride every apply outcome of a streaming session.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.telemetry import counter
from repro.telemetry import names as metric_names
from repro.wrappers.base import Labels

__all__ = [
    "DriftDetector",
    "DriftReport",
    "HealthBaseline",
    "HealthSignals",
    "ThresholdPolicy",
    "baseline_from_extraction",
    "page_counts",
]


def page_counts(extracted: Labels, n_pages: int) -> list[int]:
    """Extraction counts per page (node ids carry their page index).

    Node ids must index the observed pages ``0..n_pages-1`` — true for
    any whole-site apply (ingest submissions parse each batch of pages
    as its own site, so their ids always start at page 0).  An
    out-of-range page raises instead of being dropped: silently reading
    a mis-windowed observation as "empty pages" would fabricate drift.
    """
    counts = [0] * n_pages
    for node_id in extracted:
        if not 0 <= node_id.page < n_pages:
            raise ValueError(
                f"extraction references page {node_id.page} but the "
                f"observation covers {n_pages} page(s); pass per-page "
                "counts via observe_counts() for partial windows"
            )
        counts[node_id.page] += 1
    return counts


def _mean_std(counts: list[int]) -> tuple[float, float]:
    if not counts:
        return 0.0, 0.0
    mean = sum(counts) / len(counts)
    variance = sum((c - mean) ** 2 for c in counts) / len(counts)
    return mean, variance**0.5


def agreement_score(extracted: Labels, labels: Labels | None) -> float | None:
    """Fraction of weak labels the extraction covers (``None`` if no labels).

    Weak annotators in this codebase are precision-heavy (the paper's
    dictionary profile is p≈0.95, r≈0.24), so a healthy wrapper's
    extraction *contains* most labels; losing them means the rule no
    longer lands on the labeled content.
    """
    if not labels:
        return None
    return len(extracted & labels) / len(labels)


@dataclass(slots=True)
class HealthBaseline:
    """The learn-time health profile serialized into artifacts.

    Attributes:
        pages: pages the wrapper was learned over.
        mean_per_page / std_per_page: extraction-count distribution.
        empty_page_rate: fraction of learn pages yielding nothing.
        agreement: learn-time annotator agreement (``None`` when the
            wrapper was learned without weak labels to compare against).
        n_labels: size of the weak label set at learn time (context for
            interpreting ``agreement``; 0 when unknown).
    """

    pages: int
    mean_per_page: float
    std_per_page: float
    empty_page_rate: float
    agreement: float | None = None
    n_labels: int = 0

    def to_dict(self) -> dict:
        payload = {
            "pages": self.pages,
            "mean_per_page": self.mean_per_page,
            "std_per_page": self.std_per_page,
            "empty_page_rate": self.empty_page_rate,
            "n_labels": self.n_labels,
        }
        if self.agreement is not None:
            payload["agreement"] = self.agreement
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "HealthBaseline | None":
        """Rebuild a baseline; ``None`` for empty/absent payloads (old
        artifacts carry no baseline).  Unknown keys are ignored so
        baselines written by newer minor revisions stay readable."""
        if not payload:
            return None
        try:
            return cls(
                pages=int(payload["pages"]),
                mean_per_page=float(payload["mean_per_page"]),
                std_per_page=float(payload["std_per_page"]),
                empty_page_rate=float(payload["empty_page_rate"]),
                agreement=(
                    float(payload["agreement"])
                    if payload.get("agreement") is not None
                    else None
                ),
                n_labels=int(payload.get("n_labels", 0)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"malformed health baseline: {error}") from error


def baseline_from_extraction(
    extracted: Labels, n_pages: int, labels: Labels | None = None
) -> HealthBaseline:
    """Freeze the health profile of one learn-time extraction."""
    counts = page_counts(extracted, n_pages)
    mean, std = _mean_std(counts)
    empty_rate = (
        sum(1 for c in counts if c == 0) / len(counts) if counts else 0.0
    )
    return HealthBaseline(
        pages=n_pages,
        mean_per_page=mean,
        std_per_page=std,
        empty_page_rate=empty_rate,
        agreement=agreement_score(extracted, labels),
        n_labels=len(labels) if labels else 0,
    )


@dataclass(slots=True)
class HealthSignals:
    """Windowed health measurements of a deployed wrapper."""

    observations: int
    pages: int
    mean_per_page: float
    std_per_page: float
    empty_page_rate: float
    count_ratio: float
    agreement: float | None

    def to_dict(self) -> dict:
        import math

        return {
            "observations": self.observations,
            "pages": self.pages,
            "mean_per_page": self.mean_per_page,
            "std_per_page": self.std_per_page,
            "empty_page_rate": self.empty_page_rate,
            # A zero-mean baseline makes the ratio inf; json.dumps would
            # emit the non-standard `Infinity` token, so NDJSON surfaces
            # (monitor --json, stream repair records) get null instead.
            "count_ratio": (
                self.count_ratio if math.isfinite(self.count_ratio) else None
            ),
            "agreement": self.agreement,
        }


@dataclass(slots=True)
class DriftReport:
    """One ``observe`` verdict: the signals plus the policy's reasons."""

    drifted: bool
    signals: HealthSignals
    reasons: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "drifted": self.drifted,
            "reasons": list(self.reasons),
            "signals": self.signals.to_dict(),
        }


@dataclass(slots=True)
class ThresholdPolicy:
    """The default drift decision: fixed thresholds on each signal.

    The policy is the pluggable half of the detector: subclass and
    override :meth:`evaluate` (return the list of human-readable reasons
    the window looks drifted, empty for healthy) to swap in CUSUM,
    quantile tests, or learned detectors without touching the windowing.

    Attributes:
        min_count_ratio / max_count_ratio: acceptable band of the
            windowed mean-nodes-per-page relative to the baseline mean.
        max_empty_rate_jump: largest tolerated *absolute* increase of
            the empty-page rate over the baseline rate.
        min_agreement: absolute floor on annotator re-agreement, used
            only when the baseline recorded no agreement to compare
            against (drift is *change*: a wrapper whose learn-time
            agreement was already poor has not drifted by staying poor).
        max_agreement_drop: largest tolerated *relative* drop of
            agreement vs the baseline agreement.
        min_observations: observations required before the policy may
            fire at all (debounces one-page blips on small windows).
    """

    min_count_ratio: float = 0.5
    max_count_ratio: float = 2.0
    max_empty_rate_jump: float = 0.25
    min_agreement: float = 0.5
    max_agreement_drop: float = 0.5
    min_observations: int = 1

    def evaluate(
        self, signals: HealthSignals, baseline: HealthBaseline
    ) -> list[str]:
        if signals.observations < self.min_observations:
            return []
        reasons: list[str] = []
        if signals.count_ratio < self.min_count_ratio:
            reasons.append(
                f"extraction collapsed: {signals.mean_per_page:.2f} "
                f"nodes/page vs baseline {baseline.mean_per_page:.2f} "
                f"(ratio {signals.count_ratio:.2f} < {self.min_count_ratio})"
            )
        elif signals.count_ratio > self.max_count_ratio:
            reasons.append(
                f"extraction exploded: {signals.mean_per_page:.2f} "
                f"nodes/page vs baseline {baseline.mean_per_page:.2f} "
                f"(ratio {signals.count_ratio:.2f} > {self.max_count_ratio})"
            )
        jump = signals.empty_page_rate - baseline.empty_page_rate
        if jump > self.max_empty_rate_jump:
            reasons.append(
                f"empty-page rate jumped {baseline.empty_page_rate:.2f} -> "
                f"{signals.empty_page_rate:.2f} (+{jump:.2f} > "
                f"{self.max_empty_rate_jump})"
            )
        if signals.agreement is not None:
            if baseline.agreement is not None:
                floor = baseline.agreement * (1.0 - self.max_agreement_drop)
            else:
                floor = self.min_agreement
            if signals.agreement < floor:
                reasons.append(
                    f"annotator re-agreement {signals.agreement:.2f} fell "
                    f"below {floor:.2f} (baseline "
                    f"{baseline.agreement if baseline.agreement is not None else 'n/a'})"
                )
        return reasons


class DriftDetector:
    """Rolling-window drift detection for one deployed wrapper.

    Feed every apply result through :meth:`observe`; the detector keeps
    the last ``window`` observations, aggregates them into
    :class:`HealthSignals`, and asks the policy for a verdict.  One
    detector per (artifact, site) stream — signals from different sites
    must not share a window.

    Args:
        baseline: the artifact's learn-time profile (a
            :class:`HealthBaseline` or its ``to_dict`` payload).
        policy: threshold policy; default :class:`ThresholdPolicy`.
        window: observations aggregated per verdict (rolling).
    """

    def __init__(
        self,
        baseline: HealthBaseline | dict,
        policy: ThresholdPolicy | None = None,
        window: int = 8,
    ) -> None:
        if isinstance(baseline, dict):
            baseline = HealthBaseline.from_dict(baseline)
        if baseline is None:
            raise ValueError(
                "DriftDetector needs a health baseline; this artifact "
                "predates baselines (schema v1) — relearn to get one"
            )
        if window < 1:
            raise ValueError(f"window must be >= 1; got {window}")
        self.baseline = baseline
        self.policy = policy if policy is not None else ThresholdPolicy()
        self.window = window
        self._counts: deque[list[int]] = deque(maxlen=window)
        self._agreements: deque[tuple[int, int] | None] = deque(maxlen=window)

    def observe(
        self, extracted: Labels, n_pages: int, labels: Labels | None = None
    ) -> DriftReport:
        """Record one apply result; return the windowed verdict.

        ``extracted`` must cover pages ``0..n_pages-1`` (any whole-site
        apply does; see :func:`page_counts`).  ``labels`` are optional
        fresh weak annotations of the same pages (the re-agreement
        signal is skipped when omitted — sampling a subset of outcomes
        for re-annotation is the intended cadence).
        """
        counts = page_counts(extracted, n_pages)
        agreement = (
            (len(extracted & labels), len(labels)) if labels else None
        )
        return self.observe_counts(counts, agreement=agreement)

    def observe_counts(
        self,
        counts: list[int],
        agreement: tuple[int, int] | None = None,
    ) -> DriftReport:
        """Record one observation as raw per-page counts.

        The low-level feed for callers windowing pages themselves (e.g.
        a monitor slicing one site apply into page-sized observations,
        where absolute node ids cannot be renumbered).  ``agreement``
        is an optional ``(labels_covered, labels_total)`` pair.
        """
        self._counts.append(list(counts))
        self._agreements.append(agreement)
        return self._verdict()

    def observe_site(self, site, extracted: Labels, annotator=None) -> DriftReport:
        """:meth:`observe` convenience for a full :class:`~repro.site.Site`
        apply — re-annotates with ``annotator`` when one is given."""
        labels = annotator.annotate(site) if annotator is not None else None
        return self.observe(extracted, len(site), labels=labels)

    def _verdict(self) -> DriftReport:
        counts = [c for obs in self._counts for c in obs]
        mean, std = _mean_std(counts)
        empty_rate = (
            sum(1 for c in counts if c == 0) / len(counts) if counts else 0.0
        )
        if self.baseline.mean_per_page > 0:
            ratio = mean / self.baseline.mean_per_page
        else:
            ratio = 1.0 if mean == 0 else float("inf")
        measured = [pair for pair in self._agreements if pair is not None]
        agreement: float | None = None
        if measured:
            covered = sum(pair[0] for pair in measured)
            total = sum(pair[1] for pair in measured)
            agreement = covered / total if total else None
        signals = HealthSignals(
            observations=len(self._counts),
            pages=len(counts),
            mean_per_page=mean,
            std_per_page=std,
            empty_page_rate=empty_rate,
            count_ratio=ratio,
            agreement=agreement,
        )
        reasons = self.policy.evaluate(signals, self.baseline)
        counter(metric_names.LIFECYCLE_DRIFT_CHECKS).inc()
        if reasons:
            counter(metric_names.LIFECYCLE_DRIFT_DETECTED).inc()
        return DriftReport(drifted=bool(reasons), signals=signals, reasons=reasons)

    def reset(self) -> None:
        """Forget the window (e.g. right after a repair is deployed)."""
        self._counts.clear()
        self._agreements.clear()
