"""Algorithm 1 — BottomUp: blackbox wrapper-space enumeration.

Maintains a worklist ``Z`` of *closed* label subsets, always expanding a
smallest set by one label.  For each expansion the learned wrapper is
recorded and the closure ``phi-breve(s ∪ l) = phi(s ∪ l) ∩ L`` of the
expanded set is pushed back (unless it is all of ``L``).  Soundness,
completeness and the ``k * |L|`` call bound are Theorems 1 and 2; the
test suite checks the output against naive enumeration and the call
bound against the wrapper-space size.

Wrapper evaluation goes through the shared engine: each expansion round
batches the newly induced wrappers and extracts them together, so
posting-trie prefixes shared between sibling expansions are intersected
once and rules re-induced from different subsets are memo hits.  The
traversal (and therefore the enumerated space) is unchanged — closures
are processed in the exact order of the unbatched algorithm.
"""

from __future__ import annotations

import heapq
import time
from typing import Any

from repro.engine import EvaluationEngine, resolve_engine
from repro.enumeration.result import EnumerationResult
from repro.wrappers.base import Labels, Wrapper, WrapperInductor


def enumerate_bottom_up(
    inductor: WrapperInductor,
    corpus: Any,
    labels: Labels,
    engine: EvaluationEngine | None = None,
) -> EnumerationResult:
    """Enumerate ``W(L)`` with at most ``k * |L|`` inductor calls."""
    engine = resolve_engine(engine)
    started = time.perf_counter()
    wrappers: dict[Wrapper, None] = {}
    calls = 0
    # Heap of (size, tiebreak, subset); the paper expands a smallest set
    # first, which is what guarantees closed sets are never re-queued.
    counter = 0
    heap: list[tuple[int, int, Labels]] = [(0, counter, frozenset())]
    queued: set[Labels] = {frozenset()}
    extraction_cache: dict[Labels, Labels] = {}

    while heap:
        _, _, subset = heapq.heappop(heap)
        # Round 1: induce the wrappers of every uncached expansion.
        expansions: list[tuple[Labels, Wrapper | None]] = []
        fresh: list[Wrapper] = []
        for label in sorted(labels - subset):
            grown = subset | {label}
            if grown in extraction_cache:
                expansions.append((grown, None))
            else:
                wrapper = inductor.induce(corpus, grown)
                calls += 1
                wrappers.setdefault(wrapper)
                expansions.append((grown, wrapper))
                fresh.append(wrapper)
        # Round 2: evaluate the round's new wrappers as one batch.
        extracted_batch = iter(engine.batch_extract(corpus, fresh))
        # Round 3: closure bookkeeping, in the original expansion order.
        for grown, wrapper in expansions:
            if wrapper is None:
                extracted = extraction_cache[grown]
            else:
                extracted = next(extracted_batch)
                extraction_cache[grown] = extracted
            closure = extracted & labels
            if closure != labels and closure not in queued:
                queued.add(closure)
                counter += 1
                heapq.heappush(heap, (len(closure), counter, closure))
    return EnumerationResult(
        wrappers=list(wrappers),
        inductor_calls=calls,
        seconds=time.perf_counter() - started,
        algorithm="bottom_up",
    )
