"""Algorithm 1 — BottomUp: blackbox wrapper-space enumeration.

Maintains a worklist ``Z`` of *closed* label subsets, always expanding a
smallest set by one label.  For each expansion the learned wrapper is
recorded and the closure ``phi-breve(s ∪ l) = phi(s ∪ l) ∩ L`` of the
expanded set is pushed back (unless it is all of ``L``).  Soundness,
completeness and the ``k * |L|`` call bound are Theorems 1 and 2; the
test suite checks the output against naive enumeration and the call
bound against the wrapper-space size.
"""

from __future__ import annotations

import heapq
import time
from typing import Any

from repro.enumeration.result import EnumerationResult
from repro.wrappers.base import Labels, Wrapper, WrapperInductor


def enumerate_bottom_up(
    inductor: WrapperInductor, corpus: Any, labels: Labels
) -> EnumerationResult:
    """Enumerate ``W(L)`` with at most ``k * |L|`` inductor calls."""
    started = time.perf_counter()
    wrappers: dict[Wrapper, None] = {}
    calls = 0
    # Heap of (size, tiebreak, subset); the paper expands a smallest set
    # first, which is what guarantees closed sets are never re-queued.
    counter = 0
    heap: list[tuple[int, int, Labels]] = [(0, counter, frozenset())]
    queued: set[Labels] = {frozenset()}
    extraction_cache: dict[Labels, Labels] = {}

    while heap:
        _, _, subset = heapq.heappop(heap)
        for label in sorted(labels - subset):
            grown = subset | {label}
            extracted = extraction_cache.get(grown)
            if extracted is None:
                wrapper = inductor.induce(corpus, grown)
                calls += 1
                extracted = wrapper.extract(corpus)
                extraction_cache[grown] = extracted
                wrappers.setdefault(wrapper)
            closure = extracted & labels
            if closure != labels and closure not in queued:
                queued.add(closure)
                counter += 1
                heapq.heappush(heap, (len(closure), counter, closure))
    return EnumerationResult(
        wrappers=list(wrappers),
        inductor_calls=calls,
        seconds=time.perf_counter() - started,
        algorithm="bottom_up",
    )
