"""Wrapper-space enumeration (paper Sec. 4).

Given labels ``L`` and inductor ``phi``, the wrapper space
``W(L) = { phi(L1) | nonempty L1 ⊆ L }`` must be enumerated without 2^|L|
inductor calls.  Three strategies:

- :func:`enumerate_naive` — the exponential baseline (guarded);
- :func:`enumerate_bottom_up` — Algorithm 1, blackbox, <= k*|L| calls;
- :func:`enumerate_top_down` — Algorithm 2 for feature-based inductors,
  exactly k calls.

All return an :class:`EnumerationResult` carrying the deduplicated
wrappers, the number of inductor calls made, and wall-clock time.
"""

from repro.enumeration.bottom_up import enumerate_bottom_up
from repro.enumeration.naive import enumerate_naive
from repro.enumeration.result import EnumerationResult
from repro.enumeration.top_down import enumerate_top_down

__all__ = [
    "EnumerationResult",
    "enumerate_bottom_up",
    "enumerate_naive",
    "enumerate_top_down",
]
