"""Exhaustive wrapper-space enumeration — the baseline of Figure 2(a,b).

Calls the inductor on *every* non-empty subset of the labels (2^|L| - 1
calls), which is what the framework would have to do without the
structure exploited by Algorithms 1 and 2.  Guarded by a hard cap on
|L| so benchmarks cannot accidentally hang.
"""

from __future__ import annotations

import itertools
import time
from typing import Any

from repro.enumeration.result import EnumerationResult
from repro.wrappers.base import Labels, Wrapper, WrapperInductor

#: Refuse to exhaustively enumerate label sets larger than this.
MAX_NAIVE_LABELS = 20


def enumerate_naive(
    inductor: WrapperInductor, corpus: Any, labels: Labels
) -> EnumerationResult:
    """Enumerate ``W(L)`` by brute force over all non-empty subsets."""
    if len(labels) > MAX_NAIVE_LABELS:
        raise ValueError(
            f"naive enumeration over {len(labels)} labels would need "
            f"2^{len(labels)} inductor calls; cap is {MAX_NAIVE_LABELS}"
        )
    started = time.perf_counter()
    label_list = sorted(labels)
    wrappers: dict[Wrapper, None] = {}
    calls = 0
    for size in range(1, len(label_list) + 1):
        for subset in itertools.combinations(label_list, size):
            wrapper = inductor.induce(corpus, frozenset(subset))
            calls += 1
            wrappers.setdefault(wrapper)
    return EnumerationResult(
        wrappers=list(wrappers),
        inductor_calls=calls,
        seconds=time.perf_counter() - started,
        algorithm="naive",
    )


def naive_call_count(labels: Labels) -> int:
    """Number of inductor calls naive enumeration would make (2^|L| - 1).

    Used by the Figure 2(a,b) benches to plot the naive series even where
    actually running it is prohibitive, exactly as the paper does.
    """
    return 2 ** len(labels) - 1
