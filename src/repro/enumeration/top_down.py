"""Algorithm 2 — TopDown: optimal enumeration for feature-based inductors.

Starts from the full label set and repeatedly *subdivides* every known
subset by each attribute in the inductor's attribute stream.  For
feature-based inductors the resulting family ``Z`` is exactly the closed
subsets of ``L``, each of which contributes one unique wrapper
(Lemma C.2), so the inductor is called exactly ``k`` times (Theorem 3).

Unlike BottomUp, TopDown never evaluates a wrapper — subdivision works
on label features alone — so it takes no evaluation engine.  The
candidate set it returns is materialized in one engine batch by the
caller (see :meth:`repro.framework.ntw.NoiseTolerantWrapper.learn`),
which is where the shared posting-trie evaluation happens.
"""

from __future__ import annotations

import time
from typing import Any

from repro.enumeration.result import EnumerationResult
from repro.wrappers.base import FeatureBasedInductor, Labels, Wrapper


def enumerate_top_down(
    inductor: FeatureBasedInductor, corpus: Any, labels: Labels
) -> EnumerationResult:
    """Enumerate ``W(L)`` with exactly ``k`` inductor calls."""
    if not isinstance(inductor, FeatureBasedInductor):
        raise TypeError(
            "TopDown requires a feature-based inductor; "
            f"got {type(inductor).__name__}"
        )
    started = time.perf_counter()
    subsets: set[Labels] = set()
    if labels:
        subsets.add(labels)
    for attr in inductor.attribute_stream(corpus, labels):
        # Snapshot: parts produced by this attribute are subdivided only
        # by *later* attributes, which suffices to realise every
        # combination of constraints (constraint sets are unordered).
        for subset in list(subsets):
            for part in inductor.subdivision(corpus, subset, attr):
                if part:
                    subsets.add(part)
    wrappers: dict[Wrapper, None] = {}
    calls = 0
    for subset in sorted(subsets, key=lambda s: (len(s), sorted(s))):
        wrappers.setdefault(inductor.induce(corpus, subset))
        calls += 1
    return EnumerationResult(
        wrappers=list(wrappers),
        inductor_calls=calls,
        seconds=time.perf_counter() - started,
        algorithm="top_down",
    )
