"""Result container shared by the enumeration algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wrappers.base import Wrapper


@dataclass(slots=True)
class EnumerationResult:
    """Outcome of enumerating a wrapper space.

    Attributes:
        wrappers: the deduplicated wrapper space ``W(L)``.
        inductor_calls: number of calls made to the wrapper inductor.
        seconds: wall-clock time spent enumerating.
        algorithm: which strategy produced the result.
    """

    wrappers: list[Wrapper] = field(default_factory=list)
    inductor_calls: int = 0
    seconds: float = 0.0
    algorithm: str = ""

    @property
    def size(self) -> int:
        """Size of the wrapper space (k in the paper's theorems)."""
        return len(self.wrappers)
