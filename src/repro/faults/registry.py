"""The central registry of fault-injection points.

This module is the **single source of truth** for injection-point
names: every ``fire("...")`` call site, every :class:`FaultRule`, and
every serialized :class:`FaultPlan` must name a point declared here.
The ``fault-point-integrity`` lint rule (:mod:`repro.analysis.rules`)
enforces that statically over the whole tree, and
:func:`repro.faults.plan.FaultPlan.from_json` / ``install`` enforce it
at load time — because a typo'd point is worse than an error: it arms
a plan that silently never fires, and the chaos test it belongs to
passes while testing nothing.

To add a point: declare its constant, add it to
:data:`POINT_DESCRIPTIONS` with one line on where it fires, and wire
the ``fire()`` hook at the matching production seam.
"""

from __future__ import annotations

__all__ = [
    "ARENA_UNLINK",
    "CONN_DROP",
    "CONN_TRUNCATE",
    "FaultError",
    "POINTS",
    "POINT_DESCRIPTIONS",
    "REGISTRY_WRITE",
    "WORKER_CRASH",
    "WORKER_HANG",
    "WORKER_SLOW",
    "validate_point",
]


class FaultError(ValueError):
    """Raised for malformed fault plans or unknown injection points."""


WORKER_CRASH = "worker.crash"
WORKER_HANG = "worker.hang"
WORKER_SLOW = "worker.slow"
CONN_DROP = "conn.drop"
CONN_TRUNCATE = "conn.truncate"
REGISTRY_WRITE = "registry.write"
ARENA_UNLINK = "arena.unlink"

#: Every declared injection point, with where it fires.  This mapping —
#: not any copy of its keys — is what the lint rule and the load-time
#: validators check against.
POINT_DESCRIPTIONS: dict[str, str] = {
    WORKER_CRASH: (
        "SIGKILL the pool worker at a job boundary "
        "(repro.api.scheduler worker loop)"
    ),
    WORKER_HANG: (
        "worker sleeps `delay` (default 60s) before the job "
        "(repro.api.scheduler worker loop)"
    ),
    WORKER_SLOW: (
        "worker sleeps `delay` (default 50ms) before the job "
        "(repro.api.scheduler worker loop)"
    ),
    CONN_DROP: (
        "server closes the client socket instead of responding "
        "(repro.service.server send path)"
    ),
    CONN_TRUNCATE: (
        "server sends half a response frame, then closes "
        "(repro.service.server send path)"
    ),
    REGISTRY_WRITE: (
        "registry backend write raises OSError "
        "(repro.service.registry file store)"
    ),
    ARENA_UNLINK: (
        "shared arena segment is unlinked after shipping "
        "(repro.api.scheduler arena ship path)"
    ),
}

#: Declared point names, in declaration order.
POINTS: tuple[str, ...] = tuple(POINT_DESCRIPTIONS)


def validate_point(point: str) -> str:
    """Return ``point`` if declared; raise :class:`FaultError` naming
    every valid point otherwise."""
    if point not in POINT_DESCRIPTIONS:
        valid = ", ".join(sorted(POINT_DESCRIPTIONS))
        raise FaultError(
            f"unknown injection point {point!r}; valid points are: {valid}"
        )
    return point
