"""Deterministic fault injection (see :mod:`repro.faults.plan`).

Injection-point names are declared once, in
:mod:`repro.faults.registry`; plans validate against that registry at
load time and the ``fault-point-integrity`` lint rule enforces it
statically across the tree.
"""

from repro.faults.plan import (
    ARENA_UNLINK,
    CONN_DROP,
    CONN_TRUNCATE,
    ENV_VAR,
    POINT_DESCRIPTIONS,
    POINTS,
    REGISTRY_WRITE,
    WORKER_CRASH,
    WORKER_HANG,
    WORKER_SLOW,
    FaultError,
    FaultPlan,
    FaultRule,
    active,
    clear,
    fire,
    install,
    perturb_worker,
    validate_point,
)

__all__ = [
    "ARENA_UNLINK",
    "CONN_DROP",
    "CONN_TRUNCATE",
    "ENV_VAR",
    "POINTS",
    "POINT_DESCRIPTIONS",
    "REGISTRY_WRITE",
    "WORKER_CRASH",
    "WORKER_HANG",
    "WORKER_SLOW",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "active",
    "clear",
    "fire",
    "install",
    "perturb_worker",
    "validate_point",
]
