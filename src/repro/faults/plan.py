"""Deterministic fault injection for resilience tests and chaos runs.

A :class:`FaultPlan` is a seeded list of rules, each bound to a named
injection point compiled into the production code (worker job loop,
server send path, registry write, arena shipping).  Code at an
injection point calls :func:`fire` with the point name and a free-form
context string; the active plan decides — deterministically, from the
plan seed and per-rule hit counters — whether the fault triggers.

Activation is process-global.  :func:`install` arms a plan in the
current process (fork-spawned pool workers inherit it); passing
``env=True`` also exports the plan as JSON in ``REPRO_FAULTS`` so
exec'd subprocesses (a real ``repro serve`` daemon) pick it up on
their first :func:`fire`.  When no plan is armed every hook is a
cheap ``None`` check.

Determinism notes: ``at=`` rules trigger on exact per-process hit
counts and are fully reproducible; ``rate=`` rules draw from a
``random.Random`` seeded from ``(plan.seed, rule index, point)`` via a
string seed (stable across processes and ``PYTHONHASHSEED``), so the
*decision sequence* per rule is reproducible even though which worker
sees which hit can depend on scheduling.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from dataclasses import dataclass, field

from repro.faults.registry import (
    ARENA_UNLINK,
    CONN_DROP,
    CONN_TRUNCATE,
    POINT_DESCRIPTIONS,
    POINTS,
    REGISTRY_WRITE,
    WORKER_CRASH,
    WORKER_HANG,
    WORKER_SLOW,
    FaultError,
    validate_point,
)

__all__ = [
    "ARENA_UNLINK",
    "CONN_DROP",
    "CONN_TRUNCATE",
    "ENV_VAR",
    "POINTS",
    "POINT_DESCRIPTIONS",
    "REGISTRY_WRITE",
    "WORKER_CRASH",
    "WORKER_HANG",
    "WORKER_SLOW",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "active",
    "clear",
    "fire",
    "install",
    "perturb_worker",
    "validate_point",
]

#: Environment variable carrying a JSON-encoded plan to subprocesses.
ENV_VAR = "REPRO_FAULTS"

# The point names themselves live in :mod:`repro.faults.registry` — the
# single declared registry the lint rule ``fault-point-integrity`` and
# the load-time validators below both check against.  They are
# re-exported here (see ``__all__``) so existing ``repro.faults.plan``
# imports keep working.


@dataclass
class FaultRule:
    """One injected fault: where, when, and how hard.

    ``at`` is a tuple of 1-based hit counts (per process) on which the
    rule fires; when empty, ``rate`` gives the per-hit probability.
    ``max_fires`` caps total fires per process; ``match`` restricts the
    rule to contexts containing the substring; ``delay`` parameterizes
    slow/hang points (seconds).
    """

    point: str
    rate: float = 0.0
    at: tuple[int, ...] = ()
    max_fires: int | None = None
    delay: float = 0.0
    match: str = ""
    hits: int = field(default=0, compare=False)
    fires: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        validate_point(self.point)
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError(f"rate must be in [0, 1], got {self.rate!r}")
        self.at = tuple(int(n) for n in self.at)
        if any(n < 1 for n in self.at):
            raise FaultError("at= hit counts are 1-based and must be >= 1")

    def to_dict(self) -> dict:
        record: dict = {"point": self.point}
        if self.rate:
            record["rate"] = self.rate
        if self.at:
            record["at"] = list(self.at)
        if self.max_fires is not None:
            record["max_fires"] = self.max_fires
        if self.delay:
            record["delay"] = self.delay
        if self.match:
            record["match"] = self.match
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "FaultRule":
        try:
            return cls(
                point=record["point"],
                rate=record.get("rate", 0.0),
                at=tuple(record.get("at", ())),
                max_fires=record.get("max_fires"),
                delay=record.get("delay", 0.0),
                match=record.get("match", ""),
            )
        except KeyError as error:
            raise FaultError(f"fault rule missing field: {error}") from error

    def _triggers(self, rng: random.Random) -> bool:
        """Advance the hit counter and decide whether this hit fires."""
        self.hits += 1
        if self.max_fires is not None and self.fires >= self.max_fires:
            return False
        if self.at:
            hit = self.hits in self.at
        elif self.rate:
            hit = rng.random() < self.rate
        else:
            hit = False
        if hit:
            self.fires += 1
        return hit


class FaultPlan:
    """A seeded, serializable collection of :class:`FaultRule`."""

    def __init__(
        self, seed: int = 0, rules: list[FaultRule] | None = None
    ) -> None:
        self.seed = int(seed)
        self.rules: list[FaultRule] = list(rules or ())
        self._rngs: dict[int, random.Random] = {}

    def add(
        self,
        point: str,
        *,
        rate: float = 0.0,
        at: tuple[int, ...] | list[int] = (),
        max_fires: int | None = None,
        delay: float = 0.0,
        match: str = "",
    ) -> FaultRule:
        rule = FaultRule(
            point=point,
            rate=rate,
            at=tuple(at),
            max_fires=max_fires,
            delay=delay,
            match=match,
        )
        self.rules.append(rule)
        return rule

    def fire(self, point: str, context: str = "") -> FaultRule | None:
        """Return the first rule firing at ``point`` for ``context``."""
        for index, rule in enumerate(self.rules):
            if rule.point != point:
                continue
            if rule.match and rule.match not in context:
                continue
            rng = self._rngs.get(index)
            if rng is None:
                # String seeds hash via SHA-512 inside random.seed(), so
                # the stream is identical across processes regardless of
                # PYTHONHASHSEED.
                rng = random.Random(f"{self.seed}:{index}:{rule.point}")
                self._rngs[index] = rng
            if rule._triggers(rng):
                return rule
        return None

    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}
        )

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        try:
            document = json.loads(raw)
        except json.JSONDecodeError as error:
            raise FaultError(f"invalid fault plan JSON: {error}") from error
        if not isinstance(document, dict):
            raise FaultError("fault plan JSON must be an object")
        rules = []
        for index, record in enumerate(document.get("rules", ())):
            try:
                rules.append(FaultRule.from_dict(record))
            except FaultError as error:
                # Load-time point validation: a typo'd point in a plan
                # file must fail the load loudly (listing the valid
                # points), never arm a rule that silently cannot fire.
                raise FaultError(f"fault plan rule {index}: {error}") from error
        return cls(seed=document.get("seed", 0), rules=rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, rules={len(self.rules)})"


_UNSET = object()
_active: object = _UNSET


def install(plan: FaultPlan | None, env: bool = False) -> None:
    """Arm ``plan`` process-wide (``None`` disarms).

    With ``env=True`` the plan is also exported via ``REPRO_FAULTS`` so
    freshly exec'd subprocesses honor it; fork-spawned children always
    inherit the armed plan object directly.

    Every rule's point is re-validated against the central registry
    here: rules are normally vetted at construction, but a plan whose
    rules were mutated after the fact must not arm a point that can
    never fire.
    """
    if plan is not None:
        for rule in plan.rules:
            validate_point(rule.point)
    global _active
    _active = plan
    if env:
        if plan is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = plan.to_json()


def clear() -> None:
    """Disarm any plan and forget cached env state (test teardown)."""
    global _active
    _active = _UNSET
    os.environ.pop(ENV_VAR, None)


def active() -> FaultPlan | None:
    """The armed plan, resolving ``REPRO_FAULTS`` on first use."""
    global _active
    if _active is _UNSET:
        raw = os.environ.get(ENV_VAR)
        _active = FaultPlan.from_json(raw) if raw else None
    return _active  # type: ignore[return-value]


def fire(point: str, context: str = "") -> FaultRule | None:
    """Hook entry: fire ``point`` against the armed plan, if any."""
    plan = active()
    if plan is None:
        return None
    return plan.fire(point, context)


def perturb_worker(context: str = "") -> None:
    """Apply worker-level faults at a job boundary (runs in the child).

    ``worker.crash`` SIGKILLs the process — exactly what an OOM kill or
    a segfault looks like to the parent.  ``worker.hang`` sleeps long
    enough to trip request deadlines; ``worker.slow`` adds jitter.
    """
    plan = active()
    if plan is None:
        return
    if plan.fire(WORKER_CRASH, context) is not None:
        os.kill(os.getpid(), signal.SIGKILL)
    rule = plan.fire(WORKER_HANG, context)
    if rule is not None:
        time.sleep(rule.delay or 60.0)
    rule = plan.fire(WORKER_SLOW, context)
    if rule is not None:
        time.sleep(rule.delay or 0.05)
