"""String-keyed component registries — the plugin surface of the facade.

Every pluggable component family (wrapper inductors, annotators,
enumeration strategies, dataset loaders) gets one :class:`Registry`.
Registration is decorator-based::

    @INDUCTORS.register("xpath")
    class XPathInductor(...): ...

    @DATASETS.register("dealers")
    def _load_dealers(sites, pages, seed): ...

so external code can add components without touching the CLI or the
facade; ``repro list-components`` and every ``choices=`` argument pick
new entries up automatically.  The registries replace the ad-hoc
``INDUCTORS`` dict and ``_load_dataset`` dispatch the CLI used to carry.

Dataset loaders return a :class:`DatasetBundle` — the dataset's sites
normalized with the annotator and gold type of its extraction task, the
triple every experiment and batch run needs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any, Generic, TypeVar

from repro.annotators import (
    Annotator,
    DictionaryAnnotator,
    FlippedAnnotator,
    OracleNoiseAnnotator,
    RegexAnnotator,
    UnionAnnotator,
)
from repro.annotators.regex import zipcode_annotator
from repro.datasets.dealers import generate_dealers
from repro.datasets.disc import generate_disc
from repro.datasets.products import generate_products
from repro.datasets.sitegen import GeneratedSite
from repro.enumeration import (
    enumerate_bottom_up,
    enumerate_naive,
    enumerate_top_down,
)
from repro.wrappers.hlrt import HLRTInductor
from repro.wrappers.lr import LRInductor
from repro.wrappers.table import TableInductor
from repro.wrappers.xpath_inductor import XPathInductor

T = TypeVar("T")


class RegistryError(KeyError):
    """Lookup of an unregistered component name."""


class Registry(Generic[T]):
    """A named string -> component mapping with decorator registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}
        self._meta: dict[str, dict] = {}

    def register(
        self, name: str, obj: T | None = None, **meta: Any
    ) -> T | Callable[[T], T]:
        """Register ``obj`` under ``name``; usable as a decorator.

        Keyword ``meta`` attaches capability metadata to the entry
        (e.g. ``corpus="grid"`` on an inductor that does not operate on
        HTML sites), retrievable via :meth:`meta`.  Duplicate names are
        rejected — a registry is a global namespace, and silent
        replacement would make component resolution depend on import
        order.
        """
        if obj is not None:
            self._add(name, obj, meta)
            return obj

        def decorate(target: T) -> T:
            self._add(name, target, meta)
            return target

        return decorate

    def _add(self, name: str, obj: T, meta: dict) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")
        if name in self._entries:
            raise ValueError(
                f"{self.kind} {name!r} is already registered "
                f"({self._entries[name]!r})"
            )
        self._entries[name] = obj
        self._meta[name] = dict(meta)

    def meta(self, name: str) -> dict:
        """Capability metadata attached at registration (empty if none)."""
        self.get(name)  # raise RegistryError for unknown names
        return dict(self._meta[name])

    def get(self, name: str) -> T:
        """The registered component, or :class:`RegistryError` with hints."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise RegistryError(
                f"unknown {self.kind} {name!r} (registered: {known})"
            ) from None

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Call the registered factory/class with the given arguments."""
        factory = self.get(name)
        if not callable(factory):
            raise TypeError(f"{self.kind} {name!r} is not callable")
        return factory(*args, **kwargs)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def items(self) -> list[tuple[str, T]]:
        return sorted(self._entries.items())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Registry {self.kind}: {', '.join(self.names())}>"


@dataclass(slots=True)
class DatasetBundle:
    """A loaded dataset normalized for the facade.

    Attributes:
        name: registry key of the loader that produced it.
        sites: the generated sites (with gold labels).
        annotator: the dataset's noisy annotator.
        gold_type: the gold type of the single-type extraction task.
    """

    name: str
    sites: list[GeneratedSite]
    annotator: Annotator
    gold_type: str


#: Wrapper inductors, keyed by the names the CLI and configs use.
#: ``corpus`` declares what the inductor extracts from; only ``site``
#: inductors apply to HTML datasets (and thus to the CLI's workloads).
INDUCTORS: Registry[Callable[..., Any]] = Registry("inductor")
INDUCTORS.register("xpath", XPathInductor, corpus="site")
INDUCTORS.register("lr", LRInductor, corpus="site")
INDUCTORS.register("hlrt", HLRTInductor, corpus="site")
INDUCTORS.register("table", TableInductor, corpus="grid")


def site_inductor_names() -> tuple[str, ...]:
    """Registered inductors that operate on HTML sites."""
    return tuple(
        name
        for name in INDUCTORS.names()
        if INDUCTORS.meta(name).get("corpus", "site") == "site"
    )

#: Annotator classes/factories.
ANNOTATORS: Registry[Callable[..., Annotator]] = Registry("annotator")
ANNOTATORS.register("dictionary", DictionaryAnnotator)
ANNOTATORS.register("regex", RegexAnnotator)
ANNOTATORS.register("zipcode", zipcode_annotator)
ANNOTATORS.register("oracle-noise", OracleNoiseAnnotator)
ANNOTATORS.register("union", UnionAnnotator)
ANNOTATORS.register("flipped", FlippedAnnotator)

#: Enumeration strategies (signature: ``(inductor, corpus, labels)``).
ENUMERATORS: Registry[Callable[..., Any]] = Registry("enumerator")
ENUMERATORS.register("top_down", enumerate_top_down)
ENUMERATORS.register("bottom_up", enumerate_bottom_up)
ENUMERATORS.register("naive", enumerate_naive)

#: Dataset loaders (signature: ``(sites, pages, seed) -> DatasetBundle``).
DATASETS: Registry[Callable[..., DatasetBundle]] = Registry("dataset")


@DATASETS.register("dealers")
def _load_dealers(sites: int = 20, pages: int = 8, seed: int = 11) -> DatasetBundle:
    dataset = generate_dealers(n_sites=sites, pages_per_site=pages, seed=seed)
    return DatasetBundle("dealers", dataset.sites, dataset.annotator(), "name")


@DATASETS.register("disc")
def _load_disc(sites: int = 20, pages: int = 8, seed: int = 11) -> DatasetBundle:
    dataset = generate_disc(n_sites=sites, seed=seed)
    return DatasetBundle("disc", dataset.sites, dataset.annotator(), "track")


@DATASETS.register("products")
def _load_products(sites: int = 20, pages: int = 8, seed: int = 11) -> DatasetBundle:
    dataset = generate_products(n_sites=sites, pages_per_site=pages, seed=seed)
    return DatasetBundle("products", dataset.sites, dataset.annotator(), "name")


def load_dataset(name: str, sites: int, pages: int, seed: int) -> DatasetBundle:
    """Load a registered dataset by name (convenience over ``DATASETS``)."""
    return DATASETS.create(name, sites=sites, pages=pages, seed=seed)
