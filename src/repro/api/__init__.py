"""``repro.api`` — the public entry point for extraction at scale.

This package is the stable surface every caller (CLI, benchmarks,
examples, downstream code) builds on:

- **registries** (:mod:`repro.api.registry`): string-keyed plugin
  registries for inductors, annotators, enumerators and datasets, with
  decorator-based registration;
- **facade** (:mod:`repro.api.extractor`): :class:`Extractor`, driven by
  an :class:`ExtractorConfig`, turning noisy labels into learned
  wrappers;
- **artifacts** (:mod:`repro.api.artifacts`): :class:`WrapperArtifact`,
  the serializable learn-once/apply-many record of a learned wrapper;
- **batch** (:mod:`repro.api.batch`): ``learn_many``/``apply_many`` with
  pluggable executors and per-site error isolation;
- **scheduler** (:mod:`repro.api.scheduler`): the site-affine
  :class:`WorkerPool` — persistent warm-engine workers, sharded
  dispatch, streaming ``learn_stream``/``apply_stream`` outcomes;
- **ingest** (:mod:`repro.api.ingest`): streaming crawler ingestion —
  :class:`IngestSession` (and the ``asyncio`` adapter
  :class:`AsyncIngestSession`) accepts sites incrementally into a live
  pool with bounded in-flight backpressure and out-of-order results.

Quickstart::

    from repro.api import Extractor, ExtractorConfig, load_dataset

    bundle = load_dataset("dealers", sites=8, pages=6, seed=11)
    train, test = bundle.sites[::2], bundle.sites[1::2]
    extractor = Extractor(ExtractorConfig(inductor="xpath", method="ntw"))
    extractor.fit(train, bundle.annotator, bundle.gold_type)

    result = extractor.learn_many(test, annotator=bundle.annotator)
    for outcome in result.successes:
        outcome.artifact.save(f"wrappers/{outcome.site}.json")
"""

from repro.api.artifacts import (
    SCHEMA_VERSION,
    ArtifactError,
    SchemaVersionError,
    WrapperArtifact,
    load_artifacts,
)
from repro.api.batch import (
    BatchResult,
    ProcessPoolExecutor,
    SerialExecutor,
    SiteOutcome,
    apply_many,
    learn_many,
    resolve_executor,
)
from repro.api.extractor import (
    METHODS,
    Extractor,
    ExtractorConfig,
    ExtractorError,
)
from repro.api.ingest import (
    AsyncIngestSession,
    IngestSession,
)
from repro.api.registry import (
    ANNOTATORS,
    DATASETS,
    ENUMERATORS,
    INDUCTORS,
    DatasetBundle,
    Registry,
    RegistryError,
    load_dataset,
)
from repro.api.scheduler import (
    SchedulerStats,
    WorkerPool,
    apply_stream,
    learn_stream,
)

__all__ = [
    "ANNOTATORS",
    "ArtifactError",
    "AsyncIngestSession",
    "BatchResult",
    "DATASETS",
    "DatasetBundle",
    "ENUMERATORS",
    "Extractor",
    "ExtractorConfig",
    "ExtractorError",
    "INDUCTORS",
    "IngestSession",
    "METHODS",
    "ProcessPoolExecutor",
    "Registry",
    "RegistryError",
    "SCHEMA_VERSION",
    "SchedulerStats",
    "SchemaVersionError",
    "SerialExecutor",
    "SiteOutcome",
    "WorkerPool",
    "WrapperArtifact",
    "apply_many",
    "apply_stream",
    "learn_many",
    "learn_stream",
    "load_artifacts",
    "load_dataset",
    "resolve_executor",
]
