"""Batch execution: many sites, pluggable executors, isolated failures.

The paper's target workload is *large scale* — hundreds of sites, each
learned independently.  This module runs :class:`~repro.api.extractor.Extractor`
learning (``learn_many``) and artifact application (``apply_many``) over
a fleet of sites with:

- a pluggable executor — :class:`SerialExecutor` (default),
  :class:`ProcessPoolExecutor` over ``concurrent.futures``, or the
  site-affine :class:`~repro.api.scheduler.WorkerPool` — chosen per
  call, with the string shorthands ``"serial"``, ``"process"`` and
  ``"pool"``;
- deterministic result ordering — outcomes always come back in input
  order, whatever the executor's scheduling;
- per-site error isolation — a site whose pages fail to parse, whose
  labels are empty, or whose learning blows up is recorded as a
  :class:`SiteOutcome` failure while every other site proceeds.

Sites may be given as :class:`~repro.site.Site` objects, dataset
:class:`~repro.datasets.sitegen.GeneratedSite` records, or raw
``(name, [html, ...])`` pairs; raw pages are parsed *inside* the
isolated task so parser failures are per-site failures, not run
failures.

Batch runs share evaluation state through the extractor's
:class:`~repro.engine.EvaluationEngine` and the sites' own derived
caches: under the serial executor, learning several fields over the
same sites (or re-applying many artifacts to one site) reuses page
indexes, posting tries and extraction memos instead of rebuilding them
per task.  Under the process executor the shared extractor/annotator
are shipped once per worker (via the pool initializer, not per task)
and tasks travel in chunks scaled to the batch, but each worker still
rebuilds site caches once per shipped site — engines pickle empty and
sites pickle without derived state; caches are acceleration, not
payload.  A :class:`~repro.api.scheduler.WorkerPool` goes further:
persistent workers keep warm engines and interned sites between tasks
and between batches, with shard-affine dispatch.

Every entry point here assumes the fleet is known up front.  For
crawler-fed pipelines — pages arriving incrementally, results consumed
while the crawl is still running — use the input-side streaming layer
instead: :class:`repro.api.ingest.IngestSession` (and its ``asyncio``
adapter) submits :data:`SiteLike` inputs one at a time into a live
pool and yields the same :class:`SiteOutcome` records out of order.
"""

from __future__ import annotations

import concurrent.futures
import os
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.annotators.base import Annotator
from repro.api.artifacts import WrapperArtifact
from repro.api.extractor import Extractor
from repro.datasets.sitegen import GeneratedSite
from repro.site import Site
from repro.wrappers.base import Labels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scheduler import WorkerPool

#: A site input: parsed, generated, or raw ``(name, page_sources)``.
SiteLike = Site | GeneratedSite | tuple[str, Sequence[str]]


@dataclass(slots=True)
class SiteOutcome:
    """Result of one site's task: success payload or recorded failure.

    ``texts`` is filled only when an apply task was submitted with
    ``resolve_texts`` (scheduler/ingest paths): the extracted nodes'
    texts resolved *worker-side* — the worker already holds the parsed
    site interned, so the parent never re-parses pages just to read
    text.  Entries pair with ``sorted(extracted)``.

    ``timings`` (scheduler paths) carries the executing worker's stage
    stamps for request tracing: ``start``/``end`` are system-wide
    ``time.monotonic()`` instants, ``hydrate_s``/``extract_s`` the
    in-worker stage durations (see :mod:`repro.telemetry.tracing`).
    """

    index: int
    site: str
    ok: bool
    artifact: WrapperArtifact | None = None
    extracted: Labels | None = None
    error: str | None = None
    texts: list[str] | None = None
    timings: dict | None = None


@dataclass(slots=True)
class BatchResult:
    """Ordered outcomes of a batch run, success/failure views included."""

    outcomes: list[SiteOutcome] = field(default_factory=list)

    @property
    def successes(self) -> list[SiteOutcome]:
        return [outcome for outcome in self.outcomes if outcome.ok]

    @property
    def failures(self) -> list[SiteOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def artifacts(self) -> list[WrapperArtifact]:
        """Artifacts of the successful sites, in input order."""
        return [
            outcome.artifact
            for outcome in self.outcomes
            if outcome.ok and outcome.artifact is not None
        ]

    def __len__(self) -> int:
        return len(self.outcomes)

    def summary(self) -> str:
        return f"{len(self.successes)}/{len(self.outcomes)} sites ok"


# -- executors --------------------------------------------------------------

#: Worker-process shared batch context: the extractor/annotator shipped
#: once per pool worker through the initializer instead of once per
#: task.  Only ever *populated* inside pool worker processes (or a
#: transient in-process fallback for trivial batches); the serial path
#: keeps tasks self-contained, so threaded callers never race on it.
_SHARED: dict = {}


def _set_shared(payload: dict) -> None:
    """(Re)place the process-local shared batch context."""
    _SHARED.clear()
    _SHARED.update(payload)


def _map_with_shared(fn: Callable, items: list, shared: dict) -> list:
    """Run tasks in-process under a temporary shared context."""
    previous = dict(_SHARED)
    _set_shared(shared)
    try:
        return [fn(item) for item in items]
    finally:
        _set_shared(previous)


class SerialExecutor:
    """Run tasks in-process, one after another."""

    def map(self, fn: Callable, items: Iterable) -> list:
        return [fn(item) for item in items]


class ProcessPoolExecutor:
    """Fan tasks out over a ``concurrent.futures`` process pool.

    Tasks and results cross process boundaries, so everything involved
    (extractor, sites, artifacts) must be picklable — true for all
    built-in components.  Result order matches input order.  Tasks are
    submitted with an explicit chunksize scaled to the batch
    (``len(items) / (workers * 4)``) instead of the default 1, so big
    fleets do not pay one IPC round-trip per site.
    """

    #: Tasks cross a process boundary here, so ``learn_many`` strips the
    #: shared extractor/annotator from them and ships it once per worker
    #: via ``map_tasks``.
    ships_shared = True

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers

    def _resolved_workers(self) -> int:
        return self.max_workers or os.cpu_count() or 1

    def _chunksize(self, n_items: int) -> int:
        # ~4 chunks per worker: large enough to amortize pickling, small
        # enough that one slow site cannot starve the tail.
        return max(1, -(-n_items // (self._resolved_workers() * 4)))

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1:  # avoid pool startup cost for trivial batches
            return [fn(item) for item in items]
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers
        ) as pool:
            return list(pool.map(fn, items, chunksize=self._chunksize(len(items))))

    def map_tasks(self, fn: Callable, items: Iterable, shared: dict) -> list:
        """``map`` with the shared context shipped once per worker.

        The shared extractor/annotator ride the pool *initializer* —
        pickled once per worker process — so the per-task payload is
        only the site reference and labels.
        """
        items = list(items)
        if len(items) <= 1:  # avoid pool startup cost for trivial batches
            return _map_with_shared(fn, items, shared)
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers,
            initializer=_set_shared,
            initargs=(shared,),
        ) as pool:
            return list(pool.map(fn, items, chunksize=self._chunksize(len(items))))


#: Executor protocol: anything with ``map(fn, items) -> list``; the
#: site-affine :class:`~repro.api.scheduler.WorkerPool` is routed
#: through its own batch entry points.
Executor = SerialExecutor | ProcessPoolExecutor


def resolve_executor(
    executor: "Executor | WorkerPool | str | None",
) -> "Executor | WorkerPool":
    """Accept an executor instance, a shorthand string, or None (serial).

    The ``"pool"`` shorthand builds a throwaway
    :class:`~repro.api.scheduler.WorkerPool`; ``learn_many`` /
    ``apply_many`` close pools they created this way, direct callers
    own the returned pool.
    """
    if executor is None or executor == "serial":
        return SerialExecutor()
    if executor == "process":
        return ProcessPoolExecutor()
    if executor == "pool":
        from repro.api.scheduler import WorkerPool

        return WorkerPool()
    if hasattr(executor, "map") or hasattr(executor, "iter_learn_outcomes"):
        return executor
    raise ValueError(
        f"executor must be 'serial', 'process', 'pool' or have a .map "
        f"method; got {executor!r}"
    )


# -- site resolution ---------------------------------------------------------


def site_name(item: SiteLike, index: int) -> str:
    """Best-effort display name of a site input (never raises)."""
    try:
        if isinstance(item, (Site, GeneratedSite)):
            return item.name
        if isinstance(item, tuple) and len(item) == 2:
            return str(item[0])
    except Exception:  # pragma: no cover - defensive
        pass
    return f"site-{index}"


def _resolve_site(item: SiteLike) -> Site:
    """Materialize a site input, parsing raw HTML when necessary.

    Runs inside the isolated per-site task so that parse failures are
    recorded per site instead of aborting the batch.
    """
    if isinstance(item, GeneratedSite):
        return item.site
    if isinstance(item, Site):
        return item
    if isinstance(item, tuple) and len(item) == 2:
        name, pages = item
        return Site.from_html(str(name), list(pages))
    # Imported here, not at module top: arena payloads only reach
    # workers whose parent shipped a handle.
    from repro.arena import ArenaHandle, attach_site

    if isinstance(item, ArenaHandle):
        return attach_site(item)
    raise TypeError(
        f"cannot interpret {type(item).__name__} as a site "
        "(expected Site, GeneratedSite, ArenaHandle, or (name, [html]) pair)"
    )


# -- tasks (module-level so process pools can pickle them) -------------------


@dataclass(slots=True)
class _LearnTask:
    index: int
    name: str
    extractor: Extractor | None  # None -> resolved from the shared context
    item: SiteLike
    labels: Labels | None
    annotator: Annotator | None  # None -> resolved from the shared context


def _run_learn_task(task: _LearnTask) -> SiteOutcome:
    try:
        site = _resolve_site(task.item)
        labels = task.labels
        if labels is None:
            annotator = task.annotator or _SHARED.get("annotator")
            if annotator is None:
                raise ValueError("no labels and no annotator for this site")
            labels = annotator.annotate(site)
        extractor = task.extractor or _SHARED.get("extractor")
        if extractor is None:
            raise ValueError("no extractor for this task")
        artifact = extractor.learn(site, labels, site_name=task.name)
        return SiteOutcome(
            index=task.index, site=task.name, ok=True, artifact=artifact
        )
    except Exception as error:
        return SiteOutcome(
            index=task.index,
            site=task.name,
            ok=False,
            error=f"{type(error).__name__}: {error}",
        )


@dataclass(slots=True)
class _ApplyTask:
    index: int
    name: str
    artifact: WrapperArtifact
    item: SiteLike


def _run_apply_task(task: _ApplyTask) -> SiteOutcome:
    try:
        site = _resolve_site(task.item)
        extracted = task.artifact.apply(site)
        return SiteOutcome(
            index=task.index,
            site=task.name,
            ok=True,
            artifact=task.artifact,
            extracted=extracted,
        )
    except Exception as error:
        return SiteOutcome(
            index=task.index,
            site=task.name,
            ok=False,
            artifact=task.artifact,
            error=f"{type(error).__name__}: {error}",
        )


# -- entry points ------------------------------------------------------------


def learn_many(
    extractor: Extractor,
    sites: Sequence[SiteLike],
    labels: Sequence[Labels] | None = None,
    annotator: Annotator | None = None,
    executor: "Executor | WorkerPool | str | None" = None,
) -> BatchResult:
    """Learn one wrapper artifact per site.

    Labels come either from ``labels`` (one set per site, positional) or
    from ``annotator`` (run inside each site's isolated task).  Outcomes
    are returned in input order; failures never abort the batch.  A
    :class:`~repro.api.scheduler.WorkerPool` executor (or the ``"pool"``
    shorthand) runs the batch through the site-affine scheduler.
    """
    sites = list(sites)
    if labels is not None and len(labels) != len(sites):
        raise ValueError(
            f"labels ({len(labels)}) and sites ({len(sites)}) must pair up"
        )
    resolved = resolve_executor(executor)
    if hasattr(resolved, "iter_learn_outcomes"):  # WorkerPool routing
        try:
            return resolved.learn(
                extractor, sites, labels=labels, annotator=annotator
            )
        finally:
            if resolved is not executor:  # "pool" shorthand: we own it
                resolved.close()
    shared_capable = getattr(resolved, "ships_shared", False)
    tasks = [
        _LearnTask(
            index=index,
            name=site_name(item, index),
            extractor=None if shared_capable else extractor,
            item=item,
            labels=labels[index] if labels is not None else None,
            annotator=(
                None
                if shared_capable or labels is not None
                else annotator
            ),
        )
        for index, item in enumerate(sites)
    ]
    if shared_capable:
        shared = {
            "extractor": extractor,
            "annotator": annotator if labels is None else None,
        }
        outcomes = resolved.map_tasks(_run_learn_task, tasks, shared)
    else:
        outcomes = resolved.map(_run_learn_task, tasks)
    return BatchResult(outcomes=sorted(outcomes, key=lambda o: o.index))


def apply_many(
    artifacts: Sequence[WrapperArtifact],
    sites: Sequence[SiteLike],
    executor: "Executor | WorkerPool | str | None" = None,
) -> BatchResult:
    """Apply saved artifacts to sites (paired positionally).

    Re-extraction only — no learning machinery is touched.  Outcomes are
    returned in input order with per-site error isolation.  A
    :class:`~repro.api.scheduler.WorkerPool` executor (or ``"pool"``)
    runs the batch through the site-affine scheduler.
    """
    artifacts = list(artifacts)
    sites = list(sites)
    if len(artifacts) != len(sites):
        raise ValueError(
            f"artifacts ({len(artifacts)}) and sites ({len(sites)}) must pair up"
        )
    resolved = resolve_executor(executor)
    if hasattr(resolved, "iter_apply_outcomes"):  # WorkerPool routing
        try:
            return resolved.apply(artifacts, sites)
        finally:
            if resolved is not executor:  # "pool" shorthand: we own it
                resolved.close()
    tasks = [
        _ApplyTask(
            index=index,
            name=site_name(item, index),
            artifact=artifact,
            item=item,
        )
        for index, (artifact, item) in enumerate(zip(artifacts, sites))
    ]
    outcomes = resolved.map(_run_apply_task, tasks)
    return BatchResult(outcomes=sorted(outcomes, key=lambda o: o.index))
