"""Serializable wrapper artifacts — learn once, re-apply anywhere.

The paper's economics (Sec. 1) hinge on wrappers being *cheap to
re-apply*: learning runs once per site over a handful of labeled pages,
extraction runs over millions of pages.  A :class:`WrapperArtifact` is
the learned half of that split made durable: the wrapper rule as a
portable spec (see :meth:`repro.wrappers.base.Wrapper.to_spec`), the
score decomposition that selected it, and enough provenance to audit or
reproduce the learning run.  Artifacts round-trip through JSON under a
versioned schema, and :meth:`WrapperArtifact.apply` re-extracts from any
site without touching the learning machinery.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.engine import EvaluationEngine, resolve_engine
from repro.site import Site
from repro.wrappers.base import Labels, Wrapper, wrapper_from_spec

#: Version of the artifact JSON schema.  Bump on incompatible change;
#: loading rejects any other version rather than guessing.
SCHEMA_VERSION = 1


class ArtifactError(ValueError):
    """An artifact payload that cannot be understood."""


class SchemaVersionError(ArtifactError):
    """An artifact written under a different schema version."""


@dataclass(slots=True)
class WrapperArtifact:
    """A learned wrapper, serialized: rule spec + score + provenance.

    Attributes:
        wrapper_spec: portable rule spec (``Wrapper.to_spec`` output).
        rule: human-readable rule string, for logs and reports.
        site: name of the site the wrapper was learned on.
        inductor: registry key of the inductor that produced the rule.
        method: learning method (``naive``/``ntw``/``ntw-l``/``ntw-x``).
        score: score decomposition of the selected wrapper (empty for
            methods that do not rank, i.e. ``naive``).
        provenance: free-form learning context (config, label counts,
            wrapper-space size, library version).
        schema_version: artifact schema version (see :data:`SCHEMA_VERSION`).
    """

    wrapper_spec: dict
    rule: str
    site: str = ""
    inductor: str = ""
    method: str = ""
    score: dict = field(default_factory=dict)
    provenance: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # -- execution ---------------------------------------------------------

    def wrapper(self) -> Wrapper:
        """Rebuild the concrete wrapper from the stored spec."""
        return wrapper_from_spec(self.wrapper_spec)

    def apply(self, site: Site, engine: EvaluationEngine | None = None) -> Labels:
        """Extract from ``site`` with the stored rule — no relearning.

        Extraction runs through ``engine`` (the process default when
        omitted): rebuilt wrappers compare equal to the originals, so
        re-applying an artifact to a site the engine has seen is a memo
        hit, and fresh sites reuse the engine's compiled rule state.
        """
        return resolve_engine(engine).extract(site, self.wrapper())

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "WrapperArtifact":
        if not isinstance(payload, dict):
            raise ArtifactError(f"artifact payload must be a dict; got {type(payload).__name__}")
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"artifact schema version {version!r} is not supported "
                f"(this library reads version {SCHEMA_VERSION})"
            )
        spec = payload.get("wrapper_spec")
        if not isinstance(spec, dict) or "kind" not in spec:
            raise ArtifactError("artifact is missing a wrapper_spec with a 'kind'")
        artifact = cls(
            wrapper_spec=spec,
            rule=str(payload.get("rule", "")),
            site=str(payload.get("site", "")),
            inductor=str(payload.get("inductor", "")),
            method=str(payload.get("method", "")),
            score=dict(payload.get("score") or {}),
            provenance=dict(payload.get("provenance") or {}),
            schema_version=SCHEMA_VERSION,
        )
        # Fail on unknown spec kinds at load time, not first apply().
        artifact.wrapper()
        return artifact

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WrapperArtifact":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ArtifactError(f"artifact is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> Path:
        """Write the artifact as JSON; returns the path written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "WrapperArtifact":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def load_artifacts(directory: str | Path) -> dict[str, WrapperArtifact]:
    """Load every ``*.json`` artifact in a directory, keyed by site name.

    Two files claiming the same site (e.g. per-field wrappers saved as
    ``site--name.json`` / ``site--zipcode.json``) are ambiguous under a
    site-keyed view, so duplicates raise :class:`ArtifactError` instead
    of silently dropping all but one; load such files individually with
    :meth:`WrapperArtifact.load`.
    """
    artifacts: dict[str, WrapperArtifact] = {}
    sources: dict[str, Path] = {}
    for path in sorted(Path(directory).glob("*.json")):
        artifact = WrapperArtifact.load(path)
        key = artifact.site or path.stem
        if key in artifacts:
            raise ArtifactError(
                f"both {sources[key].name} and {path.name} claim site {key!r}; "
                "load per-field artifacts individually with WrapperArtifact.load"
            )
        artifacts[key] = artifact
        sources[key] = path
    return artifacts
