"""Serializable wrapper artifacts — learn once, re-apply anywhere.

The paper's economics (Sec. 1) hinge on wrappers being *cheap to
re-apply*: learning runs once per site over a handful of labeled pages,
extraction runs over millions of pages.  A :class:`WrapperArtifact` is
the learned half of that split made durable: the wrapper rule as a
portable spec (see :meth:`repro.wrappers.base.Wrapper.to_spec`), the
score decomposition that selected it, and enough provenance to audit or
reproduce the learning run.  Artifacts round-trip through JSON under a
versioned schema, and :meth:`WrapperArtifact.apply` re-extracts from any
site without touching the learning machinery.

Since schema v2 an artifact also carries its own *lifecycle kit*
(see :mod:`repro.lifecycle`):

- ``alternates`` — the ranked runner-up wrappers the scorer already
  paid to evaluate at learn time, each with its rule and score
  decomposition.  They are the self-repair ladder: when the winning
  rule drifts, :class:`repro.lifecycle.repair.RepairPolicy` promotes
  the first alternate that still validates on the drifted pages.
- ``baseline`` — the learn-time health profile
  (:class:`repro.lifecycle.monitor.HealthBaseline` as a dict) that
  :class:`repro.lifecycle.monitor.DriftDetector` compares live apply
  results against.

Versioning is forward-compatible by design: ``schema_version`` is the
*major* version, bumped only on reads this library could misinterpret.
Minor additions are plain extra keys — the loader preserves unknown
top-level keys (round-tripping them through ``extras``) and accepts
every major version back to :data:`MIN_SCHEMA_VERSION`, so v1 artifacts
load and apply unchanged (they simply have no alternates ladder and no
baseline).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import TYPE_CHECKING

from repro.engine import EvaluationEngine, resolve_engine
from repro.site import Site
from repro.wrappers.base import Labels, Wrapper, wrapper_from_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lifecycle.monitor import HealthBaseline

#: Major version of the artifact JSON schema.  Bump only on changes a
#: reader of this version would misinterpret; additive keys are minor
#: revisions and ship without a bump (the loader keeps unknown keys).
SCHEMA_VERSION = 2

#: Oldest major version this library still reads.
MIN_SCHEMA_VERSION = 1


class ArtifactError(ValueError):
    """An artifact payload that cannot be understood."""


class SchemaVersionError(ArtifactError):
    """An artifact written under an unsupported major schema version."""


@dataclass(slots=True)
class WrapperArtifact:
    """A learned wrapper, serialized: rule spec + score + provenance.

    Attributes:
        wrapper_spec: portable rule spec (``Wrapper.to_spec`` output).
        rule: human-readable rule string, for logs and reports.
        site: name of the site the wrapper was learned on.
        inductor: registry key of the inductor that produced the rule.
        method: learning method (``naive``/``ntw``/``ntw-l``/``ntw-x``).
        score: score decomposition of the selected wrapper (empty for
            methods that do not rank, i.e. ``naive``).
        provenance: free-form learning context (config, label counts,
            wrapper-space size, library version).
        alternates: ranked runner-up wrappers, best first — each a dict
            with ``wrapper_spec``, ``rule`` and ``score`` — the
            self-repair fallback ladder (empty for unranked methods and
            for v1 artifacts).
        baseline: learn-time health profile for drift detection
            (:meth:`repro.lifecycle.monitor.HealthBaseline.to_dict`
            payload; empty for v1 artifacts).
        extras: unknown top-level keys found at load time, preserved
            verbatim so minor-revision artifacts survive a load/save
            round-trip through this version.
        schema_version: artifact schema major version (see
            :data:`SCHEMA_VERSION`).
    """

    wrapper_spec: dict
    rule: str
    site: str = ""
    inductor: str = ""
    method: str = ""
    score: dict = field(default_factory=dict)
    provenance: dict = field(default_factory=dict)
    alternates: list = field(default_factory=list)
    baseline: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # -- execution ---------------------------------------------------------

    def wrapper(self) -> Wrapper:
        """Rebuild the concrete wrapper from the stored spec."""
        return wrapper_from_spec(self.wrapper_spec)

    def alternate_wrappers(self) -> list[Wrapper]:
        """Rebuild the runner-up wrappers, ladder order (best first)."""
        return [wrapper_from_spec(alt["wrapper_spec"]) for alt in self.alternates]

    def health_baseline(self) -> "HealthBaseline | None":
        """The learn-time :class:`~repro.lifecycle.monitor.HealthBaseline`,
        or ``None`` for artifacts learned before baselines (schema v1)."""
        from repro.lifecycle.monitor import HealthBaseline

        return HealthBaseline.from_dict(self.baseline)

    def apply(self, site: Site, engine: EvaluationEngine | None = None) -> Labels:
        """Extract from ``site`` with the stored rule — no relearning.

        Extraction runs through ``engine`` (the process default when
        omitted): rebuilt wrappers compare equal to the originals, so
        re-applying an artifact to a site the engine has seen is a memo
        hit, and fresh sites reuse the engine's compiled rule state.
        """
        return resolve_engine(engine).extract(site, self.wrapper())

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        import copy

        # Deep-copied (like dataclasses.asdict) so callers can edit the
        # payload — derive a variant, annotate provenance — without
        # mutating this artifact's live state through shared sub-dicts.
        payload = copy.deepcopy(self.extras)
        for spec in fields(self):
            if spec.name != "extras":
                payload[spec.name] = copy.deepcopy(getattr(self, spec.name))
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "WrapperArtifact":
        if not isinstance(payload, dict):
            raise ArtifactError(f"artifact payload must be a dict; got {type(payload).__name__}")
        version = payload.get("schema_version")
        if not isinstance(version, int) or not (
            MIN_SCHEMA_VERSION <= version <= SCHEMA_VERSION
        ):
            raise SchemaVersionError(
                f"artifact schema version {version!r} is not supported "
                f"(this library reads majors {MIN_SCHEMA_VERSION}"
                f"..{SCHEMA_VERSION}; minor additions need no bump)"
            )
        spec = payload.get("wrapper_spec")
        if not isinstance(spec, dict) or "kind" not in spec:
            raise ArtifactError("artifact is missing a wrapper_spec with a 'kind'")
        alternates = payload.get("alternates") or []
        if not isinstance(alternates, list):
            raise ArtifactError("artifact 'alternates' must be a list")
        for position, alternate in enumerate(alternates):
            if (
                not isinstance(alternate, dict)
                or not isinstance(alternate.get("wrapper_spec"), dict)
                or "kind" not in alternate["wrapper_spec"]
            ):
                raise ArtifactError(
                    f"alternate {position} is missing a wrapper_spec with a 'kind'"
                )
        baseline = payload.get("baseline") or {}
        if not isinstance(baseline, dict):
            raise ArtifactError("artifact 'baseline' must be a dict")
        import copy

        known = {field_spec.name for field_spec in fields(cls)}
        extras = {
            key: value for key, value in payload.items() if key not in known
        }
        # Deep-copied so the artifact never aliases the caller's payload
        # (a caller reusing/mutating its dict must not corrupt the rule).
        artifact = cls(
            wrapper_spec=copy.deepcopy(spec),
            rule=str(payload.get("rule", "")),
            site=str(payload.get("site", "")),
            inductor=str(payload.get("inductor", "")),
            method=str(payload.get("method", "")),
            score=copy.deepcopy(dict(payload.get("score") or {})),
            provenance=copy.deepcopy(dict(payload.get("provenance") or {})),
            alternates=copy.deepcopy(list(alternates)),
            baseline=copy.deepcopy(dict(baseline)),
            extras=copy.deepcopy(extras),
            schema_version=version,
        )
        # Fail on unknown spec kinds at load time, not first apply() —
        # for the winner and the whole fallback ladder.
        artifact.wrapper()
        artifact.alternate_wrappers()
        return artifact

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WrapperArtifact":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ArtifactError(f"artifact is not valid JSON: {error}") from error
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> Path:
        """Write the artifact as JSON; returns the path written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="utf-8")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "WrapperArtifact":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def load_artifacts(directory: str | Path) -> dict[str, WrapperArtifact]:
    """Load every ``*.json`` artifact in a directory, keyed by site name.

    Two files claiming the same site (e.g. per-field wrappers saved as
    ``site--name.json`` / ``site--zipcode.json``) are ambiguous under a
    site-keyed view, so duplicates raise :class:`ArtifactError` instead
    of silently dropping all but one; load such files individually with
    :meth:`WrapperArtifact.load`.
    """
    artifacts: dict[str, WrapperArtifact] = {}
    sources: dict[str, Path] = {}
    for path in sorted(Path(directory).glob("*.json")):
        artifact = WrapperArtifact.load(path)
        key = artifact.site or path.stem
        if key in artifacts:
            raise ArtifactError(
                f"both {sources[key].name} and {path.name} claim site {key!r}; "
                "load per-field artifacts individually with WrapperArtifact.load"
            )
        artifacts[key] = artifact
        sources[key] = path
    return artifacts
