"""The :class:`Extractor` facade: config in, artifacts out.

One object wires together everything a learning run needs — inductor,
enumeration strategy, noise/publication models, ranking weights — from a
plain :class:`ExtractorConfig`.  ``learn`` returns a serializable
:class:`~repro.api.artifacts.WrapperArtifact`; ``apply`` re-runs a saved
artifact on new pages.  The CLI, the batch layer and the examples are
all thin layers over this class.

Typical use::

    from repro.api import Extractor, ExtractorConfig

    extractor = Extractor(ExtractorConfig(inductor="xpath", method="ntw"))
    extractor.fit(train_sites, annotator, gold_type="name")
    artifact = extractor.learn(site, labels)
    artifact.save("wrappers/site.json")
    ...
    extracted = artifact.apply(new_site)   # no relearning
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import TYPE_CHECKING

from repro.api.artifacts import WrapperArtifact
from repro.api.registry import INDUCTORS
from repro.datasets.sitegen import GeneratedSite
from repro.engine import EvaluationEngine, resolve_engine
from repro.framework.naive import NaiveWrapperLearner
from repro.framework.ntw import MAX_ENUMERATION_LABELS, NoiseTolerantWrapper
from repro.lifecycle.monitor import baseline_from_extraction
from repro.lifecycle.repair import select_diverse
from repro.ranking.annotation import AnnotationModel
from repro.ranking.content import ContentModel
from repro.ranking.publication import PublicationModel
from repro.ranking.scorer import WrapperScorer
from repro.site import Site
from repro.wrappers.base import Labels, WrapperInductor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Sequence

    from repro.annotators.base import Annotator
    from repro.api.batch import BatchResult, Executor, SiteLike

#: The learning methods the facade understands (paper Sec. 7.2/7.3).
METHODS = ("naive", "ntw", "ntw-l", "ntw-x")


class ExtractorError(RuntimeError):
    """A learning/apply request the current configuration cannot serve."""


@dataclass(slots=True)
class ExtractorConfig:
    """Declarative configuration of an extraction pipeline.

    Attributes:
        inductor: registry key in :data:`repro.api.registry.INDUCTORS`.
        method: ``naive`` (no noise handling) or an NTW variant.
        enumerator: ``auto``, ``top_down`` or ``bottom_up``.
        max_labels: enumeration label cap (ranking uses all labels).
        annotation_p / annotation_r: fallback annotator noise profile,
            used when no annotation model has been fitted or supplied.
        annotation_weight / publication_weight: scorer term weights.
        keep_alternates: how many ranked runner-up wrappers each learned
            artifact carries as its self-repair fallback ladder
            (0 disables; unranked methods never have alternates).
    """

    inductor: str = "xpath"
    method: str = "ntw"
    enumerator: str = "auto"
    max_labels: int = MAX_ENUMERATION_LABELS
    annotation_p: float = 0.95
    annotation_r: float = 0.5
    annotation_weight: float = 1.0
    publication_weight: float = 1.0
    keep_alternates: int = 3

    def validate(self, known_inductor: bool = True) -> None:
        """Check the config; ``known_inductor=False`` skips the registry
        check (used when an inductor *instance* is supplied directly)."""
        if self.method not in METHODS:
            raise ValueError(
                f"unknown method {self.method!r} (choose from {', '.join(METHODS)})"
            )
        if known_inductor and self.inductor not in INDUCTORS:
            raise ValueError(
                f"unknown inductor {self.inductor!r} "
                f"(registered: {', '.join(INDUCTORS.names())})"
            )
        if self.enumerator not in ("auto", "top_down", "bottom_up"):
            raise ValueError(f"unknown enumerator {self.enumerator!r}")
        if self.max_labels <= 0:
            raise ValueError(
                f"max_labels must be a positive integer; got {self.max_labels}"
            )
        if self.keep_alternates < 0:
            raise ValueError(
                f"keep_alternates must be >= 0; got {self.keep_alternates}"
            )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ExtractorConfig":
        """Build a config from a dict, ignoring unknown keys.

        Unknown keys are tolerated so artifacts written by newer
        versions (whose provenance embeds their config) stay readable.
        """
        known = {f.name for f in fields(cls)}
        config = cls(**{k: v for k, v in payload.items() if k in known})
        config.validate()
        return config


class Extractor:
    """Config-driven facade over learning, scoring and extraction."""

    def __init__(
        self,
        config: ExtractorConfig | None = None,
        annotation_model: AnnotationModel | None = None,
        publication_model: PublicationModel | None = None,
        content_model: ContentModel | None = None,
        inductor: WrapperInductor | None = None,
        engine: EvaluationEngine | None = None,
    ) -> None:
        """Build a facade from ``config``.

        ``inductor`` optionally supplies a pre-built inductor instance
        (e.g. one with non-default parameters); the config's inductor
        name is then set from the instance for artifact provenance.
        ``engine`` optionally supplies a shared evaluation engine; one
        engine is threaded through every learn/apply call this facade
        makes, so batch jobs reuse page indexes and extraction memos
        across wrappers and fields of the same site (the process-wide
        default engine is used when omitted).
        """
        self.config = replace(config) if config is not None else ExtractorConfig()
        if inductor is not None:
            self.config.inductor = _inductor_name(inductor)
            self.config.validate(known_inductor=False)
            self.inductor: WrapperInductor = inductor
        else:
            self.config.validate()
            self.inductor = INDUCTORS.create(self.config.inductor)
        self.annotation_model = annotation_model
        self.publication_model = publication_model
        self.content_model = content_model
        self.engine = resolve_engine(engine)

    # -- model fitting -----------------------------------------------------

    def fit(
        self,
        train: list[GeneratedSite],
        annotator: "Annotator",
        gold_type: str = "name",
    ) -> "Extractor":
        """Fit the noise profile and publication prior on training sites.

        Mirrors the paper's "Learning the model parameters": estimate
        ``(p, r)`` from the annotator's hits against gold, fit the
        publication feature densities from the gold lists.  Returns
        ``self`` for chaining.
        """
        from repro.evaluation.runner import fit_models

        models = fit_models(train, annotator, gold_type)
        self.annotation_model = models.annotation
        self.publication_model = models.publication
        return self

    def _annotation_model(self) -> AnnotationModel:
        if self.annotation_model is not None:
            return self.annotation_model
        return AnnotationModel.from_rates(
            p=self.config.annotation_p, r=self.config.annotation_r
        )

    def scorer(self) -> WrapperScorer | None:
        """The ranking scorer for the configured method (None for naive)."""
        method = self.config.method
        if method == "naive":
            return None
        needs_publication = method in ("ntw", "ntw-x")
        if needs_publication and self.publication_model is None:
            raise ExtractorError(
                f"method {method!r} needs a publication model; call "
                "Extractor.fit(train, annotator, gold_type) or pass "
                "publication_model= (or use method='ntw-l')"
            )
        annotation = self._annotation_model() if method in ("ntw", "ntw-l") else None
        publication = self.publication_model if needs_publication else None
        return WrapperScorer(
            annotation,
            publication,
            content_model=self.content_model,
            annotation_weight=self.config.annotation_weight,
            publication_weight=self.config.publication_weight,
        )

    # -- single-site learning / extraction ---------------------------------

    def learn(
        self,
        site: Site | GeneratedSite,
        labels: Labels,
        site_name: str | None = None,
    ) -> WrapperArtifact:
        """Learn a wrapper from noisy ``labels``; return its artifact.

        Raises :class:`ExtractorError` when no wrapper can be learned
        (no labels, or an empty wrapper space).
        """
        site = _as_site(site)
        name = site_name or site.name
        if not labels:
            raise ExtractorError(f"no labels to learn from on site {name!r}")
        provenance = {
            "config": self.config.to_dict(),
            "n_labels": len(labels),
            "n_pages": len(site),
            "repro_version": _library_version(),
        }
        alternates: list[dict] = []
        if self.config.method == "naive":
            wrapper = NaiveWrapperLearner(self.inductor).learn(site, labels)
            score: dict = {}
            extracted = self.engine.extract(site, wrapper)
        else:
            learner = NoiseTolerantWrapper(
                self.inductor,
                self.scorer(),
                enumerator=self.config.enumerator,
                max_labels=self.config.max_labels,
                engine=self.engine,
            )
            result = learner.learn(site, labels)
            if result.best is None:
                raise ExtractorError(
                    f"no wrapper survived ranking on site {name!r}"
                )
            wrapper = result.best.wrapper
            score = result.best.score_dict()
            extracted = result.best.extracted
            # The runner-up wrappers the ranker already scored become
            # the artifact's self-repair ladder (see repro.lifecycle).
            # Diversity pruning: a rung whose feature set subsumes the
            # winner (or a kept rung) fails whenever they do, so ladder
            # slots go to structurally distinct repair paths first.
            candidates = [rw for rw in result.ranked[1:] if rw.extracted]
            winner_spec = wrapper.to_spec()
            specs = [rw.wrapper.to_spec() for rw in candidates]
            alternates = [
                {
                    "wrapper_spec": specs[index],
                    "rule": candidates[index].wrapper.rule(),
                    "score": candidates[index].score_dict(),
                }
                for index in select_diverse(
                    winner_spec, specs, self.config.keep_alternates
                )
            ]
            if result.enumeration is not None:
                provenance["wrapper_space"] = result.enumeration.size
                provenance["inductor_calls"] = result.enumeration.inductor_calls
        baseline = baseline_from_extraction(extracted, len(site), labels=labels)
        return WrapperArtifact(
            wrapper_spec=wrapper.to_spec(),
            rule=wrapper.rule(),
            site=name,
            inductor=self.config.inductor,
            method=self.config.method,
            score=score,
            provenance=provenance,
            alternates=alternates,
            baseline=baseline.to_dict(),
        )

    def annotate_and_learn(
        self, site: Site | GeneratedSite, annotator: "Annotator"
    ) -> WrapperArtifact:
        """Annotate ``site`` then learn — the fully automatic pipeline."""
        resolved = _as_site(site)
        return self.learn(resolved, annotator.annotate(resolved))

    def apply(self, artifact: WrapperArtifact, site: Site | GeneratedSite) -> Labels:
        """Extract from ``site`` using a saved artifact (no relearning)."""
        return artifact.apply(_as_site(site), engine=self.engine)

    # -- batch -------------------------------------------------------------

    def learn_many(
        self,
        sites: "Sequence[SiteLike]",
        labels: list[Labels] | None = None,
        annotator: "Annotator | None" = None,
        executor: "Executor | str | None" = None,
    ) -> "BatchResult":
        """Learn one artifact per site with per-site error isolation."""
        from repro.api.batch import learn_many

        return learn_many(
            self, sites, labels=labels, annotator=annotator, executor=executor
        )

    def apply_many(
        self,
        artifacts: "Sequence[WrapperArtifact]",
        sites: "Sequence[SiteLike]",
        executor: "Executor | str | None" = None,
    ) -> "BatchResult":
        """Apply saved artifacts across sites (positional pairing)."""
        from repro.api.batch import apply_many

        return apply_many(artifacts, sites, executor=executor)


def _inductor_name(inductor: WrapperInductor) -> str:
    """Registry key of an inductor instance (class name when unregistered)."""
    for name, factory in INDUCTORS.items():
        if isinstance(factory, type) and type(inductor) is factory:
            return name
    return type(inductor).__name__


def _as_site(site: Site | GeneratedSite) -> Site:
    """Accept either a bare :class:`Site` or a dataset's generated site."""
    if isinstance(site, GeneratedSite):
        return site.site
    return site


def _library_version() -> str:
    try:
        import repro

        return getattr(repro, "__version__", "unknown")
    except Exception:  # pragma: no cover - defensive
        return "unknown"
