"""Streaming crawler ingestion: pages arrive incrementally, results
stream back out-of-order.

The batch entry points (:func:`~repro.api.batch.learn_many`,
:func:`~repro.api.batch.apply_many` and the ``*_stream`` helpers) all
assume the fleet is known up front.  A crawler does not work like that:
pages trickle in site by site, and the pipeline must keep extracting
while the crawl is still running.  :class:`IngestSession` is the
input-side counterpart of the output-side streaming added in PR 3 — it
holds a live :class:`~repro.api.scheduler.WorkerPool` and accepts work
incrementally:

- :meth:`IngestSession.submit` / :meth:`IngestSession.submit_html`
  enqueue a site (learn or apply) while earlier results are still
  streaming back; submissions dispatch immediately to the site's
  owning worker (one-site chunks), and pages ship lean — parsed sites
  as shared-memory arena handles (attach on arrival, no re-parse; see
  :mod:`repro.arena`), raw submissions as HTML that refreezes on
  arrival (:meth:`repro.htmldom.dom.Document.__reduce_ex__`);
- **bounded in-flight backpressure** — ``max_inflight`` caps the jobs
  the *pool* still has to finish; a ``submit`` past the cap blocks,
  pumping completions into the ready buffer until there is room (so a
  fast crawler cannot flood the pool's dispatch queues — completed
  outcomes awaiting the consumer are not capped; drain them with
  ``results()``/``advance()``);
- **out-of-order completion** — :meth:`results` yields whatever has
  completed so far without blocking; :meth:`iter_results` blocks until
  every submitted job has been yielded (the end-of-crawl drain);
- :class:`AsyncIngestSession` is a thin ``asyncio`` adapter for async
  crawlers: same API with ``await`` / ``async for``, all pool access
  serialized on one executor thread.

Sync usage::

    with IngestSession(extractor=extractor, annotator=annotator,
                       max_workers=4) as session:
        for name, pages in crawl():
            session.submit_html(name, pages)
            for outcome in session.advance():   # interleaved drain
                handle(outcome)
        for outcome in session.iter_results():  # final blocking drain
            handle(outcome)

(``advance`` drains like the pure-probe ``results`` but also runs
one-worker inline jobs now, so outcomes flow per submission on any
pool size.)

Apply-mode sessions pass ``artifact=`` per submission (or a default for
the whole session) and need no extractor.  Outcome ``index`` is the
submission number, so callers can pair results with submissions however
far out of order they complete.
"""

from __future__ import annotations

from collections.abc import AsyncIterator, Iterator, Sequence

from repro.annotators.base import Annotator
from repro.api.artifacts import WrapperArtifact
from repro.api.batch import SiteLike, SiteOutcome, site_name
from repro.api.extractor import Extractor
from repro.api.scheduler import (
    _RESULT_POLL_SECONDS,
    WorkerPool,
    _Job,
    _payload_for,
    _site_key,
)
from repro.telemetry import counter
from repro.telemetry import names as metric_names
from repro.wrappers.base import Labels

__all__ = ["AsyncIngestSession", "IngestSession"]

#: Default in-flight bound: enough to keep every worker's dispatch
#: window full.  It caps the jobs the *pool* has not yet finished —
#: completed outcomes buffered for the consumer are parent-side memory
#: and remain the consumer's to drain (results()/advance()); a
#: consumer that never drains grows the ready buffer, not the pool.
_DEFAULT_INFLIGHT_PER_WORKER = 8


class IngestSession:
    """Incremental submission into a live worker pool.

    Args:
        extractor: the shared :class:`Extractor` for learn submissions
            (optional for apply-only sessions).
        annotator: session annotator for learn submissions that carry
            no explicit labels.
        artifact: default artifact for apply submissions (a per-submit
            ``artifact=`` overrides it).
        pool: an existing :class:`WorkerPool` to run on; the caller
            keeps ownership (the pool survives the session).  When
            omitted the session owns a fresh pool of ``max_workers``
            workers and closes it with the session.
        max_workers: worker count for an owned pool (ignored when
            ``pool`` is given); defaults to the CPU count.
        max_inflight: backpressure bound on jobs the pool has not yet
            finished (completed outcomes buffered for the consumer do
            not count toward it); defaults to ``8 × workers``.
        scale_max: autoscale ceiling for an owned pool (ignored when
            ``pool`` is given): under sustained backlog pressure the
            pool grows one worker at a time up to this many, attaching
            already-shipped sites from shared arena segments instead of
            re-parsing (see :meth:`WorkerPool.resize`).

    A session is the pool's single live stream (starting a batch on the
    pool while a session is open raises, and vice versa); close the
    session to release the stream.  Not thread-safe — one producer
    thread, which may also consume, or use :class:`AsyncIngestSession`.
    """

    def __init__(
        self,
        extractor: Extractor | None = None,
        annotator: Annotator | None = None,
        artifact: WrapperArtifact | None = None,
        pool: WorkerPool | None = None,
        max_workers: int | None = None,
        max_inflight: int | None = None,
        scale_max: int | None = None,
    ) -> None:
        self.extractor = extractor
        self.annotator = annotator
        self.artifact = artifact
        self._owns_pool = pool is None
        self.pool = (
            pool
            if pool is not None
            else WorkerPool(max_workers, scale_max=scale_max)
        )
        workers = self.pool.max_workers
        self.max_inflight = (
            max_inflight
            if max_inflight is not None
            else _DEFAULT_INFLIGHT_PER_WORKER * workers
        )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1; got {self.max_inflight}"
            )
        shared = None
        if extractor is not None:
            shared = {"extractor": extractor, "annotator": annotator}
        self._session = self.pool._open_session(shared)
        self._submitted = 0
        self._yielded = 0
        self._closed = False

    # -- submission ---------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Submissions not yet surfaced through ``results``."""
        return self._submitted - self._yielded

    def submit(
        self,
        site: SiteLike,
        labels: Labels | None = None,
        artifact: WrapperArtifact | None = None,
        name: str | None = None,
        resolve_texts: bool = False,
    ) -> int:
        """Enqueue one site; returns its submission index.

        With ``artifact`` (or a session-default artifact) this is an
        apply job; otherwise a learn job using the session's extractor
        and ``labels`` or the session annotator.  Blocks while the
        in-flight bound is reached, pumping completions into the ready
        buffer (drain them with :meth:`results`).  ``resolve_texts``
        makes apply outcomes carry the extracted nodes' texts, resolved
        on the worker that already holds the parsed site (see
        :attr:`~repro.api.batch.SiteOutcome.texts`).
        """
        if self._closed:
            raise RuntimeError("IngestSession is closed")
        index = self._submitted
        artifact = artifact if artifact is not None else self.artifact
        if artifact is None and self.extractor is None:
            raise ValueError(
                "submission needs an artifact (apply) or a session "
                "extractor (learn)"
            )
        # Backpressure: cap the jobs the *pool* still has to finish.
        # Completions pumped here land in the session's ready buffer
        # (drained by results()); what a stalled consumer leaves there
        # is parent-side memory, not pool-queue pressure.
        while self._session.uncompleted >= self.max_inflight:
            self._session.pump(_RESULT_POLL_SECONDS)
        key = _site_key(site, index)
        if artifact is not None:
            job = _Job(
                index=index,
                kind="apply",
                name=name or site_name(site, index),
                site_key=key,
                field=artifact.method or "apply",
                artifact=artifact,
                resolve_texts=resolve_texts,
            )
        else:
            job = _Job(
                index=index,
                kind="learn",
                name=name or site_name(site, index),
                site_key=key,
                field=(
                    f"{self.extractor.config.inductor}"
                    f"/{self.extractor.config.method}"
                ),
                labels=labels,
            )
        self._session.add([job], {key: _payload_for(site)})
        self._submitted += 1
        counter(metric_names.INGEST_SUBMITTED).inc(kind=job.kind)
        return index

    def submit_html(
        self,
        name: str,
        sources: Sequence[str],
        labels: Labels | None = None,
        artifact: WrapperArtifact | None = None,
        resolve_texts: bool = False,
    ) -> int:
        """Enqueue raw crawler pages for one site (parsed on the owning
        worker, so parse failures are per-site outcomes)."""
        return self.submit(
            (name, list(sources)),
            labels=labels,
            artifact=artifact,
            name=name,
            resolve_texts=resolve_texts,
        )

    def update_shared(
        self,
        extractor: Extractor | None = None,
        annotator: Annotator | None = None,
        artifact: WrapperArtifact | None = None,
    ) -> bool:
        """Hot-swap session context mid-stream — no session restart.

        The redeploy half of the wrapper lifecycle: after
        :mod:`repro.lifecycle.repair` produces a refit extractor (or a
        repaired artifact), ship it through the *live* stream session.
        Arguments left ``None`` keep their current value.

        - ``extractor`` / ``annotator`` update the session's learn
          context and are re-shipped to the pool's live workers through
          their normal inboxes (fingerprint-gated — see
          :meth:`~repro.api.scheduler.WorkerPool.update_shared`), so
          they apply to jobs the workers receive after the swap;
        - ``artifact`` replaces the session-default artifact used by
          submissions that pass none (artifacts ride per job, so no
          re-ship is involved — the swap is immediate for later
          submissions).

        Returns whether an extractor re-ship actually happened.
        """
        if self._closed:
            raise RuntimeError("IngestSession is closed")
        if artifact is not None:
            self.artifact = artifact
        if annotator is not None:
            self.annotator = annotator
        if extractor is not None:
            self.extractor = extractor
        if self.extractor is None:
            return False
        return self.pool.update_shared(
            extractor=self.extractor, annotator=self.annotator
        )

    # -- consumption --------------------------------------------------------

    def results(self) -> Iterator[SiteOutcome]:
        """Yield every outcome that has already completed; never blocks
        beyond a zero-timeout poll.  Safe to call between submissions."""
        if self._closed:
            return
        while True:
            outcome = self._session.next_outcome(0.0)
            if outcome is None:
                return
            self._yielded += 1
            counter(metric_names.INGEST_RESULTS).inc(ok=str(outcome.ok).lower())
            yield outcome

    def pump(self, timeout: float = _RESULT_POLL_SECONDS) -> None:
        """Give the stream one real timed wait.

        Zero-timeout polls (:meth:`results` / :meth:`advance`) never
        reap crashed workers — a result still in transit must not be
        mistaken for a loss — so a dispatcher that only ever calls them
        would wait forever on a dead worker's jobs.  Calling ``pump``
        whenever the stream goes quiet waits up to ``timeout`` for a
        completion and, on silence, runs worker health checks: crashed
        workers are reaped, their chunks retried (or quarantined), and
        — on pools with respawn enabled — replacements spawned.
        """
        if self._closed:
            return
        self._session.pump(timeout)

    def advance(self) -> Iterator[SiteOutcome]:
        """Like :meth:`results`, but first make the session progress.

        On a multi-worker pool this is exactly :meth:`results` (work
        progresses in the workers on its own); on a one-worker inline
        pool it runs the queued jobs *now*, so a producer loop that
        calls ``advance`` after each submission emits outcomes as
        extractions complete instead of deferring them all to the final
        drain.  The preferred interleave call for crawler loops.
        """
        if self._closed:
            return
        self._session.drive()
        yield from self.results()

    def iter_results(self) -> Iterator[SiteOutcome]:
        """Yield outcomes until everything submitted has been yielded.

        This is the end-of-crawl drain; it blocks while work is in
        flight.  Submitting more while iterating is allowed (the
        iterator simply has more to wait for).
        """
        while not self._closed and self.in_flight:
            outcome = self._session.next_outcome(_RESULT_POLL_SECONDS)
            if outcome is not None:
                self._yielded += 1
                counter(metric_names.INGEST_RESULTS).inc(
                    ok=str(outcome.ok).lower()
                )
                yield outcome

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """End the stream; unconsumed results are discarded.

        An owned pool is closed outright; a caller-supplied pool is
        released back for batch use (its warm workers keep their
        interned sites and memos).
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_pool:
            self.pool.close()
        else:
            self._session.close()

    def __enter__(self) -> "IngestSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncIngestSession:
    """``asyncio`` adapter over :class:`IngestSession`.

    Built for async crawlers: ``await submit(...)`` applies the same
    backpressure without blocking the event loop, and ``async for
    outcome in session.iter_results()`` drains completions.  All pool
    access runs on one single-thread executor, so the underlying
    session never sees concurrent calls::

        async with AsyncIngestSession(artifact=artifact) as session:
            async for name, pages in crawl():
                await session.submit_html(name, pages)
                for outcome in await session.completed():
                    handle(outcome)
            async for outcome in session.iter_results():
                handle(outcome)
    """

    def __init__(self, **kwargs) -> None:
        self._kwargs = kwargs
        self._session: IngestSession | None = None
        self._executor = None
        self._session_lock = None

    async def _call(self, fn, *args, **kwargs):
        import asyncio
        import concurrent.futures

        if self._executor is None:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-ingest"
            )
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, lambda: fn(*args, **kwargs)
        )

    async def _ensure_session(self) -> IngestSession:
        import asyncio

        # The lock guards the check-then-create across the await: two
        # producer tasks submitting concurrently before first use must
        # share one session, not leak a second pool.  (No await between
        # the None-check and the assignment, so lazy lock creation on
        # one event loop is itself race-free.)
        if self._session_lock is None:
            self._session_lock = asyncio.Lock()
        async with self._session_lock:
            if self._session is None:
                self._session = await self._call(IngestSession, **self._kwargs)
        return self._session

    @property
    def in_flight(self) -> int:
        return self._session.in_flight if self._session is not None else 0

    async def submit(self, site: SiteLike, **kwargs) -> int:
        session = await self._ensure_session()
        return await self._call(session.submit, site, **kwargs)

    async def submit_html(
        self, name: str, sources: Sequence[str], **kwargs
    ) -> int:
        session = await self._ensure_session()
        return await self._call(session.submit_html, name, sources, **kwargs)

    async def update_shared(self, **kwargs) -> bool:
        """Hot-swap session context (see ``IngestSession.update_shared``)."""
        session = await self._ensure_session()
        return await self._call(session.update_shared, **kwargs)

    async def completed(self) -> list[SiteOutcome]:
        """Everything that has completed so far (non-blocking drain)."""
        session = await self._ensure_session()
        return await self._call(lambda: list(session.results()))

    async def advance(self) -> list[SiteOutcome]:
        """Drive session-owned work, then drain completions (the
        interleave call — see ``IngestSession.advance``)."""
        session = await self._ensure_session()
        return await self._call(lambda: list(session.advance()))

    async def iter_results(self) -> AsyncIterator[SiteOutcome]:
        """Async end-of-crawl drain (see ``IngestSession.iter_results``)."""
        session = await self._ensure_session()
        done = object()
        iterator = session.iter_results()

        def pull() -> object:
            return next(iterator, done)

        while True:
            outcome = await self._call(pull)
            if outcome is done:
                return
            yield outcome

    async def close(self) -> None:
        if self._session is not None:
            await self._call(self._session.close)
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    async def __aenter__(self) -> "AsyncIngestSession":
        await self._ensure_session()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
