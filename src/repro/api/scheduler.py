"""Site-affine batch scheduling: persistent warm workers, sharded
dispatch, streaming outcomes.

The generic executors in :mod:`repro.api.batch` treat every (site,
field) task as an island: a throwaway pool is built per call, each task
re-pickles everything it touches, and every worker rebuilds page
indexes, posting tries and span tables from scratch.  That throws away
exactly the state the paper's economics depend on reusing — wrappers
are learned once and *applied at scale*, so per-site derived structures
dominate the steady-state cost.

:class:`WorkerPool` keeps that state warm:

- **persistent workers** — the pool outlives a single batch call;
  each worker holds one long-lived
  :class:`~repro.engine.EvaluationEngine` plus an LRU-bounded intern
  table of :class:`~repro.site.Site` documents, so feature indexes,
  posting tries, span tables and extraction memos built for a site
  survive between tasks *and between batches*;
- **ship-once payloads** — the shared :class:`~repro.api.extractor.Extractor`
  and annotator cross the process boundary once per worker (and again
  only when they change), and a site's pages are shipped only to the
  worker that owns its shard, once — later tasks reference the interned
  copy by key;
- **site-affine sharded dispatch** — tasks hash to workers by *site*
  (the field tag rides along for per-field accounting in
  :class:`SchedulerStats`), so everything touching one site — every
  field learned on it, every artifact applied to it — lands on the
  worker already holding its derived caches, with work-stealing from
  the largest backlog when a worker runs dry (the stolen site is
  shipped to the thief on first touch);
- **chunked submission, streaming results** — tasks travel in chunks
  sized to the batch, and outcomes stream back as they complete:
  ``iter_learn_outcomes`` / ``iter_apply_outcomes`` (and the
  module-level :func:`learn_stream` / :func:`apply_stream`) yield
  :class:`~repro.api.batch.SiteOutcome` records in completion order,
  while :meth:`WorkerPool.learn` / :meth:`WorkerPool.apply` return the
  ordered :class:`~repro.api.batch.BatchResult`.

A one-worker pool runs inline in the calling process — no child
processes, same warm-intern semantics — which is also the streaming
fallback when no pool is supplied.  ``repro.api.batch.learn_many`` and
``apply_many`` route through a :class:`WorkerPool` automatically when
one is passed as the executor (shorthand: ``executor="pool"``).

Dispatch runs through *stream sessions* (the pool's re-entrancy guard
is the session handle): jobs may be **added while earlier results are
still streaming back**, which is what the batch entry points, the
``*_stream`` helpers and the input-side
:class:`~repro.api.ingest.IngestSession` all share.  Results travel
one queue per worker, forwarded by parent-side reader threads into a
local queue — a worker killed mid-flush can only wedge its own (daemon)
reader, never a sibling's puts — so worker crashes are survivable
(unacknowledged chunks retry on survivors, index-keyed dedupe keeps
outcomes exactly-once) and :meth:`WorkerPool.close` is deterministic
even mid-stream.  Site payloads ship lean: with site sharing on (the
default), a parsed site is packed once into a shared-memory arena
segment and crosses the process boundary as a handle that workers
attach read-only (:mod:`repro.arena`) — otherwise parsed pages ship as
raw HTML and refreeze on arrival (see
:meth:`repro.htmldom.dom.Document.__reduce_ex__`).  Near-zero attach
cost is also what makes :meth:`WorkerPool.resize` practical: the pool
can grow (or shrink) mid-stream, manually or automatically under
backlog pressure (``scale_max``), without re-parsing anything already
shipped.

Per-site error isolation matches the batch layer: a site whose pages
fail to parse (or whose learning blows up) is a failed outcome, and
later tasks for that site fail with the same recorded error instead of
crashing the worker.
"""

from __future__ import annotations

import itertools
import os
import time
import zlib
from collections import Counter, OrderedDict, deque
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro import faults
from repro import telemetry
from repro.telemetry import names as metric_names
from repro.annotators.base import Annotator
from repro.api.artifacts import WrapperArtifact
from repro.api.batch import (
    BatchResult,
    SiteLike,
    SiteOutcome,
    _resolve_site,
    site_name,
)
from repro.api.extractor import Extractor
from repro.datasets.sitegen import GeneratedSite
from repro.engine import EvaluationEngine
from repro.engine.config import get_config
from repro.site import Site, sources_fingerprint
from repro.wrappers.base import Labels

__all__ = [
    "SchedulerStats",
    "WorkerPool",
    "apply_stream",
    "learn_stream",
]

#: Chunks each worker keeps in flight; >1 overlaps compute with IPC.
_DISPATCH_WINDOW = 2

#: Chunks per worker a full batch is split into (the chunksize scale).
_CHUNKS_PER_WORKER = 4

#: Seconds to wait for one result before re-checking worker health.
_RESULT_POLL_SECONDS = 1.0

#: Rapid-death detection: this many worker deaths inside the window
#: triggers exponential respawn backoff (a crash loop should not spin
#: the fork machinery at full speed).
_RAPID_DEATH_COUNT = 3
_RAPID_DEATH_WINDOW_SECONDS = 5.0
_RESPAWN_BACKOFF_MAX_SECONDS = 10.0


# -- jobs --------------------------------------------------------------------


@dataclass(slots=True)
class _Job:
    """One unit of scheduled work, addressed by its site shard."""

    index: int
    kind: str  # "learn" | "apply"
    name: str
    site_key: str
    field: str  # what is being extracted; stats accounting, not routing
    payload: object | None = None  # SiteLike; attached at dispatch time
    labels: Labels | None = None
    artifact: WrapperArtifact | None = None
    resolve_texts: bool = False  # apply jobs: resolve node texts worker-side


def _site_key(item: SiteLike, index: int) -> str:
    """Stable intern key of a site input: name plus a content digest.

    The digest covers the page *content* (via
    :meth:`~repro.site.Site.content_fingerprint`, which hashes tree
    structure when a page's source cannot vouch for it), so two sites
    sharing a bare ``name`` — in one batch or across batches — never
    alias one interned copy in the ship-once payload ledger or a
    worker's intern LRU.  Inputs without readable content get a
    per-position key (shipped every time, never aliased).
    """
    try:
        if isinstance(item, GeneratedSite):
            item = item.site
        if isinstance(item, Site):
            return f"{item.name}\x00{item.content_fingerprint()}"
        if isinstance(item, tuple) and len(item) == 2:
            # Shared framing means a raw pair and its parsed Site
            # intern as the same payload.
            return f"{item[0]}\x00{sources_fingerprint(item[1])}"
        return f"unkeyed-{index}"
    except Exception:
        return f"unkeyed-{index}"


def _payload_for(item: SiteLike) -> object:
    """What actually crosses the wire for a site input.

    Generated sites ship only their parsed :class:`Site` (gold lists
    and metadata stay home); raw pairs ship raw so parse failures stay
    per-site failures inside the worker.
    """
    if isinstance(item, GeneratedSite):
        return item.site
    return item


class _SiteUnavailable(Exception):
    """A job referenced a site whose earlier resolution failed."""


# -- the warm worker (used inline and inside child processes) ----------------


class _WarmWorker:
    """Per-worker warm state: interned sites + one evaluation engine.

    The engine outlives every shipped extractor: when a new shared
    extractor arrives it is re-pointed at the worker's engine, so site
    memos built by previous batches keep serving.
    """

    def __init__(self, intern_bound: int | None = None) -> None:
        self.engine = EvaluationEngine()
        self.extractor: Extractor | None = None
        self.annotator: Annotator | None = None
        self.intern_bound = intern_bound
        self.sites: OrderedDict[str, Site] = OrderedDict()
        self.failed: dict[str, str] = {}
        self.sites_resolved = 0  # how many payloads this worker built

    def set_shared(
        self,
        extractor: Extractor | None = None,
        annotator: Annotator | None = None,
        adopt_engine: bool = False,
    ) -> None:
        """Install the batch's shared context.

        In a child process the shipped extractor is this worker's
        private copy, so it is re-pointed at the worker's long-lived
        engine (the engine outlives every shipped extractor).  Inline —
        where the extractor is the *caller's* object and must not be
        mutated — the worker adopts the extractor's engine instead
        (``adopt_engine=True``).
        """
        self.extractor = extractor
        self.annotator = annotator
        if extractor is not None:
            if adopt_engine:
                self.engine = extractor.engine
            else:
                extractor.engine = self.engine

    def _site_for(self, job: _Job) -> Site:
        key = job.site_key
        site = self.sites.get(key)
        if site is not None:
            self.sites.move_to_end(key)
            return site
        if key in self.failed:
            raise _SiteUnavailable(self.failed[key])
        if job.payload is None:
            raise _SiteUnavailable(
                f"site {job.name!r} was never shipped to this worker"
            )
        try:
            site = _resolve_site(job.payload)
        except Exception as error:
            message = f"{type(error).__name__}: {error}"
            self.failed[key] = message
            raise _SiteUnavailable(message) from error
        self.sites[key] = site
        self.sites_resolved += 1
        bound = (
            self.intern_bound
            if self.intern_bound is not None
            else get_config().interned_site_bound
        )
        while len(self.sites) > bound:
            self.sites.popitem(last=False)
        return site

    def run_job(self, job: _Job) -> SiteOutcome:
        start = time.monotonic()
        hydrate_s = 0.0
        metrics = telemetry.get_registry()

        def finish(outcome: SiteOutcome) -> SiteOutcome:
            # Stage timings ride the outcome back to the submitter:
            # ``start``/``end`` are system-wide CLOCK_MONOTONIC stamps,
            # comparable across the process boundary, so the parent can
            # compute queue_wait/result_flush against its own clock.
            end = time.monotonic()
            extract_s = max(0.0, end - start - hydrate_s)
            outcome.timings = {
                "start": start,
                "end": end,
                "hydrate_s": hydrate_s,
                "extract_s": extract_s,
            }
            metrics.counter(metric_names.WORKER_JOBS).inc()
            metrics.histogram(metric_names.WORKER_HYDRATE_S).observe(hydrate_s)
            metrics.histogram(metric_names.WORKER_EXTRACT_S).observe(extract_s)
            return outcome

        try:
            site = self._site_for(job)
            hydrate_s = time.monotonic() - start
            metrics.counter(metric_names.WORKER_PAGES).inc(len(site))
            if job.kind == "apply":
                if job.artifact is None:
                    raise ValueError("apply job carries no artifact")
                extracted = job.artifact.apply(site, engine=self.engine)
                texts = None
                if job.resolve_texts:
                    # The worker holds the parsed site interned; resolving
                    # texts here spares the parent a full re-parse.
                    texts = [
                        site.text_node(node_id).text
                        for node_id in sorted(extracted)
                    ]
                return finish(
                    SiteOutcome(
                        index=job.index,
                        site=job.name,
                        ok=True,
                        artifact=job.artifact,
                        extracted=extracted,
                        texts=texts,
                    )
                )
            labels = job.labels
            if labels is None:
                if self.annotator is None:
                    raise ValueError("no labels and no annotator for this site")
                labels = self.annotator.annotate(site)
            if self.extractor is None:
                raise ValueError("no extractor was shipped for this batch")
            artifact = self.extractor.learn(site, labels, site_name=job.name)
            return finish(
                SiteOutcome(
                    index=job.index, site=job.name, ok=True, artifact=artifact
                )
            )
        except _SiteUnavailable as error:
            return finish(
                SiteOutcome(
                    index=job.index,
                    site=job.name,
                    ok=False,
                    artifact=job.artifact,
                    error=str(error),
                )
            )
        except Exception as error:
            return finish(
                SiteOutcome(
                    index=job.index,
                    site=job.name,
                    ok=False,
                    artifact=job.artifact,
                    error=f"{type(error).__name__}: {error}",
                )
            )


#: Outcomes a worker may coalesce into one flush message.  Bounds both
#: flush latency (the parent sees nothing until the flush) and message
#: size; extraction-only ingest chunks are often single jobs, so small
#: fleets still coalesce several chunks per IPC round-trip.
_COALESCE_MAX_OUTCOMES = 64


def _worker_main(
    worker_id: int, inbox, outbox, intern_bound: int, marker=None
) -> None:
    """Child-process loop: apply shared updates, run job chunks.

    ``intern_bound`` is frozen by the parent at pool construction so the
    parent's ship ledger can mirror this worker's LRU exactly.  The
    outbox is *this worker's own* queue (drained by a parent-side reader
    thread), so a sibling killed mid-flush can never wedge this worker's
    puts, and the final ``None`` releases the reader on clean exit.

    **Result batching:** extraction-only (apply) outcomes are tiny, and
    ingest-fed chunks often hold a single job — so after running a
    chunk of apply jobs, the worker opportunistically drains whatever
    further apply chunks of the same batch are *already queued* in its
    inbox (``get_nowait``, never waiting) and flushes their outcomes in
    one message.  Each flush carries the number of chunks it covers, so
    the parent's per-chunk dispatch accounting stays exact.  Learn
    outcomes (artifact payloads) and shared updates always flush the
    fold, preserving the swap-then-submit ordering of
    :meth:`WorkerPool.update_shared`.

    Every job passes a fault-injection boundary first
    (:func:`repro.faults.perturb_worker`, context
    ``w<id>:<kind>:<site>``) — a no-op unless a :class:`FaultPlan` was
    armed in the parent (inherited over fork) or via ``REPRO_FAULTS``.

    ``marker`` (a shared int, when the parent provides one) is stamped
    with each job's index just before it runs and reset to ``-1`` after
    every flush: if this process dies, the parent reads the marker to
    blame exactly the job that was executing — crash attribution that
    stays sharp even when coalescing folds many chunks into one flush.
    """
    import queue as queue_mod
    import signal

    # A CLI parent (``repro serve``) installs SIGTERM/SIGHUP handlers
    # that make sense only in the daemon process; forked workers must
    # not inherit them — pool teardown terminates workers with SIGTERM
    # and the inherited handler would turn that into traceback noise.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, signal.SIG_DFL)

    def run_job(job: _Job) -> object:
        if marker is not None:
            marker.value = job.index
        faults.perturb_worker(f"w{worker_id}:{job.kind}:{job.name}")
        return worker.run_job(job)

    no_message = object()  # "nothing held" (None is the stop sentinel)
    # A fresh metrics registry: the fork-inherited copy of the parent's
    # registry holds the *parent's* totals, and flushing those back as
    # a delta would double-count every parent-side event per worker.
    worker_metrics = telemetry.set_registry(None)
    worker = _WarmWorker(intern_bound)
    message = inbox.get()
    while message is not None:
        tag, batch, payload = message
        if tag == "shared":
            worker.set_shared(**payload)
            message = inbox.get()
            continue
        outcomes = [run_job(job) for job in payload]
        chunks = 1
        held = no_message
        coalescing = all(job.kind == "apply" for job in payload)
        while coalescing and len(outcomes) < _COALESCE_MAX_OUTCOMES:
            try:
                queued = inbox.get_nowait()
            except queue_mod.Empty:
                break
            if (
                queued is None
                or queued[0] != "jobs"
                or queued[1] != batch
                or not all(job.kind == "apply" for job in queued[2])
            ):
                held = queued  # handle after this flush
                break
            outcomes.extend(run_job(job) for job in queued[2])
            chunks += 1
        # Piggyback this worker's metrics delta on the flush it already
        # pays for — pool/worker internals reach the parent with zero
        # extra IPC.  drain() resets, so deltas merge additively
        # parent-side whatever the flush interleaving.
        outbox.put(
            (worker_id, batch, outcomes, chunks, worker_metrics.drain())
        )
        if marker is not None:
            marker.value = -1
        message = inbox.get() if held is no_message else held
    outbox.put(None)


def _forward_results(outbox, results) -> None:
    """Parent-side reader-thread loop: one worker's outbox -> the local
    result queue.

    Per-worker outboxes isolate crash damage: a worker killed while
    writing a result can only truncate *its own* pipe (wedging only its
    own reader thread, a daemon), while survivors keep flowing — with a
    single shared queue, a writer killed holding the shared lock would
    deadlock every other worker's flush and hang the whole stream.
    """
    while True:
        try:
            item = outbox.get()
        except Exception:  # pragma: no cover - teardown races
            break
        if item is None:
            break
        results.put(item)


# -- the pool ----------------------------------------------------------------


@dataclass(slots=True)
class SchedulerStats:
    """Parent-side dispatch accounting (mainly for tests and tuning).

    ``shipments`` counts, per site key, how many *distinct workers* the
    site's pages were shipped to — under pure shard affinity every site
    is shipped exactly once per pool lifetime, however many batches run
    (an intern-bound eviction re-ships and counts again).  ``fields``
    counts jobs per field tag (``inductor/method`` for learn batches,
    the artifact's method for apply), the per-field throughput view.
    """

    jobs: int = 0
    chunks: int = 0
    steals: int = 0
    shipments: Counter = field(default_factory=Counter)
    fields: Counter = field(default_factory=Counter)
    #: Payloads that crossed the wire as arena handles (shared-segment
    #: attach on the worker) instead of raw HTML.
    arena_ships: int = 0
    #: ``resize()`` calls that actually changed the live worker count
    #: (manual or autoscale).
    pool_resizes: int = 0
    #: Worker processes found dead by the reaper (crash, OOM kill...).
    worker_deaths: int = 0
    #: Replacement workers spawned by crash respawn (not resize).
    respawns: int = 0
    #: Jobs quarantined after exceeding the crash-retry cap.
    quarantined: int = 0


class WorkerPool:
    """A persistent, site-affine pool of warm extraction workers.

    Args:
        max_workers: worker count; ``None`` uses the CPU count.  A
            one-worker pool runs inline (no child processes) with the
            same warm-intern semantics.
        chunksize: jobs per dispatched chunk; ``None`` scales it to
            ``len(jobs) / (workers * 4)`` per batch.
        work_stealing: let idle workers take chunks from the largest
            backlog (shipping the stolen site on first touch).  Off,
            placement is pure shard affinity — slightly worse tail
            latency, strictly minimal shipping.
        intern_bound: max sites each worker keeps interned (LRU);
            ``None`` reads ``interned_site_bound`` from the engine
            config.
        share_sites: ship parsed sites as shared-memory arena handles
            (:mod:`repro.arena`): the parent packs each site's frozen
            indexes into one mmap-able segment and workers attach it
            read-only instead of re-parsing raw HTML.  Off, payloads
            use the lean ship-sources-and-refreeze path throughout.
        scale_max: autoscale ceiling for :meth:`resize`: when set, a
            streaming session that builds up more backlog chunks than
            the live workers' dispatch windows can absorb grows the
            pool one worker at a time, up to this many.  ``None``
            disables autoscaling (``resize`` stays available manually).
        crash_retry_limit: how many workers a single job may kill (it
            was the job executing at each death — attribution is by
            worker-stamped marker) before it is quarantined — a
            poison job is emitted as a structured failed
            :class:`~repro.api.batch.SiteOutcome` (``error`` starting
            with ``"quarantined"``) instead of killing workers forever.
        respawn_workers: replace crashed workers to keep the fleet at
            its configured width (with exponential backoff when deaths
            come in rapid bursts).  Off by default: batch callers
            usually prefer shrink-on-crash semantics, long-lived
            daemons (:class:`repro.service.ExtractionServer`) turn it
            on.

    Use as a context manager, or call :meth:`close`; a pool survives
    any number of ``learn`` / ``apply`` batches in between, and that
    persistence is the whole point — the second batch over a site fleet
    finds every derived cache already hot.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        chunksize: int | None = None,
        work_stealing: bool = True,
        intern_bound: int | None = None,
        share_sites: bool = True,
        scale_max: int | None = None,
        crash_retry_limit: int = 3,
        respawn_workers: bool = False,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1; got {max_workers}")
        if scale_max is not None and scale_max < 1:
            raise ValueError(f"scale_max must be >= 1; got {scale_max}")
        if crash_retry_limit < 0:
            raise ValueError(
                f"crash_retry_limit must be >= 0; got {crash_retry_limit}"
            )
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunksize = chunksize
        self.work_stealing = work_stealing
        self.share_sites = share_sites
        self.scale_max = scale_max
        self.crash_retry_limit = crash_retry_limit
        self.respawn_workers = respawn_workers
        # Frozen here (not read live) so the parent's ship ledger and
        # every worker's LRU agree on the bound for the pool's lifetime.
        self.intern_bound = (
            intern_bound
            if intern_bound is not None
            else get_config().interned_site_bound
        )
        self.stats = SchedulerStats()
        self._processes: list | None = None
        self._inboxes: list = []
        self._outboxes: list = []
        self._readers: list = []
        # Per worker: a shared int the child stamps with the index of
        # the job it is about to run (-1 when idle/between batches), so
        # a crash blames exactly the job that was executing — never the
        # innocent chunks queued behind it.
        self._markers: list = []
        self._results = None
        self._alive: list[bool] = []
        # Per worker: an LRU OrderedDict replaying exactly the insert /
        # touch / evict sequence that worker's intern table performs, so
        # "already shipped" really means "still interned over there".
        # (A site whose parse failed occupies a ledger slot the worker
        # never filled; that can only make the ledger evict earlier and
        # re-ship redundantly — never skip a payload the worker lacks.)
        self._shipped: list[OrderedDict] = []
        self._last_shared: tuple = ()
        self._inline: _WarmWorker | None = None
        # The live stream session, if any: jobs may still be added to it
        # and results are still streaming back.  One at a time — this is
        # the re-entrancy guard that used to be a bare `_active` bool.
        self._session: "_StreamSession | None" = None
        self._batch_seq = 0
        self._closed = False
        # Crash-respawn bookkeeping: the width the fleet should hold
        # (resize retargets it), recent death timestamps for rapid-loop
        # detection, and the exponential backoff gate.
        self._target_alive = self.max_workers
        self._death_times: deque[float] = deque(maxlen=16)
        self._respawn_delay = 0.0
        self._respawn_not_before = 0.0

    # -- public batch API ---------------------------------------------------

    def learn(
        self,
        extractor: Extractor,
        sites: Sequence[SiteLike],
        labels: Sequence[Labels] | None = None,
        annotator: Annotator | None = None,
    ) -> BatchResult:
        """Learn one artifact per site; ordered, per-site isolated."""
        outcomes = list(self.iter_learn_outcomes(extractor, sites, labels, annotator))
        return BatchResult(outcomes=sorted(outcomes, key=lambda o: o.index))

    def apply(
        self,
        artifacts: Sequence[WrapperArtifact],
        sites: Sequence[SiteLike],
        resolve_texts: bool = False,
    ) -> BatchResult:
        """Apply artifacts to sites (paired positionally); ordered.

        ``resolve_texts`` resolves extracted node texts worker-side
        (see :attr:`~repro.api.batch.SiteOutcome.texts`).
        """
        outcomes = list(
            self.iter_apply_outcomes(artifacts, sites, resolve_texts)
        )
        return BatchResult(outcomes=sorted(outcomes, key=lambda o: o.index))

    def iter_learn_outcomes(
        self,
        extractor: Extractor,
        sites: Sequence[SiteLike],
        labels: Sequence[Labels] | None = None,
        annotator: Annotator | None = None,
    ) -> Iterator[SiteOutcome]:
        """Stream learn outcomes in completion order (crawler-friendly)."""
        items = list(sites)
        if labels is not None and len(labels) != len(items):
            raise ValueError(
                f"labels ({len(labels)}) and sites ({len(items)}) must pair up"
            )
        field_tag = f"{extractor.config.inductor}/{extractor.config.method}"
        jobs, payloads = [], {}
        for index, item in enumerate(items):
            key = _site_key(item, index)
            payloads[key] = _payload_for(item)
            jobs.append(
                _Job(
                    index=index,
                    kind="learn",
                    name=site_name(item, index),
                    site_key=key,
                    field=field_tag,
                    labels=labels[index] if labels is not None else None,
                )
            )
        shared = {
            "extractor": extractor,
            "annotator": annotator if labels is None else None,
        }
        return self._execute(jobs, payloads, shared)

    def iter_apply_outcomes(
        self,
        artifacts: Sequence[WrapperArtifact],
        sites: Sequence[SiteLike],
        resolve_texts: bool = False,
    ) -> Iterator[SiteOutcome]:
        """Stream apply outcomes in completion order."""
        artifacts = list(artifacts)
        items = list(sites)
        if len(artifacts) != len(items):
            raise ValueError(
                f"artifacts ({len(artifacts)}) and sites ({len(items)}) "
                "must pair up"
            )
        jobs, payloads = [], {}
        for index, (artifact, item) in enumerate(zip(artifacts, items)):
            key = _site_key(item, index)
            payloads[key] = _payload_for(item)
            jobs.append(
                _Job(
                    index=index,
                    kind="apply",
                    name=site_name(item, index),
                    site_key=key,
                    field=artifact.method or "apply",
                    artifact=artifact,
                    resolve_texts=resolve_texts,
                )
            )
        return self._execute(jobs, payloads, shared=None)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn the worker processes now instead of on the first batch.

        Optional — batches start the pool lazily — but a service (or a
        benchmark) that wants steady-state dispatch latency from the
        first task can pay the spawn cost up front.  Returns ``self``.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self.max_workers > 1:
            self._ensure_started()
        return self

    def update_shared(
        self,
        extractor: Extractor | None = None,
        annotator: Annotator | None = None,
    ) -> bool:
        """Hot-swap the shared extractor/annotator on the *live* pool.

        The swap rides the normal per-worker inboxes, so it is ordered
        with dispatch: jobs the workers receive after the swap run under
        the new context, earlier ones under the old — no session
        restart, no cache loss (each worker re-points the incoming
        extractor at its long-lived engine, exactly as at batch open).
        This is the redeploy half of the wrapper lifecycle: a refit
        extractor produced by :mod:`repro.lifecycle.repair` reaches a
        streaming :class:`~repro.api.ingest.IngestSession` mid-crawl.

        Arguments left ``None`` keep the last-shipped value (swapping
        in a refit extractor must not silently wipe the annotator learn
        jobs rely on); clearing a slot is not expressible here — open a
        fresh batch/session for that.  Fingerprint-gated like batch
        opens (:meth:`_shared_changed`): re-shipping an unchanged
        extractor is a no-op.  Returns whether a re-ship actually
        happened — ``False`` also when nothing is live yet (no workers
        spawned, no inline worker), in which case the fingerprint is
        left untouched so the next session opening ships the new
        context itself.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._last_shared:
            if extractor is None:
                extractor = self._last_shared[0]
            if annotator is None:
                annotator = self._last_shared[1]
        shared = {"extractor": extractor, "annotator": annotator}
        if self.max_workers == 1:
            if self._inline is None:
                return False
            if not self._shared_changed(shared):
                return False
            if isinstance(self._session, _InlineSession):
                # Inline jobs run lazily at drain time; run what is
                # already queued under the OLD context now, so the swap
                # orders with dispatch exactly like the pooled inbox
                # FIFO does — same program, same artifacts, whatever
                # the worker count.  (Outcomes land in the session's
                # ready buffer for the consumer to drain as usual.)
                self._session.drive()
            self._inline.set_shared(**shared, adopt_engine=True)
            return True
        if self._processes is None:
            return False
        if not self._shared_changed(shared):
            return False
        seq = (
            self._session.seq
            if isinstance(self._session, _PooledSession)
            else self._batch_seq
        )
        for worker_id, inbox in enumerate(self._inboxes):
            if self._alive[worker_id]:
                inbox.put(("shared", seq, shared))
        return True

    def close(self, timeout: float = 5.0) -> None:
        """Shut the workers down; the pool cannot be reused afterwards.

        Deterministic even mid-stream: an active session is abandoned
        (its iterator raises on the next pull instead of hanging),
        workers drain naturally — reader threads empty their outboxes
        continuously, so a worker can never sit blocked on a full
        result pipe — and any worker still alive at ``timeout`` is
        terminated.  Safe from ``__del__`` / interpreter shutdown:
        queue feeder threads are cancelled so teardown never blocks on
        undelivered buffers.
        """
        if self._closed:
            return
        self._closed = True
        session, self._session = self._session, None
        if session is not None:
            session.abandon()
        if self._processes is None:
            return
        from time import monotonic

        for worker_id, inbox in enumerate(self._inboxes):
            if self._alive[worker_id]:
                try:
                    inbox.put(None)
                except Exception:  # pragma: no cover - teardown races
                    telemetry.counter(
                        metric_names.SCHEDULER_SWALLOWED_ERRORS
                    ).inc(where="close.inbox_stop")
        # Workers cannot block flushing results (their reader threads
        # drain continuously), so a worker that misses the deadline is
        # stuck in a job, not in IPC — terminate it.
        deadline = monotonic() + timeout
        for process in self._processes:
            process.join(timeout=max(0.0, deadline - monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1)
        for outbox in self._outboxes:
            try:
                outbox.put(None)  # release the reader thread
            except Exception:  # pragma: no cover - teardown races
                telemetry.counter(
                    metric_names.SCHEDULER_SWALLOWED_ERRORS
                ).inc(where="close.outbox_release")
        for reader in self._readers:
            reader.join(timeout=1)
        for channel in (*self._inboxes, *self._outboxes):
            try:
                channel.cancel_join_thread()
                channel.close()
            except Exception:  # pragma: no cover - teardown races
                telemetry.counter(
                    metric_names.SCHEDULER_SWALLOWED_ERRORS
                ).inc(where="close.channel")

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-time safety net
        try:
            self.close()
        except Exception:
            pass

    # -- execution ----------------------------------------------------------

    def _execute(
        self, jobs: list[_Job], payloads: dict[str, object], shared: dict | None
    ) -> Iterator[SiteOutcome]:
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._session is not None:
            raise RuntimeError(
                "a batch is already streaming on this pool; exhaust or close "
                "its iterator before starting another"
            )
        if not jobs:
            return iter(())
        return self._execute_stream(jobs, payloads, shared)

    def _execute_stream(
        self, jobs: list[_Job], payloads: dict[str, object], shared: dict | None
    ) -> Iterator[SiteOutcome]:
        # Generator body: _open_session re-checks re-entrancy at
        # iteration time — the check in _execute runs at call time,
        # before iteration starts.
        session = self._open_session(shared)
        try:
            session.add(jobs, payloads)
            while session.outstanding:
                outcome = session.next_outcome()
                if outcome is not None:
                    yield outcome
        finally:
            session.close()

    def _open_session(self, shared: dict | None) -> "_StreamSession":
        """Open the pool's single live stream session.

        The session is the incremental feeder behind every stream: the
        batch entry points add all their jobs up front and drain; an
        :class:`~repro.api.ingest.IngestSession` keeps the session open
        and interleaves ``add`` with result consumption.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._session is not None:
            raise RuntimeError(
                "a batch is already streaming on this pool; exhaust or close "
                "its iterator before starting another"
            )
        if self.max_workers == 1:
            session: _StreamSession = _InlineSession(self, shared)
        else:
            session = _PooledSession(self, shared)
        self._session = session
        return session

    def _shared_changed(self, shared: dict | None) -> bool:
        """Whether the batch's shared context must be (re)shipped.

        The fingerprint covers the extractor, its fitted models, its
        inductor and its config — so refitting (``Extractor.fit``
        replaces the model objects) or reconfiguring between batches on
        a persistent pool re-ships, not just swapping the extractor
        object.  Mutating a *model's* internals in place is not
        detected; pass a freshly fitted extractor for that.
        """
        if shared is None:
            return False
        extractor = shared.get("extractor")
        fingerprint = (
            extractor,
            shared.get("annotator"),
            None
            if extractor is None
            else (
                extractor.annotation_model,
                extractor.publication_model,
                extractor.content_model,
                extractor.inductor,
                tuple(sorted(extractor.config.to_dict().items())),
            ),
        )
        if fingerprint == self._last_shared:
            return False
        self._last_shared = fingerprint
        return True

    def _ensure_started(self) -> None:
        if self._processes is not None:
            return
        import queue as queue_mod

        if self.share_sites:
            # Housekeeping for the arena layer: segments whose owner
            # died without running its exit hooks (SIGKILL, hard crash)
            # would otherwise accumulate in /dev/shm forever.
            try:
                from repro.arena import reap_orphans

                reap_orphans()
            except Exception:  # pragma: no cover - best-effort sweep
                pass
        # Results land in an in-process queue fed by one reader thread
        # per worker (see _forward_results): workers never contend on a
        # shared cross-process lock, and never block on a full pipe —
        # the readers drain continuously, which is what makes close()
        # and crash recovery deterministic.
        self._results = queue_mod.Queue()
        self._processes = []
        for _ in range(self.max_workers):
            self._spawn_worker()

    def _spawn_worker(self) -> int:
        """Start one worker (plus its reader thread); returns its id.

        Worker ids are slot indexes into the parallel bookkeeping
        lists; slots of dead or retired workers stay in place, so a
        grown pool simply appends new slots.
        """
        import multiprocessing
        import threading

        context = multiprocessing.get_context()
        worker_id = len(self._processes)
        inbox = context.Queue()
        outbox = context.Queue()
        marker = context.Value("q", -1, lock=False)
        process = context.Process(
            target=_worker_main,
            args=(worker_id, inbox, outbox, self.intern_bound, marker),
            daemon=True,
            name=f"repro-scheduler-{worker_id}",
        )
        process.start()
        reader = threading.Thread(
            target=_forward_results,
            args=(outbox, self._results),
            daemon=True,
            name=f"repro-scheduler-reader-{worker_id}",
        )
        reader.start()
        self._inboxes.append(inbox)
        self._outboxes.append(outbox)
        self._readers.append(reader)
        self._markers.append(marker)
        self._processes.append(process)
        self._alive.append(True)
        self._shipped.append(OrderedDict())
        return worker_id

    # -- dynamic sizing -----------------------------------------------------

    @property
    def workers_alive(self) -> int:
        """Live worker count (the configured target before spawn)."""
        if self._processes is None:
            return self.max_workers
        return sum(1 for alive in self._alive if alive)

    def resize(self, workers: int) -> int:
        """Grow or shrink the live worker fleet to ``workers``.

        Works mid-stream: new workers receive the session's shared
        context, join the shard space immediately and (with work
        stealing) pull straight from existing backlogs — arena-shipped
        sites attach from shared memory, so a grown worker is warm
        after an mmap, not a re-parse.  Shrinking retires the
        highest-numbered workers cleanly: their queued chunks still
        complete, their unsent backlog moves to survivors, and the
        shard space keeps its width (retired slots remap exactly like
        crashed workers, minus the crash).

        Returns the resulting live worker count.  Before any process
        has spawned this just retargets ``max_workers``; a one-worker
        pool with an *open inline session* cannot change execution
        model mid-stream and raises ``RuntimeError``.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if workers < 1:
            raise ValueError(f"worker count must be >= 1; got {workers}")
        if self._processes is None:
            if self._session is not None and workers != self.max_workers:
                raise RuntimeError(
                    "cannot resize an inline session mid-stream; "
                    "resize before opening it"
                )
            self.max_workers = workers
            self._target_alive = workers
            if workers > 1:
                self._inline = None  # superseded by child processes
            return workers
        session = (
            self._session
            if isinstance(self._session, _PooledSession)
            else None
        )
        current = self.workers_alive
        self._target_alive = workers
        if workers > current:
            for _ in range(workers - current):
                worker_id = self._spawn_worker()
                if self._last_shared:
                    seq = session.seq if session is not None else self._batch_seq
                    self._inboxes[worker_id].put(
                        (
                            "shared",
                            seq,
                            {
                                "extractor": self._last_shared[0],
                                "annotator": self._last_shared[1],
                            },
                        )
                    )
                if session is not None:
                    session.add_worker_slot()
            self.max_workers = len(self._processes)
            self.stats.pool_resizes += 1
            if session is not None:
                for worker_id in range(self.max_workers):
                    session._feed(worker_id)
        elif workers < current:
            live = [w for w in range(len(self._alive)) if self._alive[w]]
            for worker_id in live[workers:]:
                if session is not None:
                    session.requeue_backlog(worker_id)
                self._retire_worker(worker_id)
            self.stats.pool_resizes += 1
            if session is not None:
                for worker_id in range(self.max_workers):
                    session._feed(worker_id)
        return self.workers_alive

    def _retire_worker(self, worker_id: int) -> None:
        """Stop one worker cleanly; its already-queued chunks still run.

        The stop sentinel rides the inbox FIFO, so the worker finishes
        (and flushes) everything dispatched before it, then exits; the
        parent completes those outcomes through the normal result path.
        """
        if not self._alive[worker_id]:
            return
        self._alive[worker_id] = False
        try:
            self._inboxes[worker_id].put(None)
        except Exception:  # pragma: no cover - teardown races
            telemetry.counter(
                metric_names.SCHEDULER_SWALLOWED_ERRORS
            ).inc(where="retire.inbox_stop")

    def _maybe_autoscale(self, session: "_PooledSession") -> None:
        """Grow under backlog pressure, one worker per check.

        Pressure means more queued chunks than the live dispatch
        windows can hold; each growth step re-feeds (and, with work
        stealing, rebalances), so the loop converges either on a
        drained backlog or on ``scale_max``.
        """
        if not self.scale_max:
            return
        while True:
            alive = self.workers_alive
            if alive >= self.scale_max:
                return
            queued = sum(len(chunks) for chunks in session.backlog)
            if queued <= alive * _DISPATCH_WINDOW:
                return
            self.resize(alive + 1)

    def _note_worker_death(self) -> None:
        """Record one worker death; arm respawn backoff on rapid loops.

        A burst of ``_RAPID_DEATH_COUNT`` deaths inside the detection
        window doubles the respawn delay (capped) — a poison job or a
        sick host should not spin the fork machinery at full speed.  A
        death after a quiet stretch resets the backoff.
        """
        import time

        now = time.monotonic()
        self.stats.worker_deaths += 1
        telemetry.counter(metric_names.SCHEDULER_WORKER_DEATHS).inc()
        if (
            self._death_times
            and now - self._death_times[-1] > _RAPID_DEATH_WINDOW_SECONDS
        ):
            self._respawn_delay = 0.0
        self._death_times.append(now)
        recent = sum(
            1
            for stamp in self._death_times
            if now - stamp <= _RAPID_DEATH_WINDOW_SECONDS
        )
        if recent >= _RAPID_DEATH_COUNT:
            self._respawn_delay = min(
                self._respawn_delay * 2 or 0.1, _RESPAWN_BACKOFF_MAX_SECONDS
            )
            self._respawn_not_before = now + self._respawn_delay

    def _maybe_respawn(self, session: "_PooledSession | None" = None) -> None:
        """Replace dead workers up to the configured fleet width.

        Mirrors the :meth:`resize` grow path: each replacement gets the
        current shared context, a session slot, and an immediate feed —
        arena-shipped sites make it warm after an mmap.  Gated by the
        rapid-death backoff; callers retry on every reap pass, so a
        deferred respawn happens as soon as the gate opens.
        """
        import time

        if not self.respawn_workers or self._closed or self._processes is None:
            return
        if time.monotonic() < self._respawn_not_before:
            return
        respawned = False
        while self.workers_alive < self._target_alive:
            worker_id = self._spawn_worker()
            self.stats.respawns += 1
            telemetry.counter(metric_names.SCHEDULER_RESPAWNS).inc()
            respawned = True
            if self._last_shared:
                seq = session.seq if session is not None else self._batch_seq
                self._inboxes[worker_id].put(
                    (
                        "shared",
                        seq,
                        {
                            "extractor": self._last_shared[0],
                            "annotator": self._last_shared[1],
                        },
                    )
                )
            if session is not None:
                session.add_worker_slot()
        if respawned:
            self.max_workers = len(self._processes)
            if session is not None:
                for worker_id in range(self.max_workers):
                    session._feed(worker_id)

    def _ship_payload(self, payload: object) -> object:
        """Wire form of a site payload for a child worker.

        With site sharing on, parsed sites ship as arena handles: the
        segment is packed once (memoized on the site) and each worker
        attaches the read-only mapping instead of re-parsing HTML.
        Raw ``(name, sources)`` pairs — and sites the arena cannot pack
        — fall back to the lean ship-sources path unchanged.
        """
        if not self.share_sites or not isinstance(payload, Site):
            return payload
        ship_start = time.monotonic()
        try:
            from repro.arena import ensure_arena

            binding = ensure_arena(payload)
        except Exception:  # pragma: no cover - defensive fallback
            return payload
        rule = faults.fire(faults.ARENA_UNLINK, context=getattr(payload, "name", ""))
        if rule is not None:
            try:
                os.unlink(binding.handle.path)
            except OSError:
                pass
        self.stats.arena_ships += 1
        telemetry.counter(metric_names.SCHEDULER_ARENA_SHIPS).inc()
        telemetry.histogram(metric_names.SCHEDULER_SHIP_S).observe(
            time.monotonic() - ship_start
        )
        return binding.handle

    def _assign_worker(self, site_key: str, alive: list[int]) -> int:
        """Shard target of a site: its hash worker, or — when that
        worker has died — a stable remap onto the survivors."""
        crc = zlib.crc32(site_key.encode("utf-8"))
        target = crc % self.max_workers
        if self._alive[target]:
            return target
        return alive[crc % len(alive)]

# -- stream sessions ---------------------------------------------------------


class _StreamSession:
    """A live handle on one stream of jobs through a pool.

    Jobs may be added *while results stream back*: the batch entry
    points add everything up front and drain, an
    :class:`~repro.api.ingest.IngestSession` interleaves ``add`` with
    consumption (crawler-fed ingestion).  Exactly one session is open
    per pool at a time (the pool's re-entrancy guard *is* the session
    handle).

    Interface: ``add(jobs, payloads)`` enqueues work;
    ``next_outcome()`` returns one completed outcome (or ``None`` on a
    quiet poll); ``outstanding`` counts added-but-unconsumed jobs;
    ``close()`` detaches from the pool; ``abandon()`` marks the session
    dead when the pool closes mid-stream.
    """

    __slots__ = ("pool", "ready", "abandoned")

    def __init__(self, pool: "WorkerPool") -> None:
        self.pool = pool
        #: Completed outcomes awaiting consumption.
        self.ready: deque[SiteOutcome] = deque()
        self.abandoned = False

    def _count(self, jobs: list[_Job]) -> None:
        self.pool.stats.jobs += len(jobs)
        telemetry.counter(metric_names.SCHEDULER_JOBS).inc(len(jobs))
        self.pool.stats.fields.update(job.field for job in jobs)

    @property
    def uncompleted(self) -> int:
        """Jobs the pool still has to finish (excludes the ready
        buffer) — the quantity backpressure bounds."""
        return 0

    def pump(self, timeout: float) -> None:
        """Wait up to ``timeout`` for completions to reach ready."""
        self._check_abandoned()

    def drive(self) -> None:
        """Run work the session must execute itself.

        Pooled sessions make progress in their workers (no-op here);
        the inline session runs its queued jobs now — this is what lets
        a producer loop emit outcomes between submissions on a
        one-worker pool instead of deferring everything to the final
        drain.
        """
        self._check_abandoned()

    def _check_abandoned(self) -> None:
        if self.abandoned:
            raise RuntimeError(
                "the WorkerPool was closed while this stream was active"
            )

    def abandon(self) -> None:
        self.abandoned = True

    def close(self) -> None:
        if self.pool._session is self:
            self.pool._session = None


class _InlineSession(_StreamSession):
    """One-worker session: jobs run synchronously in the caller's
    process on the pool's warm inline worker — same intern semantics,
    no child processes.

    Execution is *lazy*: ``add`` only queues, and each ``next_outcome``
    pull (or backpressure ``pump``) runs one job — so the streaming
    entry points really stream on a one-worker pool (a consumer that
    stops after the first outcome pays for one job, not the batch).
    """

    __slots__ = ("queue",)

    def __init__(self, pool: "WorkerPool", shared: dict | None) -> None:
        super().__init__(pool)
        if pool._inline is None:
            pool._inline = _WarmWorker(pool.intern_bound)
        if pool._shared_changed(shared):
            pool._inline.set_shared(**shared, adopt_engine=True)
        self.queue: deque[_Job] = deque()

    @property
    def outstanding(self) -> int:
        return len(self.queue) + len(self.ready)

    @property
    def uncompleted(self) -> int:
        return len(self.queue)

    def add(self, jobs: list[_Job], payloads: dict[str, object]) -> None:
        self._check_abandoned()
        self._count(jobs)
        for job in jobs:
            # Inline payloads are plain references (nothing crosses a
            # process boundary), so each job just carries its own; the
            # ship-once ledger check happens at run time against the
            # warm worker's intern table.
            job.payload = payloads[job.site_key]
            self.queue.append(job)

    def _run_one(self) -> None:
        job = self.queue.popleft()
        worker = self.pool._inline
        known = job.site_key in worker.sites or job.site_key in worker.failed
        if not known:
            self.pool.stats.shipments[job.site_key] += 1
        self.ready.append(worker.run_job(job))

    def pump(self, timeout: float) -> None:
        self._check_abandoned()
        if self.queue:
            self._run_one()

    def drive(self) -> None:
        self._check_abandoned()
        while self.queue:
            self._run_one()

    def next_outcome(self, timeout: float | None = None) -> SiteOutcome | None:
        self._check_abandoned()
        # A zero-timeout poll is a pure "what has completed" probe
        # (IngestSession.results()): it must not spend the caller's
        # time running a job.
        if not self.ready and self.queue and (timeout is None or timeout > 0):
            self._run_one()
        return self.ready.popleft() if self.ready else None


class _PooledSession(_StreamSession):
    """Multi-worker session: incremental site-affine dispatch.

    Each ``add`` call shards its jobs to the workers owning their
    sites, chunks them (chunk size scales to the add's batch, so
    one-site ingest submissions dispatch immediately) and feeds every
    worker up to the dispatch window; ``next_outcome`` polls the shared
    result queue, refeeds the acknowledging worker, and reaps crashed
    workers when the queue goes quiet.  Completion is tracked by job
    index, not by counting results: a worker that crashes *after*
    flushing its last result may have that chunk retried on a survivor,
    and index-keyed tracking makes the duplicate a no-op instead of a
    double count.
    """

    __slots__ = (
        "seq",
        "pending",
        "backlog",
        "sent",
        "inflight",
        "payloads",
        "payload_refs",
        "keys",
        "crashes",
    )

    def __init__(self, pool: "WorkerPool", shared: dict | None) -> None:
        super().__init__(pool)
        pool._ensure_started()
        pool._batch_seq += 1
        self.seq = pool._batch_seq
        if pool._shared_changed(shared):
            for worker_id, inbox in enumerate(pool._inboxes):
                if pool._alive[worker_id]:
                    inbox.put(("shared", self.seq, shared))
        workers = pool.max_workers
        #: Indices of jobs added but not yet completed.
        self.pending: set[int] = set()
        self.backlog: list[deque[list[_Job]]] = [deque() for _ in range(workers)]
        self.sent: list[deque[list[_Job]]] = [deque() for _ in range(workers)]
        self.inflight = [0] * workers
        #: Site payloads for jobs still pending — needed for steals and
        #: crash retries, freed as soon as a site's last job completes
        #: (so a long ingest session does not accumulate every page it
        #: ever saw).
        self.payloads: dict[str, object] = {}
        self.payload_refs: Counter = Counter()
        #: Job index -> site key, for payload release on completion.
        self.keys: dict[int, str] = {}
        #: Job index -> how many worker deaths the job was dispatched
        #: into (the poison-task quarantine counter).
        self.crashes: Counter = Counter()

    @property
    def outstanding(self) -> int:
        return len(self.pending) + len(self.ready)

    @property
    def uncompleted(self) -> int:
        return len(self.pending)

    def pump(self, timeout: float) -> None:
        self._check_abandoned()
        if self.pending:
            self._pump(timeout)

    def add(self, jobs: list[_Job], payloads: dict[str, object]) -> None:
        self._check_abandoned()
        self._count(jobs)
        pool = self.pool
        alive = [w for w in range(pool.max_workers) if pool._alive[w]]
        if not alive:
            # Nothing can be in transit when *every* worker is gone, so
            # an eager reap here is safe — and with respawn enabled it
            # rebuilds the fleet instead of refusing the work.
            for outcome in self._reap_dead_workers():
                self._complete(outcome)
            alive = [w for w in range(pool.max_workers) if pool._alive[w]]
            if not alive and pool.respawn_workers and not pool._closed:
                # The whole fleet died inside the rapid-death backoff
                # window: wait the gate out and rebuild rather than
                # refusing work the pool is still able to do.  No new
                # deaths can land while zero workers run, so the gate
                # cannot recede.
                import time

                delay = pool._respawn_not_before - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                pool._maybe_respawn(self)
                alive = [
                    w for w in range(pool.max_workers) if pool._alive[w]
                ]
            if not alive:
                raise RuntimeError("all pool workers have died")
        self.payloads.update(payloads)
        for job in jobs:
            self.pending.add(job.index)
            self.payload_refs[job.site_key] += 1
            self.keys[job.index] = job.site_key
        chunksize = pool.chunksize or max(
            1, -(-len(jobs) // (pool.max_workers * _CHUNKS_PER_WORKER))
        )
        # Shard assignment: site-major, input order preserved per
        # worker; sites sharded to dead workers remap to survivors.
        per_worker: list[list[_Job]] = [[] for _ in range(pool.max_workers)]
        for job in jobs:
            per_worker[pool._assign_worker(job.site_key, alive)].append(job)
        for worker_id, assigned in enumerate(per_worker):
            for start in range(0, len(assigned), chunksize):
                self.backlog[worker_id].append(assigned[start : start + chunksize])
        for worker_id in range(pool.max_workers):
            self._feed(worker_id)
        pool._maybe_autoscale(self)

    def add_worker_slot(self) -> None:
        """Extend per-worker bookkeeping for a freshly grown worker."""
        self.backlog.append(deque())
        self.sent.append(deque())
        self.inflight.append(0)

    def requeue_backlog(self, worker_id: int) -> None:
        """Move a retiring worker's unsent chunks onto live peers.

        Only the *unsent* backlog moves: chunks already in the retiree's
        inbox run to completion before its stop sentinel (FIFO), so they
        are never retried and never duplicated.
        """
        pool = self.pool
        survivors = [
            w
            for w in range(pool.max_workers)
            if pool._alive[w] and w != worker_id
        ]
        if not survivors:  # pragma: no cover - resize() keeps >= 1 alive
            return
        rotation = itertools.cycle(survivors)
        while self.backlog[worker_id]:
            self.backlog[next(rotation)].append(
                self.backlog[worker_id].popleft()
            )

    def next_outcome(
        self, timeout: float = _RESULT_POLL_SECONDS
    ) -> SiteOutcome | None:
        """One completed outcome, or ``None`` after a quiet poll."""
        self._check_abandoned()
        if self.ready:
            return self.ready.popleft()
        if not self.pending:
            return None
        self._pump(timeout)
        return self.ready.popleft() if self.ready else None

    def _pump(self, timeout: float) -> None:
        """Poll the result queue once; buffer completions into ready."""
        import queue as queue_mod

        try:
            worker_id, result_seq, outcomes, chunks, deltas = (
                self.pool._results.get(timeout=timeout)
            )
        except queue_mod.Empty:
            # Reap only after a real quiet wait: zero-timeout polls
            # (IngestSession.results()) must not treat a crashed
            # worker's still-in-transit results as never completed.
            if timeout > 0:
                for outcome in self._reap_dead_workers():
                    self._complete(outcome)
            return
        # Worker metric deltas merge unconditionally: the series are
        # process-global, so even a stale flush's work really happened.
        telemetry.get_registry().merge(deltas)
        if result_seq != self.seq:
            return  # stale result of an abandoned stream
        if self.pool._alive[worker_id]:
            # One flush may cover several coalesced chunks.
            self.inflight[worker_id] = max(0, self.inflight[worker_id] - chunks)
            for _ in range(min(chunks, len(self.sent[worker_id]))):
                self.sent[worker_id].popleft()
            self._feed(worker_id)
        # A result landing *after* its worker was reaped (it was in
        # transit through the reader thread) still completes outcomes —
        # but the reap already zeroed that worker's bookkeeping, so no
        # inflight/sent accounting remains to unwind.
        for outcome in outcomes:
            self._complete(outcome)

    def _complete(self, outcome: SiteOutcome) -> None:
        if outcome.index not in self.pending:  # retried chunks may dupe
            return
        self.pending.discard(outcome.index)
        self.crashes.pop(outcome.index, None)
        self._release_payload(self.keys.pop(outcome.index))
        self.ready.append(outcome)

    def _release_payload(self, site_key: str) -> None:
        count = self.payload_refs[site_key] - 1
        if count <= 0:
            del self.payload_refs[site_key]
            self.payloads.pop(site_key, None)
        else:
            self.payload_refs[site_key] = count

    def _feed(self, worker_id: int) -> None:
        pool = self.pool
        if not pool._alive[worker_id]:
            return
        while self.inflight[worker_id] < _DISPATCH_WINDOW:
            chunk = None
            if self.backlog[worker_id]:
                chunk = self.backlog[worker_id].popleft()
            elif pool.work_stealing:
                victim = max(
                    (v for v in range(pool.max_workers) if self.backlog[v]),
                    key=lambda v: len(self.backlog[v]),
                    default=None,
                )
                if victim is not None:
                    # Steal from the tail: the victim keeps the chunks
                    # whose sites it has already warmed up.
                    chunk = self.backlog[victim].pop()
                    pool.stats.steals += 1
            if chunk is None:
                return
            sent_chunk = self._send_chunk(worker_id, chunk)
            if sent_chunk is None:
                continue  # chunk fully completed by a late duplicate
            self.inflight[worker_id] += 1
            self.sent[worker_id].append(sent_chunk)

    def _send_chunk(
        self, worker_id: int, chunk: list[_Job]
    ) -> list[_Job] | None:
        pool = self.pool
        # A reap-requeued chunk may race a late duplicate result that
        # already completed its jobs (and freed their payloads): only
        # still-pending jobs are sent — a pending job always has a live
        # payload ref — and a fully-completed chunk is dropped.
        chunk = [job for job in chunk if job.index in self.pending]
        if not chunk:
            return None
        ledger = pool._shipped[worker_id]
        for job in chunk:
            if job.site_key in ledger:
                ledger.move_to_end(job.site_key)
                job.payload = None
            else:
                job.payload = pool._ship_payload(self.payloads[job.site_key])
                ledger[job.site_key] = True
                pool.stats.shipments[job.site_key] += 1
                while len(ledger) > pool.intern_bound:
                    ledger.popitem(last=False)
        pool.stats.chunks += 1
        telemetry.counter(metric_names.SCHEDULER_CHUNKS).inc()
        pool._inboxes[worker_id].put(("jobs", self.seq, chunk))
        return chunk

    def _reap_dead_workers(self) -> list[SiteOutcome]:
        """Requeue a crashed worker's jobs on survivors (or respawned
        replacements); quarantine poison jobs; fail only when nobody is
        left.

        Jobs are pure (learning / extraction, no side effects) and the
        reap only runs once the result queue has gone quiet, so chunks
        still unacknowledged in ``sent`` were never completed — they are
        retried, not failed.  Crash *attribution* is exact: each worker
        stamps a shared marker with the index of the job it is running,
        so only the job executing at death gets its crash counter
        bumped — chunk-mates and queued-behind chunks requeue freely,
        like unsent backlog.  Past ``pool.crash_retry_limit`` the
        culprit is quarantined as a structured failed outcome instead
        of being retried — one poison site must not grind the fleet
        down forever.
        """
        pool = self.pool
        failed: list[SiteOutcome] = []
        dispatched: deque[list[_Job]] = deque()
        unsent: deque[list[_Job]] = deque()
        culprits: set[int] = set()
        last_death = ""
        for worker_id, process in enumerate(pool._processes):
            if not pool._alive[worker_id] or process.is_alive():
                continue
            pool._alive[worker_id] = False
            pool._note_worker_death()
            last_death = (
                f"worker {worker_id} died (exit code {process.exitcode})"
            )
            running = pool._markers[worker_id].value
            if running >= 0:
                culprits.add(running)
            self.inflight[worker_id] = 0
            while self.sent[worker_id]:
                dispatched.append(self.sent[worker_id].popleft())
            unsent.extend(self.backlog[worker_id])
            self.backlog[worker_id] = deque()
        # Respawn (when enabled and past any backoff gate) before
        # requeueing, so orphans can land on the replacements and a
        # total-loss storm recovers instead of failing every job.
        pool._maybe_respawn(self)
        if not dispatched and not unsent:
            return failed
        retry: deque[list[_Job]] = deque()
        for chunk in dispatched:
            keep: list[_Job] = []
            for job in chunk:
                if job.index not in self.pending:
                    continue  # completed by an in-transit flush
                if job.index in culprits:
                    self.crashes[job.index] += 1
                if self.crashes[job.index] > pool.crash_retry_limit:
                    pool.stats.quarantined += 1
                    telemetry.counter(
                        metric_names.SCHEDULER_QUARANTINED
                    ).inc()
                    failed.append(
                        SiteOutcome(
                            index=job.index,
                            site=job.name,
                            ok=False,
                            artifact=job.artifact,
                            error=(
                                f"quarantined: job for site {job.name!r} "
                                f"killed {self.crashes[job.index]} workers "
                                f"(crash_retry_limit="
                                f"{pool.crash_retry_limit}); last: "
                                f"{last_death}"
                            ),
                        )
                    )
                else:
                    keep.append(job)
            if keep:
                retry.append(keep)
        retry.extend(unsent)
        survivors = [v for v in range(pool.max_workers) if pool._alive[v]]
        if survivors:
            rotation = itertools.cycle(survivors)
            while retry:
                self.backlog[next(rotation)].append(retry.popleft())
            for survivor in survivors:
                self._feed(survivor)
        else:  # pragma: no cover - total pool loss
            while retry:
                for job in retry.popleft():
                    failed.append(
                        SiteOutcome(
                            index=job.index,
                            site=job.name,
                            ok=False,
                            artifact=job.artifact,
                            error=(
                                f"{last_death} and no worker survives "
                                "to retry"
                            ),
                        )
                    )
        return failed

    def close(self) -> None:
        """Detach from the pool, draining leftovers of an abandoned
        stream so the next session starts from a clean queue."""
        import queue as queue_mod

        super().close()
        if self.abandoned or self.pool._closed:
            return  # pool teardown already owns the queues
        remaining = sum(self.inflight)
        while remaining > 0:
            try:
                message = self.pool._results.get(timeout=_RESULT_POLL_SECONDS)
            except queue_mod.Empty:  # pragma: no cover - dead worker
                break
            # A coalesced flush acknowledges several in-flight chunks.
            remaining -= message[3]
            # Abandoned outcomes are dropped, but the worker's metric
            # deltas describe work that really ran — keep them.
            telemetry.get_registry().merge(message[4])


# -- module-level streaming helpers -----------------------------------------


def learn_stream(
    extractor: Extractor,
    sites: Sequence[SiteLike],
    labels: Sequence[Labels] | None = None,
    annotator: Annotator | None = None,
    pool: WorkerPool | None = None,
) -> Iterator[SiteOutcome]:
    """Stream learn outcomes as they complete.

    With ``pool=None`` an ephemeral inline (one-worker) pool is used and
    closed when the stream ends — handy for crawler-fed pipelines that
    want results site by site without managing a pool.
    """
    if pool is not None:
        yield from pool.iter_learn_outcomes(extractor, sites, labels, annotator)
        return
    with WorkerPool(max_workers=1) as owned:
        yield from owned.iter_learn_outcomes(extractor, sites, labels, annotator)


def apply_stream(
    artifacts: Sequence[WrapperArtifact],
    sites: Sequence[SiteLike],
    pool: WorkerPool | None = None,
) -> Iterator[SiteOutcome]:
    """Stream apply outcomes as they complete (see :func:`learn_stream`)."""
    if pool is not None:
        yield from pool.iter_apply_outcomes(artifacts, sites)
        return
    with WorkerPool(max_workers=1) as owned:
        yield from owned.iter_apply_outcomes(artifacts, sites)
