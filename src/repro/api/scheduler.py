"""Site-affine batch scheduling: persistent warm workers, sharded
dispatch, streaming outcomes.

The generic executors in :mod:`repro.api.batch` treat every (site,
field) task as an island: a throwaway pool is built per call, each task
re-pickles everything it touches, and every worker rebuilds page
indexes, posting tries and span tables from scratch.  That throws away
exactly the state the paper's economics depend on reusing — wrappers
are learned once and *applied at scale*, so per-site derived structures
dominate the steady-state cost.

:class:`WorkerPool` keeps that state warm:

- **persistent workers** — the pool outlives a single batch call;
  each worker holds one long-lived
  :class:`~repro.engine.EvaluationEngine` plus an LRU-bounded intern
  table of :class:`~repro.site.Site` documents, so feature indexes,
  posting tries, span tables and extraction memos built for a site
  survive between tasks *and between batches*;
- **ship-once payloads** — the shared :class:`~repro.api.extractor.Extractor`
  and annotator cross the process boundary once per worker (and again
  only when they change), and a site's pages are shipped only to the
  worker that owns its shard, once — later tasks reference the interned
  copy by key;
- **site-affine sharded dispatch** — tasks hash to workers by *site*
  (the field tag rides along for per-field accounting in
  :class:`SchedulerStats`), so everything touching one site — every
  field learned on it, every artifact applied to it — lands on the
  worker already holding its derived caches, with work-stealing from
  the largest backlog when a worker runs dry (the stolen site is
  shipped to the thief on first touch);
- **chunked submission, streaming results** — tasks travel in chunks
  sized to the batch, and outcomes stream back as they complete:
  ``iter_learn_outcomes`` / ``iter_apply_outcomes`` (and the
  module-level :func:`learn_stream` / :func:`apply_stream`) yield
  :class:`~repro.api.batch.SiteOutcome` records in completion order,
  while :meth:`WorkerPool.learn` / :meth:`WorkerPool.apply` return the
  ordered :class:`~repro.api.batch.BatchResult`.

A one-worker pool runs inline in the calling process — no child
processes, same warm-intern semantics — which is also the streaming
fallback when no pool is supplied.  ``repro.api.batch.learn_many`` and
``apply_many`` route through a :class:`WorkerPool` automatically when
one is passed as the executor (shorthand: ``executor="pool"``).

Per-site error isolation matches the batch layer: a site whose pages
fail to parse (or whose learning blows up) is a failed outcome, and
later tasks for that site fail with the same recorded error instead of
crashing the worker.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import zlib
from collections import Counter, OrderedDict, deque
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.annotators.base import Annotator
from repro.api.artifacts import WrapperArtifact
from repro.api.batch import (
    BatchResult,
    SiteLike,
    SiteOutcome,
    _resolve_site,
    site_name,
)
from repro.api.extractor import Extractor
from repro.datasets.sitegen import GeneratedSite
from repro.engine import EvaluationEngine
from repro.engine.config import get_config
from repro.site import Site
from repro.wrappers.base import Labels

__all__ = [
    "SchedulerStats",
    "WorkerPool",
    "apply_stream",
    "learn_stream",
]

#: Chunks each worker keeps in flight; >1 overlaps compute with IPC.
_DISPATCH_WINDOW = 2

#: Chunks per worker a full batch is split into (the chunksize scale).
_CHUNKS_PER_WORKER = 4

#: Seconds to wait for one result before re-checking worker health.
_RESULT_POLL_SECONDS = 1.0


# -- jobs --------------------------------------------------------------------


@dataclass(slots=True)
class _Job:
    """One unit of scheduled work, addressed by its site shard."""

    index: int
    kind: str  # "learn" | "apply"
    name: str
    site_key: str
    field: str  # what is being extracted; stats accounting, not routing
    payload: object | None = None  # SiteLike; attached at dispatch time
    labels: Labels | None = None
    artifact: WrapperArtifact | None = None


def _site_key(item: SiteLike, index: int) -> str:
    """Stable intern key of a site input: name plus a content digest.

    The digest covers the page sources, so two batches naming different
    content the same way never alias one interned site; inputs without
    readable sources get a per-position key (shipped every time, never
    aliased).
    """
    try:
        if isinstance(item, GeneratedSite):
            item = item.site
        if isinstance(item, Site):
            name, sources = item.name, (page.source for page in item.pages)
        elif isinstance(item, tuple) and len(item) == 2:
            name, sources = str(item[0]), (str(page) for page in item[1])
        else:
            return f"unkeyed-{index}"
        digest = hashlib.blake2b(digest_size=10)
        for source in sources:
            digest.update(source.encode("utf-8", "replace"))
            digest.update(b"\x00")
        return f"{name}\x00{digest.hexdigest()}"
    except Exception:
        return f"unkeyed-{index}"


def _payload_for(item: SiteLike) -> object:
    """What actually crosses the wire for a site input.

    Generated sites ship only their parsed :class:`Site` (gold lists
    and metadata stay home); raw pairs ship raw so parse failures stay
    per-site failures inside the worker.
    """
    if isinstance(item, GeneratedSite):
        return item.site
    return item


class _SiteUnavailable(Exception):
    """A job referenced a site whose earlier resolution failed."""


# -- the warm worker (used inline and inside child processes) ----------------


class _WarmWorker:
    """Per-worker warm state: interned sites + one evaluation engine.

    The engine outlives every shipped extractor: when a new shared
    extractor arrives it is re-pointed at the worker's engine, so site
    memos built by previous batches keep serving.
    """

    def __init__(self, intern_bound: int | None = None) -> None:
        self.engine = EvaluationEngine()
        self.extractor: Extractor | None = None
        self.annotator: Annotator | None = None
        self.intern_bound = intern_bound
        self.sites: OrderedDict[str, Site] = OrderedDict()
        self.failed: dict[str, str] = {}
        self.sites_resolved = 0  # how many payloads this worker built

    def set_shared(
        self,
        extractor: Extractor | None = None,
        annotator: Annotator | None = None,
        adopt_engine: bool = False,
    ) -> None:
        """Install the batch's shared context.

        In a child process the shipped extractor is this worker's
        private copy, so it is re-pointed at the worker's long-lived
        engine (the engine outlives every shipped extractor).  Inline —
        where the extractor is the *caller's* object and must not be
        mutated — the worker adopts the extractor's engine instead
        (``adopt_engine=True``).
        """
        self.extractor = extractor
        self.annotator = annotator
        if extractor is not None:
            if adopt_engine:
                self.engine = extractor.engine
            else:
                extractor.engine = self.engine

    def _site_for(self, job: _Job) -> Site:
        key = job.site_key
        site = self.sites.get(key)
        if site is not None:
            self.sites.move_to_end(key)
            return site
        if key in self.failed:
            raise _SiteUnavailable(self.failed[key])
        if job.payload is None:
            raise _SiteUnavailable(
                f"site {job.name!r} was never shipped to this worker"
            )
        try:
            site = _resolve_site(job.payload)
        except Exception as error:
            message = f"{type(error).__name__}: {error}"
            self.failed[key] = message
            raise _SiteUnavailable(message) from error
        self.sites[key] = site
        self.sites_resolved += 1
        bound = (
            self.intern_bound
            if self.intern_bound is not None
            else get_config().interned_site_bound
        )
        while len(self.sites) > bound:
            self.sites.popitem(last=False)
        return site

    def run_job(self, job: _Job) -> SiteOutcome:
        try:
            site = self._site_for(job)
            if job.kind == "apply":
                if job.artifact is None:
                    raise ValueError("apply job carries no artifact")
                extracted = job.artifact.apply(site, engine=self.engine)
                return SiteOutcome(
                    index=job.index,
                    site=job.name,
                    ok=True,
                    artifact=job.artifact,
                    extracted=extracted,
                )
            labels = job.labels
            if labels is None:
                if self.annotator is None:
                    raise ValueError("no labels and no annotator for this site")
                labels = self.annotator.annotate(site)
            if self.extractor is None:
                raise ValueError("no extractor was shipped for this batch")
            artifact = self.extractor.learn(site, labels, site_name=job.name)
            return SiteOutcome(
                index=job.index, site=job.name, ok=True, artifact=artifact
            )
        except _SiteUnavailable as error:
            return SiteOutcome(
                index=job.index,
                site=job.name,
                ok=False,
                artifact=job.artifact,
                error=str(error),
            )
        except Exception as error:
            return SiteOutcome(
                index=job.index,
                site=job.name,
                ok=False,
                artifact=job.artifact,
                error=f"{type(error).__name__}: {error}",
            )


def _worker_main(worker_id: int, inbox, outbox, intern_bound: int) -> None:
    """Child-process loop: apply shared updates, run job chunks.

    ``intern_bound`` is frozen by the parent at pool construction so the
    parent's ship ledger can mirror this worker's LRU exactly.
    """
    worker = _WarmWorker(intern_bound)
    while True:
        message = inbox.get()
        if message is None:
            break
        tag, batch, payload = message
        if tag == "shared":
            worker.set_shared(**payload)
        else:
            outbox.put(
                (worker_id, batch, [worker.run_job(job) for job in payload])
            )


# -- the pool ----------------------------------------------------------------


@dataclass(slots=True)
class SchedulerStats:
    """Parent-side dispatch accounting (mainly for tests and tuning).

    ``shipments`` counts, per site key, how many *distinct workers* the
    site's pages were shipped to — under pure shard affinity every site
    is shipped exactly once per pool lifetime, however many batches run
    (an intern-bound eviction re-ships and counts again).  ``fields``
    counts jobs per field tag (``inductor/method`` for learn batches,
    the artifact's method for apply), the per-field throughput view.
    """

    jobs: int = 0
    chunks: int = 0
    steals: int = 0
    shipments: Counter = field(default_factory=Counter)
    fields: Counter = field(default_factory=Counter)


class WorkerPool:
    """A persistent, site-affine pool of warm extraction workers.

    Args:
        max_workers: worker count; ``None`` uses the CPU count.  A
            one-worker pool runs inline (no child processes) with the
            same warm-intern semantics.
        chunksize: jobs per dispatched chunk; ``None`` scales it to
            ``len(jobs) / (workers * 4)`` per batch.
        work_stealing: let idle workers take chunks from the largest
            backlog (shipping the stolen site on first touch).  Off,
            placement is pure shard affinity — slightly worse tail
            latency, strictly minimal shipping.
        intern_bound: max sites each worker keeps interned (LRU);
            ``None`` reads ``interned_site_bound`` from the engine
            config.

    Use as a context manager, or call :meth:`close`; a pool survives
    any number of ``learn`` / ``apply`` batches in between, and that
    persistence is the whole point — the second batch over a site fleet
    finds every derived cache already hot.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        chunksize: int | None = None,
        work_stealing: bool = True,
        intern_bound: int | None = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1; got {max_workers}")
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunksize = chunksize
        self.work_stealing = work_stealing
        # Frozen here (not read live) so the parent's ship ledger and
        # every worker's LRU agree on the bound for the pool's lifetime.
        self.intern_bound = (
            intern_bound
            if intern_bound is not None
            else get_config().interned_site_bound
        )
        self.stats = SchedulerStats()
        self._processes: list | None = None
        self._inboxes: list = []
        self._results = None
        self._alive: list[bool] = []
        # Per worker: an LRU OrderedDict replaying exactly the insert /
        # touch / evict sequence that worker's intern table performs, so
        # "already shipped" really means "still interned over there".
        # (A site whose parse failed occupies a ledger slot the worker
        # never filled; that can only make the ledger evict earlier and
        # re-ship redundantly — never skip a payload the worker lacks.)
        self._shipped: list[OrderedDict] = []
        self._last_shared: tuple = ()
        self._inline: _WarmWorker | None = None
        self._active = False
        self._batch_seq = 0
        self._closed = False

    # -- public batch API ---------------------------------------------------

    def learn(
        self,
        extractor: Extractor,
        sites: Sequence[SiteLike],
        labels: Sequence[Labels] | None = None,
        annotator: Annotator | None = None,
    ) -> BatchResult:
        """Learn one artifact per site; ordered, per-site isolated."""
        outcomes = list(self.iter_learn_outcomes(extractor, sites, labels, annotator))
        return BatchResult(outcomes=sorted(outcomes, key=lambda o: o.index))

    def apply(
        self,
        artifacts: Sequence[WrapperArtifact],
        sites: Sequence[SiteLike],
    ) -> BatchResult:
        """Apply artifacts to sites (paired positionally); ordered."""
        outcomes = list(self.iter_apply_outcomes(artifacts, sites))
        return BatchResult(outcomes=sorted(outcomes, key=lambda o: o.index))

    def iter_learn_outcomes(
        self,
        extractor: Extractor,
        sites: Sequence[SiteLike],
        labels: Sequence[Labels] | None = None,
        annotator: Annotator | None = None,
    ) -> Iterator[SiteOutcome]:
        """Stream learn outcomes in completion order (crawler-friendly)."""
        items = list(sites)
        if labels is not None and len(labels) != len(items):
            raise ValueError(
                f"labels ({len(labels)}) and sites ({len(items)}) must pair up"
            )
        field_tag = f"{extractor.config.inductor}/{extractor.config.method}"
        jobs, payloads = [], {}
        for index, item in enumerate(items):
            key = _site_key(item, index)
            payloads[key] = _payload_for(item)
            jobs.append(
                _Job(
                    index=index,
                    kind="learn",
                    name=site_name(item, index),
                    site_key=key,
                    field=field_tag,
                    labels=labels[index] if labels is not None else None,
                )
            )
        shared = {
            "extractor": extractor,
            "annotator": annotator if labels is None else None,
        }
        return self._execute(jobs, payloads, shared)

    def iter_apply_outcomes(
        self,
        artifacts: Sequence[WrapperArtifact],
        sites: Sequence[SiteLike],
    ) -> Iterator[SiteOutcome]:
        """Stream apply outcomes in completion order."""
        artifacts = list(artifacts)
        items = list(sites)
        if len(artifacts) != len(items):
            raise ValueError(
                f"artifacts ({len(artifacts)}) and sites ({len(items)}) "
                "must pair up"
            )
        jobs, payloads = [], {}
        for index, (artifact, item) in enumerate(zip(artifacts, items)):
            key = _site_key(item, index)
            payloads[key] = _payload_for(item)
            jobs.append(
                _Job(
                    index=index,
                    kind="apply",
                    name=site_name(item, index),
                    site_key=key,
                    field=artifact.method or "apply",
                    artifact=artifact,
                )
            )
        return self._execute(jobs, payloads, shared=None)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "WorkerPool":
        """Spawn the worker processes now instead of on the first batch.

        Optional — batches start the pool lazily — but a service (or a
        benchmark) that wants steady-state dispatch latency from the
        first task can pay the spawn cost up front.  Returns ``self``.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self.max_workers > 1:
            self._ensure_started()
        return self

    def close(self) -> None:
        """Shut the workers down; the pool cannot be reused afterwards."""
        if self._closed:
            return
        self._closed = True
        if self._processes is None:
            return
        for worker_id, inbox in enumerate(self._inboxes):
            if self._alive[worker_id]:
                try:
                    inbox.put(None)
                except Exception:  # pragma: no cover - teardown races
                    pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC-time safety net
        try:
            self.close()
        except Exception:
            pass

    # -- execution ----------------------------------------------------------

    def _execute(
        self, jobs: list[_Job], payloads: dict[str, object], shared: dict | None
    ) -> Iterator[SiteOutcome]:
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._active:
            raise RuntimeError(
                "a batch is already streaming on this pool; exhaust or close "
                "its iterator before starting another"
            )
        self.stats.jobs += len(jobs)
        self.stats.fields.update(job.field for job in jobs)
        if not jobs:
            return iter(())
        if self.max_workers == 1:
            return self._execute_inline(jobs, payloads, shared)
        return self._execute_pooled(jobs, payloads, shared)

    def _shared_changed(self, shared: dict | None) -> bool:
        """Whether the batch's shared context must be (re)shipped.

        The fingerprint covers the extractor, its fitted models, its
        inductor and its config — so refitting (``Extractor.fit``
        replaces the model objects) or reconfiguring between batches on
        a persistent pool re-ships, not just swapping the extractor
        object.  Mutating a *model's* internals in place is not
        detected; pass a freshly fitted extractor for that.
        """
        if shared is None:
            return False
        extractor = shared.get("extractor")
        fingerprint = (
            extractor,
            shared.get("annotator"),
            None
            if extractor is None
            else (
                extractor.annotation_model,
                extractor.publication_model,
                extractor.content_model,
                extractor.inductor,
                tuple(sorted(extractor.config.to_dict().items())),
            ),
        )
        if fingerprint == self._last_shared:
            return False
        self._last_shared = fingerprint
        return True

    def _execute_inline(
        self, jobs: list[_Job], payloads: dict[str, object], shared: dict | None
    ) -> Iterator[SiteOutcome]:
        # Generator body: this is the authoritative re-entrancy check —
        # the one in _execute runs at call time, before iteration starts.
        if self._active:
            raise RuntimeError(
                "a batch is already streaming on this pool; exhaust or close "
                "its iterator before starting another"
            )
        if self._inline is None:
            self._inline = _WarmWorker(self.intern_bound)
        worker = self._inline
        if self._shared_changed(shared):
            worker.set_shared(**shared, adopt_engine=True)
        self._active = True
        try:
            for job in jobs:
                known = (
                    job.site_key in worker.sites or job.site_key in worker.failed
                )
                if not known:
                    job.payload = payloads[job.site_key]
                    self.stats.shipments[job.site_key] += 1
                yield worker.run_job(job)
        finally:
            self._active = False

    def _ensure_started(self) -> None:
        if self._processes is not None:
            return
        import multiprocessing

        context = multiprocessing.get_context()
        self._results = context.Queue()
        self._processes = []
        for worker_id in range(self.max_workers):
            inbox = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(worker_id, inbox, self._results, self.intern_bound),
                daemon=True,
                name=f"repro-scheduler-{worker_id}",
            )
            process.start()
            self._inboxes.append(inbox)
            self._processes.append(process)
            self._alive.append(True)
            self._shipped.append(OrderedDict())

    def _assign_worker(self, site_key: str, alive: list[int]) -> int:
        """Shard target of a site: its hash worker, or — when that
        worker has died — a stable remap onto the survivors."""
        crc = zlib.crc32(site_key.encode("utf-8"))
        target = crc % self.max_workers
        if self._alive[target]:
            return target
        return alive[crc % len(alive)]

    def _execute_pooled(
        self, jobs: list[_Job], payloads: dict[str, object], shared: dict | None
    ) -> Iterator[SiteOutcome]:
        import queue as queue_mod

        # Generator body: this is the authoritative re-entrancy check —
        # the one in _execute runs at call time, before iteration starts.
        if self._active:
            raise RuntimeError(
                "a batch is already streaming on this pool; exhaust or close "
                "its iterator before starting another"
            )
        self._active = True
        # Completion is tracked by job index, not by counting results: a
        # worker that crashes *after* flushing its last result may have
        # that chunk retried on a survivor, and index-keyed tracking
        # makes the duplicate a no-op instead of a double count.
        pending = {job.index for job in jobs}
        inflight = [0] * self.max_workers
        try:
            self._ensure_started()
            self._batch_seq += 1
            batch = self._batch_seq
            if self._shared_changed(shared):
                for worker_id, inbox in enumerate(self._inboxes):
                    if self._alive[worker_id]:
                        inbox.put(("shared", batch, shared))
            workers = self.max_workers
            alive = [w for w in range(workers) if self._alive[w]]
            if not alive:
                raise RuntimeError("all pool workers have died")
            chunksize = self.chunksize or max(
                1, -(-len(jobs) // (workers * _CHUNKS_PER_WORKER))
            )
            # Shard assignment: site-major, input order preserved per
            # worker; sites sharded to dead workers remap to survivors.
            per_worker: list[list[_Job]] = [[] for _ in range(workers)]
            for job in jobs:
                per_worker[self._assign_worker(job.site_key, alive)].append(job)
            backlog: list[deque[list[_Job]]] = [
                deque(
                    assigned[start : start + chunksize]
                    for start in range(0, len(assigned), chunksize)
                )
                for assigned in per_worker
            ]
            sent: list[deque[list[_Job]]] = [deque() for _ in range(workers)]
            for worker_id in range(workers):
                self._feed(worker_id, backlog, inflight, sent, payloads)
            while pending:
                try:
                    worker_id, result_batch, outcomes = self._results.get(
                        timeout=_RESULT_POLL_SECONDS
                    )
                except queue_mod.Empty:
                    failed = self._reap_dead_workers(
                        backlog, inflight, sent, payloads
                    )
                    for outcome in failed:
                        if outcome.index in pending:
                            pending.discard(outcome.index)
                            yield outcome
                    continue
                if result_batch != batch:
                    continue  # stale result of an abandoned stream
                inflight[worker_id] -= 1
                if sent[worker_id]:
                    sent[worker_id].popleft()
                self._feed(worker_id, backlog, inflight, sent, payloads)
                for outcome in outcomes:
                    if outcome.index in pending:  # retried chunks may dupe
                        pending.discard(outcome.index)
                        yield outcome
        finally:
            self._active = False
            if pending:
                self._drain(sum(inflight))

    def _feed(
        self,
        worker_id: int,
        backlog: list[deque[list[_Job]]],
        inflight: list[int],
        sent: list[deque[list[_Job]]],
        payloads: dict[str, object],
    ) -> None:
        if not self._alive[worker_id]:
            return
        while inflight[worker_id] < _DISPATCH_WINDOW:
            chunk = None
            if backlog[worker_id]:
                chunk = backlog[worker_id].popleft()
            elif self.work_stealing:
                victim = max(
                    (v for v in range(self.max_workers) if backlog[v]),
                    key=lambda v: len(backlog[v]),
                    default=None,
                )
                if victim is not None:
                    # Steal from the tail: the victim keeps the chunks
                    # whose sites it has already warmed up.
                    chunk = backlog[victim].pop()
                    self.stats.steals += 1
            if chunk is None:
                return
            self._send_chunk(worker_id, chunk, payloads)
            inflight[worker_id] += 1
            sent[worker_id].append(chunk)

    def _send_chunk(
        self, worker_id: int, chunk: list[_Job], payloads: dict[str, object]
    ) -> None:
        ledger = self._shipped[worker_id]
        for job in chunk:
            if job.site_key in ledger:
                ledger.move_to_end(job.site_key)
                job.payload = None
            else:
                job.payload = payloads[job.site_key]
                ledger[job.site_key] = True
                self.stats.shipments[job.site_key] += 1
                while len(ledger) > self.intern_bound:
                    ledger.popitem(last=False)
        self.stats.chunks += 1
        self._inboxes[worker_id].put(("jobs", self._batch_seq, chunk))

    def _reap_dead_workers(
        self,
        backlog: list[deque[list[_Job]]],
        inflight: list[int],
        sent: list[deque[list[_Job]]],
        payloads: dict[str, object],
    ) -> list[SiteOutcome]:  # pragma: no cover - exercised only on crashes
        """Requeue a crashed worker's jobs on survivors; fail only when
        nobody is left.

        Jobs are pure (learning / extraction, no side effects) and the
        reap only runs once the result queue has gone quiet, so chunks
        still unacknowledged in ``sent`` were never completed — they are
        retried, not failed.
        """
        failed: list[SiteOutcome] = []
        for worker_id, process in enumerate(self._processes):
            if not self._alive[worker_id] or process.is_alive():
                continue
            self._alive[worker_id] = False
            inflight[worker_id] = 0
            orphaned: deque[list[_Job]] = deque()
            while sent[worker_id]:
                orphaned.append(sent[worker_id].popleft())
            orphaned.extend(backlog[worker_id])
            backlog[worker_id] = deque()
            survivors = [v for v in range(self.max_workers) if self._alive[v]]
            if survivors:
                rotation = itertools.cycle(survivors)
                while orphaned:
                    backlog[next(rotation)].append(orphaned.popleft())
                for survivor in survivors:
                    self._feed(survivor, backlog, inflight, sent, payloads)
            else:
                while orphaned:
                    for job in orphaned.popleft():
                        failed.append(
                            SiteOutcome(
                                index=job.index,
                                site=job.name,
                                ok=False,
                                artifact=job.artifact,
                                error=(
                                    f"worker {worker_id} died (exit code "
                                    f"{process.exitcode}) and no worker "
                                    "survives to retry"
                                ),
                            )
                        )
        return failed

    def _drain(self, expected: int) -> None:
        """Discard results of an abandoned stream so the next batch
        starts from a clean queue."""
        import queue as queue_mod

        for _ in range(expected):
            try:
                self._results.get(timeout=_RESULT_POLL_SECONDS)
            except queue_mod.Empty:  # pragma: no cover - dead worker
                break


# -- module-level streaming helpers -----------------------------------------


def learn_stream(
    extractor: Extractor,
    sites: Sequence[SiteLike],
    labels: Sequence[Labels] | None = None,
    annotator: Annotator | None = None,
    pool: WorkerPool | None = None,
) -> Iterator[SiteOutcome]:
    """Stream learn outcomes as they complete.

    With ``pool=None`` an ephemeral inline (one-worker) pool is used and
    closed when the stream ends — handy for crawler-fed pipelines that
    want results site by site without managing a pool.
    """
    if pool is not None:
        yield from pool.iter_learn_outcomes(extractor, sites, labels, annotator)
        return
    with WorkerPool(max_workers=1) as owned:
        yield from owned.iter_learn_outcomes(extractor, sites, labels, annotator)


def apply_stream(
    artifacts: Sequence[WrapperArtifact],
    sites: Sequence[SiteLike],
    pool: WorkerPool | None = None,
) -> Iterator[SiteOutcome]:
    """Stream apply outcomes as they complete (see :func:`learn_stream`)."""
    if pool is not None:
        yield from pool.iter_apply_outcomes(artifacts, sites)
        return
    with WorkerPool(max_workers=1) as owned:
        yield from owned.iter_apply_outcomes(artifacts, sites)
