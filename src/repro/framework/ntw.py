"""The noise-tolerant wrapper framework (paper Sec. 3): generate and test.

Given noisy labels ``L`` and a well-behaved inductor ``phi``:

1. enumerate the wrapper space ``W(L)`` (TopDown when the inductor is
   feature-based, BottomUp otherwise — the choice is orthogonal to
   extraction quality, Sec. 7.2);
2. rank every candidate by ``log P(L|X) + log P(X)``;
3. return the top-ranked wrapper.

Very large label sets are deterministically subsampled before
enumeration (the wrapper space grows with distinct label contexts, not
label count, so a stride sample preserves the space in practice);
ranking always uses the *full* label set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import EvaluationEngine, resolve_engine
from repro.enumeration import (
    EnumerationResult,
    enumerate_bottom_up,
    enumerate_top_down,
)
from repro.ranking.scorer import RankedWrapper, WrapperScorer
from repro.site import Site
from repro.wrappers.base import FeatureBasedInductor, Labels, WrapperInductor

#: Default cap on the number of labels fed to enumeration.
MAX_ENUMERATION_LABELS = 40


@dataclass(slots=True)
class NTWResult:
    """Outcome of noise-tolerant wrapper learning on one site."""

    best: RankedWrapper | None
    ranked: list[RankedWrapper]
    enumeration: EnumerationResult | None
    labels: Labels

    @property
    def extracted(self) -> Labels:
        """The extraction of the selected wrapper (empty if none)."""
        return self.best.extracted if self.best is not None else frozenset()


def subsample_labels(labels: Labels, max_labels: int) -> Labels:
    """Deterministic stride subsample of a label set (document order).

    ``max_labels`` must be positive; enumeration needs at least one
    label and a zero/negative cap would otherwise divide by zero.
    """
    if max_labels <= 0:
        raise ValueError(
            f"max_labels must be a positive integer; got {max_labels}"
        )
    if len(labels) <= max_labels:
        return labels
    ordered = sorted(labels)
    stride = len(ordered) / max_labels
    return frozenset(ordered[int(i * stride)] for i in range(max_labels))


class NoiseTolerantWrapper:
    """Enumerate-and-rank wrapper learning from noisy labels.

    One :class:`~repro.engine.EvaluationEngine` is threaded through the
    whole run — BottomUp closure evaluation, the candidate-set batch and
    ranking all hit the same site caches — so no rule is ever evaluated
    twice on a site.  Pass ``engine`` to share caches across stages (the
    :class:`~repro.api.extractor.Extractor` facade shares its engine
    across every site of a batch job); the process default is used
    otherwise.
    """

    def __init__(
        self,
        inductor: WrapperInductor,
        scorer: WrapperScorer,
        enumerator: str = "auto",
        max_labels: int = MAX_ENUMERATION_LABELS,
        engine: EvaluationEngine | None = None,
    ) -> None:
        if enumerator not in ("auto", "top_down", "bottom_up"):
            raise ValueError(f"unknown enumerator {enumerator!r}")
        if enumerator == "auto":
            enumerator = (
                "top_down"
                if isinstance(inductor, FeatureBasedInductor)
                else "bottom_up"
            )
        if enumerator == "top_down" and not isinstance(
            inductor, FeatureBasedInductor
        ):
            raise TypeError("top_down enumeration needs a feature-based inductor")
        if max_labels <= 0:
            raise ValueError(
                f"max_labels must be a positive integer; got {max_labels}"
            )
        self.inductor = inductor
        self.scorer = scorer
        self.enumerator = enumerator
        self.max_labels = max_labels
        self.engine = resolve_engine(engine)

    def learn(self, site: Site, labels: Labels) -> NTWResult:
        """Learn the best wrapper for ``site`` from noisy ``labels``."""
        if not labels:
            return NTWResult(best=None, ranked=[], enumeration=None, labels=labels)
        enumeration_labels = subsample_labels(labels, self.max_labels)
        if self.enumerator == "top_down":
            # TopDown never evaluates wrappers itself; the candidate
            # set is materialized in one engine batch by rank() below.
            enumeration = enumerate_top_down(
                self.inductor, site, enumeration_labels
            )
        else:
            enumeration = enumerate_bottom_up(
                self.inductor, site, enumeration_labels, engine=self.engine
            )
        ranked = self.scorer.rank(
            site, enumeration.wrappers, labels, engine=self.engine
        )
        best = ranked[0] if ranked else None
        return NTWResult(
            best=best, ranked=ranked, enumeration=enumeration, labels=labels
        )
