"""Single-entity extraction (paper Appendix B.2).

When each page holds exactly one entity of interest, the list prior
``P(X)`` is inapplicable, but the problem is easier: enumerate the
wrapper space, discard wrappers that extract more than one node from any
page, and pick the wrapper covering the most annotations (equivalently,
maximising ``P(L|X)``).  A wrapper trained on a subset containing errors
over-generalizes, matches several nodes on some page, and is discarded —
which is why the method is very noise-tolerant.

Several wrappers can tie at the top (pages often carry the entity in
multiple consistent locations: ``<title>``, heading, breadcrumb); all
co-winners are returned, as the paper reports observing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.enumeration import enumerate_bottom_up, enumerate_top_down
from repro.framework.ntw import subsample_labels
from repro.site import Site
from repro.wrappers.base import FeatureBasedInductor, Labels, Wrapper, WrapperInductor


def extracts_single_entity(site: Site, extracted: Labels) -> bool:
    """At most one node per page, at least one node somewhere."""
    if not extracted:
        return False
    pages_seen: set[int] = set()
    for node_id in extracted:
        if node_id.page in pages_seen:
            return False
        pages_seen.add(node_id.page)
    return True


@dataclass(slots=True)
class SingleEntityResult:
    """Outcome of single-entity learning on one site."""

    winners: list[Wrapper] = field(default_factory=list)
    coverage: int = 0
    considered: int = 0

    @property
    def best(self) -> Wrapper | None:
        return self.winners[0] if self.winners else None

    def extracted(self, site: Site) -> Labels:
        if not self.winners:
            return frozenset()
        return self.winners[0].extract(site)


class SingleEntityLearner:
    """Enumerate, filter to one-per-page wrappers, maximise label coverage."""

    def __init__(
        self, inductor: WrapperInductor, max_labels: int = 40
    ) -> None:
        self.inductor = inductor
        self.max_labels = max_labels

    def learn(self, site: Site, labels: Labels) -> SingleEntityResult:
        if not labels:
            return SingleEntityResult()
        enumeration_labels = subsample_labels(labels, self.max_labels)
        if isinstance(self.inductor, FeatureBasedInductor):
            enumeration = enumerate_top_down(
                self.inductor, site, enumeration_labels
            )
        else:
            enumeration = enumerate_bottom_up(
                self.inductor, site, enumeration_labels
            )
        best_coverage = 0
        winners: list[Wrapper] = []
        for wrapper in enumeration.wrappers:
            extracted = wrapper.extract(site)
            if not extracts_single_entity(site, extracted):
                continue
            coverage = len(extracted & labels)
            if coverage > best_coverage:
                best_coverage = coverage
                winners = [wrapper]
            elif coverage == best_coverage and coverage > 0:
                winners.append(wrapper)
        winners.sort(key=lambda w: w.rule())
        return SingleEntityResult(
            winners=winners,
            coverage=best_coverage,
            considered=enumeration.size,
        )
