"""End-to-end extraction pipelines.

- :class:`NoiseTolerantWrapper` — the paper's NTW framework: enumerate
  the wrapper space of the noisy labels, rank by
  ``P(L|X) * P(X)``, return the best wrapper (Sec. 3).
- :class:`NaiveWrapperLearner` — the NAIVE baseline: run the inductor
  directly on all noisy labels (Sec. 7.2).
- :mod:`repro.framework.multitype` — record extraction over several
  types jointly (Appendix A).
- :mod:`repro.framework.single_entity` — one entity per page
  (Appendix B.2).
"""

from repro.framework.naive import NaiveWrapperLearner
from repro.framework.ntw import NoiseTolerantWrapper, NTWResult
from repro.framework.multitype import (
    MultiTypeNTW,
    MultiTypeWrapper,
    NaiveMultiType,
    assemble_records,
)
from repro.framework.single_entity import SingleEntityLearner, SingleEntityResult

__all__ = [
    "MultiTypeNTW",
    "MultiTypeWrapper",
    "NTWResult",
    "NaiveMultiType",
    "NaiveWrapperLearner",
    "NoiseTolerantWrapper",
    "SingleEntityLearner",
    "SingleEntityResult",
    "assemble_records",
]
