"""Multi-type record extraction (paper Appendix A).

A multi-type wrapper holds one per-type rule and *assembles records* by
interleaving the per-type extractions in document order.  Assembly on a
page succeeds when the typed node sequence forms consistent records —
every group opened by a primary-type node contains at most one node of
each secondary type, and no secondary node precedes the first primary.
A page that cannot be assembled produces no records (the inductor
contract of Appendix A), which is why NAIVE collapses: an over-general
rule for either type floods the sequence and breaks assembly on every
page.

Noise tolerance extends the single-type machinery directly: the wrapper
spaces of the types are enumerated independently (the type is just
passed through to the inductor), candidates are formed as combinations,
and ranking multiplies the per-type annotation terms and computes
``P(X)`` on record segments bounded by the primary type with typed
tokens enforcing the joint alignment constraint.

Candidate evaluation is batched *across types*: every type's candidate
set goes through one :meth:`~repro.engine.EvaluationEngine.batch_extract`
pass per site before the combination loop, so posting-trie prefixes
shared between the types' rule families (which overlap heavily — both
describe paths into the same templates) are intersected once instead of
once per type, and the combination loop is pure dictionary lookups.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.engine import EvaluationEngine, resolve_engine
from repro.enumeration import enumerate_top_down
from repro.htmldom.dom import NodeId
from repro.ranking.annotation import AnnotationModel
from repro.ranking.publication import PublicationModel, list_features
from repro.site import Site
from repro.wrappers.base import FeatureBasedInductor, Labels, Wrapper

#: Cap on the number of per-type candidates combined during ranking.
MAX_CANDIDATES_PER_TYPE = 24


@dataclass(frozen=True, slots=True)
class Record:
    """One assembled record: node ids by type (missing fields absent)."""

    fields: tuple[tuple[str, NodeId], ...]

    def get(self, type_name: str) -> NodeId | None:
        for name, node_id in self.fields:
            if name == type_name:
                return node_id
        return None


def assemble_records(
    extractions: dict[str, Labels], primary: str, site: Site
) -> list[Record] | None:
    """Assemble typed extractions into records, page by page.

    Returns ``None`` when assembly fails on any page that has extracted
    nodes (the whole wrapper is then considered record-invalid); pages
    with no extracted nodes are skipped.
    """
    records: list[Record] = []
    by_page: dict[int, list[tuple[NodeId, str]]] = {}
    for type_name, nodes in extractions.items():
        for node_id in nodes:
            by_page.setdefault(node_id.page, []).append((node_id, type_name))
    for page_index in sorted(by_page):
        sequence = sorted(by_page[page_index], key=lambda item: item[0].preorder)
        page_records = _assemble_page(sequence, primary)
        if page_records is None:
            return None
        records.extend(page_records)
    return records


def _assemble_page(
    sequence: list[tuple[NodeId, str]], primary: str
) -> list[Record] | None:
    """Assemble one page's typed node sequence; None on inconsistency."""
    records: list[Record] = []
    current: list[tuple[str, NodeId]] | None = None
    seen_types: set[str] = set()
    for node_id, type_name in sequence:
        if type_name == primary:
            if current is not None:
                records.append(Record(fields=tuple(current)))
            current = [(type_name, node_id)]
            seen_types = {type_name}
        else:
            if current is None:
                return None  # secondary field before any primary
            if type_name in seen_types:
                return None  # two values of one type in one record
            seen_types.add(type_name)
            current.append((type_name, node_id))
    if current is not None:
        records.append(Record(fields=tuple(current)))
    return records


@dataclass(frozen=True, slots=True)
class MultiTypeWrapper:
    """Per-type rules plus the primary (record-boundary) type."""

    rules: tuple[tuple[str, Wrapper], ...]
    primary: str

    def extractions(self, site: Site) -> dict[str, Labels]:
        return {name: wrapper.extract(site) for name, wrapper in self.rules}

    def extract_records(self, site: Site) -> list[Record]:
        """Assembled records; empty when assembly fails (App. A contract)."""
        records = assemble_records(self.extractions(site), self.primary, site)
        return records if records is not None else []

    def rule(self) -> str:
        parts = ", ".join(f"{name}: {w.rule()}" for name, w in self.rules)
        return f"Multi({parts})"


class NaiveMultiType:
    """NAIVE baseline for records: induce each type on all its labels."""

    def __init__(self, inductor: FeatureBasedInductor, primary: str) -> None:
        self.inductor = inductor
        self.primary = primary

    def learn(
        self, site: Site, labels_by_type: dict[str, Labels]
    ) -> MultiTypeWrapper | None:
        rules = []
        for type_name, labels in sorted(labels_by_type.items()):
            if not labels:
                return None
            rules.append((type_name, self.inductor.induce(site, labels)))
        return MultiTypeWrapper(rules=tuple(rules), primary=self.primary)


@dataclass(slots=True)
class MultiTypeResult:
    """Outcome of noise-tolerant multi-type learning."""

    best: MultiTypeWrapper | None
    best_score: float
    records: list[Record] = field(default_factory=list)
    extractions: dict[str, Labels] = field(default_factory=dict)


class MultiTypeNTW:
    """Noise-tolerant record extraction (Appendix A.1)."""

    def __init__(
        self,
        inductor: FeatureBasedInductor,
        annotation_models: dict[str, AnnotationModel],
        publication_model: PublicationModel | None,
        primary: str,
        max_labels: int = 40,
        engine: EvaluationEngine | None = None,
    ) -> None:
        self.inductor = inductor
        self.annotation_models = annotation_models
        self.publication_model = publication_model
        self.primary = primary
        self.max_labels = max_labels
        self.engine = resolve_engine(engine)

    def learn(
        self, site: Site, labels_by_type: dict[str, Labels]
    ) -> MultiTypeResult:
        """Enumerate per-type spaces, rank combinations jointly."""
        from repro.framework.ntw import subsample_labels

        spaces: dict[str, list[Wrapper]] = {}
        for type_name, labels in sorted(labels_by_type.items()):
            if not labels:
                return MultiTypeResult(best=None, best_score=float("-inf"))
            enumeration = enumerate_top_down(
                self.inductor, site, subsample_labels(labels, self.max_labels)
            )
            candidates = enumeration.wrappers[:MAX_CANDIDATES_PER_TYPE]
            spaces[type_name] = candidates

        type_names = sorted(spaces)
        if any(not candidates for candidates in spaces.values()):
            # No combination can form; skip the candidate evaluation pass.
            return MultiTypeResult(best=None, best_score=float("-inf"))
        best: MultiTypeWrapper | None = None
        best_score = float("-inf")
        best_extractions: dict[str, Labels] = {}
        # One engine pass over every type's candidate set: cross-type
        # batching shares posting-trie prefixes between the types' rule
        # families, and the combination loop below never extracts.
        flat = [
            (type_name, wrapper)
            for type_name in type_names
            for wrapper in spaces[type_name]
        ]
        extracted_list = self.engine.batch_extract(
            site, [wrapper for _, wrapper in flat]
        )
        extraction_cache: dict[tuple[str, Wrapper], Labels] = {
            key: extracted for key, extracted in zip(flat, extracted_list)
        }

        for combo in itertools.product(*(spaces[t] for t in type_names)):
            extractions: dict[str, Labels] = {
                type_name: extraction_cache[(type_name, wrapper)]
                for type_name, wrapper in zip(type_names, combo)
            }
            score = self._score(site, labels_by_type, extractions)
            if score > best_score:
                best_score = score
                best = MultiTypeWrapper(
                    rules=tuple(zip(type_names, combo)), primary=self.primary
                )
                best_extractions = extractions
        records: list[Record] = []
        if best is not None:
            assembled = assemble_records(best_extractions, self.primary, site)
            records = assembled if assembled is not None else []
        return MultiTypeResult(
            best=best,
            best_score=best_score,
            records=records,
            extractions=best_extractions,
        )

    def _score(
        self,
        site: Site,
        labels_by_type: dict[str, Labels],
        extractions: dict[str, Labels],
    ) -> float:
        """Joint score: per-type Eq. 4 terms plus the typed-list prior."""
        score = 0.0
        for type_name, extracted in extractions.items():
            model = self.annotation_models[type_name]
            score += model.log_likelihood(labels_by_type[type_name], extracted)
        if self.publication_model is not None:
            type_map = {
                node_id: type_name
                for type_name, nodes in extractions.items()
                for node_id in nodes
            }
            features = list_features(
                site,
                frozenset(type_map),
                type_map=type_map,
                boundary_type=self.primary,
            )
            score += self.publication_model.log_prob_features(features)
        return score
