"""The NAIVE baseline (paper Sec. 7.2).

Runs the wrapper inductor directly on the full set of noisy annotations.
A well-behaved inductor must generalize to cover *every* label, so a
single bad annotation forces over-generalization — the failure mode that
motivates the whole framework (Sec. 1's ``//div/tr/td//text()`` example).
"""

from __future__ import annotations

from repro.site import Site
from repro.wrappers.base import Labels, Wrapper, WrapperInductor


class NaiveWrapperLearner:
    """Induce one wrapper from all labels, no noise handling."""

    def __init__(self, inductor: WrapperInductor) -> None:
        self.inductor = inductor

    def learn(self, site: Site, labels: Labels) -> Wrapper | None:
        """The inductor's wrapper for all of ``labels`` (None if empty)."""
        if not labels:
            return None
        return self.inductor.induce(site, labels)

    def extract(self, site: Site, labels: Labels) -> Labels:
        wrapper = self.learn(site, labels)
        if wrapper is None:
            return frozenset()
        return wrapper.extract(site)
