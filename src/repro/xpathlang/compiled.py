"""Compiled, index-aware evaluation of the xpath fragment.

:func:`repro.xpathlang.evaluator.evaluate` interprets a path by walking
the tree: every ``//`` step re-visits the whole subtree of each context
node.  :class:`CompiledPath` evaluates the same fragment against the
frozen per-page indexes a :class:`~repro.htmldom.dom.Document` builds at
freeze time — per-tag element lists with subtree range queries (bisect
over pre-order indexes), ``(parent, tag)`` child groups, and the
attribute-value index — and memoizes results per ``(path, page)``.

The memo lives on the *document* (``Document.xpath_memo``), keyed by
the location path: a stable value key, where the previous id-keyed
global table tied hits to transient ``CompiledPath`` and document
identities.  A warm worker that keeps a site's documents interned
therefore serves re-applied artifacts from the memo even when the
artifact recompiles its rule into a fresh ``CompiledPath``; and when a
site dies, its memos die with it instead of pinning dead pages in a
process-wide table.

The interpreter stays untouched as the reference oracle: for every path
in the fragment the compiled evaluator returns node-for-node identical
results (the equivalence test suite enforces this on generated pages).

Semantics notes mirrored from the interpreter:

- positional predicates select *within each parent group* under ``//``;
- predicates apply in order, so a positional predicate re-ranks the
  list filtered so far;
- the first step may select the root element itself (``/html`` or
  ``//div`` via descendant-or-self);
- a trailing ``text()`` selects text-node children of the final
  element set, and results come back in document order, deduplicated.
"""

from __future__ import annotations

from repro.htmldom.dom import Document, ElementNode, Node, TextNode
from repro.xpathlang.ast import (
    AttributePredicate,
    Axis,
    LocationPath,
    PositionPredicate,
    Step,
)
from repro.xpathlang.evaluator import _apply_predicates
from repro.xpathlang.parser import parse_xpath

#: Bound on one page's path memos and on the compiled-path cache; caches
#: are cleared wholesale when they outgrow it (same policy as the site
#: caches in :mod:`repro.engine`).
_CACHE_LIMIT = 256


class CompiledPath:
    """A location path compiled for index-backed evaluation.

    Instances are cheap, immutable and safe to share; obtain them
    through :func:`compile_xpath`, which deduplicates by path.  Results
    are memoized on each page under the location path itself, so
    re-applying a rule across a site's pages does the work once per
    page — whichever ``CompiledPath`` instance carries the rule.
    """

    __slots__ = ("path", "_steps", "_positional")

    def __init__(self, path: LocationPath) -> None:
        self.path = path
        self._steps: tuple[Step, ...] = path.steps
        # Steps with no positional predicate can ignore parent grouping:
        # attribute filters are order-independent, which unlocks the
        # flat per-tag / per-attribute indexes.
        self._positional: tuple[bool, ...] = tuple(
            any(isinstance(p, PositionPredicate) for p in step.predicates)
            for step in self._steps
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledPath({str(self.path)!r})"

    def evaluate(self, document: Document) -> list[Node]:
        """Evaluate against ``document``; matched nodes in document order."""
        return list(self.evaluate_cached(document))

    def evaluate_cached(self, document: Document) -> tuple[Node, ...]:
        """Memoized evaluation — the shared tuple, do not mutate."""
        memo = document.xpath_memo
        hit = memo.get(self.path)
        if hit is not None:
            return hit
        result = tuple(self._evaluate(document))
        if len(memo) >= _CACHE_LIMIT:
            memo.clear()
        memo[self.path] = result
        return result

    # -- evaluation ---------------------------------------------------------

    def _evaluate(self, document: Document) -> list[Node]:
        context = self._first_step(document)
        for index in range(1, len(self._steps)):
            if not context:
                break
            step = self._steps[index]
            if step.axis is Axis.CHILD:
                context = self._child_step(document, context, index)
            else:
                context = self._descendant_step(document, context, index)
        if self.path.selects_text:
            found: list[Node] = []
            for element in context:
                found.extend(
                    c for c in element.children if isinstance(c, TextNode)
                )
            return _ordered(found)
        return _ordered(context)

    def _first_step(self, document: Document) -> list[ElementNode]:
        """The first step may select the root itself (descendant-or-self)."""
        step = self._steps[0]
        root = document.root
        root_group = [root] if step.test in ("*", root.tag) else []
        matched = _apply_predicates(root_group, step.predicates)
        if step.axis is Axis.DESCENDANT:
            matched = matched + self._descendant_step(document, [root], 0)
        return _ordered_elements(matched)

    def _child_step(
        self, document: Document, context: list[ElementNode], index: int
    ) -> list[ElementNode]:
        step = self._steps[index]
        results: list[ElementNode] = []
        seen: set[int] = set()
        for node in context:
            group = document.child_elements_with_tag(node, step.test)
            if not group:
                continue
            for matched in _apply_predicates(group, step.predicates):
                if id(matched) not in seen:
                    seen.add(id(matched))
                    results.append(matched)
        return results

    def _descendant_step(
        self, document: Document, context: list[ElementNode], index: int
    ) -> list[ElementNode]:
        step = self._steps[index]
        if not self._positional[index]:
            return self._descendant_flat(document, context, step)
        return self._descendant_grouped(document, context, step)

    def _descendant_flat(
        self, document: Document, context: list[ElementNode], step: Step
    ) -> list[ElementNode]:
        """``//`` step without positional predicates: parent grouping is
        irrelevant, so filter flat index slices (document order)."""
        attr_predicates = step.predicates
        results: list[ElementNode] = []
        seen: set[int] = set()
        for node in context:
            candidates = self._flat_candidates(document, node, step)
            for matched in candidates:
                key = id(matched)
                if key in seen:
                    continue
                attrs = matched.attrs
                for predicate in attr_predicates:
                    if attrs.get(predicate.name) != predicate.value:
                        break
                else:
                    seen.add(key)
                    results.append(matched)
        return results

    @staticmethod
    def _flat_candidates(
        document: Document, node: ElementNode, step: Step
    ) -> list[ElementNode]:
        """Smallest index slice covering the step's descendants of ``node``.

        With attribute predicates present, the attribute-value index may
        be far more selective than the tag index; start from whichever
        posting list is shorter and let the remaining tests filter.
        """
        by_tag = document.descendant_elements(node, step.test)
        best = by_tag
        for predicate in step.predicates:
            assert isinstance(predicate, AttributePredicate)
            by_attr = document.descendant_elements_with_attr(
                node, predicate.name, predicate.value
            )
            if len(by_attr) < len(best):
                best = by_attr
        if best is not by_tag and step.test != "*":
            test = step.test
            best = [element for element in best if element.tag == test]
        return best

    def _descendant_grouped(
        self, document: Document, context: list[ElementNode], step: Step
    ) -> list[ElementNode]:
        """``//`` step with positional predicates: positions count within
        each parent group, so matched descendants are regrouped by parent
        (slices are in document order, hence groups keep sibling order)."""
        results: list[ElementNode] = []
        seen: set[int] = set()
        for node in context:
            matched = document.descendant_elements(node, step.test)
            if not matched:
                continue
            groups: dict[int, list[ElementNode]] = {}
            order: list[int] = []
            for element in matched:
                parent_key = id(element.parent)
                group = groups.get(parent_key)
                if group is None:
                    groups[parent_key] = [element]
                    order.append(parent_key)
                else:
                    group.append(element)
            for parent_key in order:
                for chosen in _apply_predicates(
                    groups[parent_key], step.predicates
                ):
                    if id(chosen) not in seen:
                        seen.add(id(chosen))
                        results.append(chosen)
        return results


def _ordered(nodes: list[Node]) -> list[Node]:
    """Document order, deduplicated (final result contract)."""
    unique: dict[int, Node] = {}
    for node in nodes:
        unique.setdefault(id(node), node)
    return sorted(unique.values(), key=lambda n: n.node_id.preorder)


def _ordered_elements(nodes: list[ElementNode]) -> list[ElementNode]:
    unique: dict[int, ElementNode] = {}
    for node in nodes:
        unique.setdefault(id(node), node)
    return sorted(unique.values(), key=lambda n: n.node_id.preorder)


_COMPILED: dict[LocationPath, CompiledPath] = {}


def compile_xpath(path: LocationPath | str) -> CompiledPath:
    """Compile ``path`` (parsing strings), deduplicated by location path."""
    if isinstance(path, str):
        path = parse_xpath(path)
    compiled = _COMPILED.get(path)
    if compiled is None:
        if len(_COMPILED) >= _CACHE_LIMIT:
            _COMPILED.clear()
        compiled = CompiledPath(path)
        _COMPILED[path] = compiled
    return compiled


def evaluate_compiled(path: LocationPath | str, document: Document) -> list[Node]:
    """Drop-in, index-backed equivalent of :func:`repro.xpathlang.evaluate`."""
    return compile_xpath(path).evaluate(document)
