"""Recursive-descent parser for the xpath fragment.

Accepted grammar (whitespace-insensitive between tokens)::

    path       := step-list ( "/text()" )?
    step-list  := ( "/" | "//" ) step ( ( "/" | "//" ) step )*
    step       := nametest predicate*
    nametest   := NAME | "*"
    predicate  := "[" INTEGER "]"
                | "[@" NAME "=" ( "'" chars "'" | '"' chars '"' ) "]"

Examples: ``//div[@class='dealerlinks']/tr/td/u/text()``,
``//table[1]/tr/td[2]/text()``, ``//*``.
"""

from __future__ import annotations

from repro.xpathlang.ast import (
    AttributePredicate,
    Axis,
    LocationPath,
    PositionPredicate,
    Predicate,
    Step,
)

_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_:."
)


class XPathSyntaxError(ValueError):
    """Raised when the input is not a valid path in the fragment."""


class _Cursor:
    """Tiny scanning helper with single-token lookahead over a string."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def take(self, expected: str) -> None:
        if not self.text.startswith(expected, self.pos):
            raise XPathSyntaxError(
                f"expected {expected!r} at position {self.pos} in {self.text!r}"
            )
        self.pos += len(expected)

    def take_name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        if self.pos == start:
            raise XPathSyntaxError(
                f"expected a name at position {start} in {self.text!r}"
            )
        return self.text[start : self.pos]

    def take_integer(self) -> int:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        if self.pos == start:
            raise XPathSyntaxError(
                f"expected an integer at position {start} in {self.text!r}"
            )
        return int(self.text[start : self.pos])

    def take_quoted(self) -> str:
        quote = self.peek()
        if quote not in "'\"":
            raise XPathSyntaxError(
                f"expected a quoted string at position {self.pos} in {self.text!r}"
            )
        self.pos += 1
        start = self.pos
        out: list[str] = []
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == "\\" and self.peek(2) in ("\\'", '\\"'):
                out.append(self.text[self.pos + 1])
                self.pos += 2
                continue
            if ch == quote:
                self.pos += 1
                return "".join(out)
            out.append(ch)
            self.pos += 1
        raise XPathSyntaxError(f"unterminated string starting at {start} in {self.text!r}")


def parse_xpath(text: str) -> LocationPath:
    """Parse ``text`` into a :class:`LocationPath`.

    Raises:
        XPathSyntaxError: if the input is not in the supported fragment.
    """
    cursor = _Cursor(text.strip())
    steps: list[Step] = []
    selects_text = False
    if cursor.eof():
        raise XPathSyntaxError("empty xpath")
    while not cursor.eof():
        axis = _parse_axis(cursor)
        if cursor.peek(6) == "text()":
            cursor.take("text()")
            if axis is not Axis.CHILD or not steps:
                raise XPathSyntaxError("text() must be a trailing /text() step")
            selects_text = True
            break
        steps.append(_parse_step(cursor, axis))
    if not cursor.eof():
        raise XPathSyntaxError(
            f"trailing characters at position {cursor.pos} in {text!r}"
        )
    if not steps:
        raise XPathSyntaxError("xpath has no steps")
    return LocationPath(steps=tuple(steps), selects_text=selects_text)


def _parse_axis(cursor: _Cursor) -> Axis:
    if cursor.peek(2) == "//":
        cursor.take("//")
        return Axis.DESCENDANT
    cursor.take("/")
    return Axis.CHILD


def _parse_step(cursor: _Cursor, axis: Axis) -> Step:
    if cursor.peek() == "*":
        cursor.take("*")
        test = "*"
    else:
        test = cursor.take_name().lower()
    predicates: list[Predicate] = []
    while cursor.peek() == "[":
        predicates.append(_parse_predicate(cursor))
    return Step(axis=axis, test=test, predicates=tuple(predicates))


def _parse_predicate(cursor: _Cursor) -> Predicate:
    cursor.take("[")
    if cursor.peek() == "@":
        cursor.take("@")
        name = cursor.take_name().lower()
        cursor.take("=")
        value = cursor.take_quoted()
        cursor.take("]")
        return AttributePredicate(name=name, value=value)
    position = cursor.take_integer()
    cursor.take("]")
    return PositionPredicate(position=position)
