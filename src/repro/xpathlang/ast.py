"""AST node types for the xpath fragment.

A :class:`LocationPath` is a sequence of :class:`Step` objects plus a flag
for a trailing ``text()`` step.  Each step has an axis (``child`` or
``descendant``), a name test (a tag name or ``*``), and a list of
predicates — positional (``[2]``) or attribute-equality (``[@a='v']``).

All AST types are immutable and hashable so wrappers built on them can be
deduplicated and used as dictionary keys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Axis(enum.Enum):
    CHILD = "/"
    DESCENDANT = "//"


@dataclass(frozen=True, slots=True)
class PositionPredicate:
    """``[n]`` — keep the n-th node (1-based) of the current candidate list
    within each parent group."""

    position: int

    def __str__(self) -> str:
        return f"[{self.position}]"


@dataclass(frozen=True, slots=True)
class AttributePredicate:
    """``[@name='value']`` — keep nodes whose attribute equals ``value``."""

    name: str
    value: str

    def __str__(self) -> str:
        escaped = self.value.replace("'", "\\'")
        return f"[@{self.name}='{escaped}']"


Predicate = PositionPredicate | AttributePredicate


@dataclass(frozen=True, slots=True)
class Step:
    """One location step: axis, name test, and predicates (applied in order)."""

    axis: Axis
    test: str  # tag name, or "*" for any element
    predicates: tuple[Predicate, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        return f"{self.axis.value}{self.test}" + "".join(str(p) for p in self.predicates)


@dataclass(frozen=True, slots=True)
class LocationPath:
    """An absolute location path, optionally ending in ``/text()``."""

    steps: tuple[Step, ...]
    selects_text: bool = False

    def __str__(self) -> str:
        body = "".join(str(s) for s in self.steps)
        if self.selects_text:
            return body + "/text()"
        return body
