"""Evaluator for the xpath fragment over :class:`repro.htmldom.Document`.

Semantics follow XPath 1.0 restricted to the fragment:

- a child step maps each context element to its matching element
  children;
- a descendant step (``//``) maps each context element to matching
  elements anywhere below it, with positional predicates evaluated
  *within each parent group* (the expansion of ``//td[2]`` via
  ``descendant-or-self::node()/child::td[2]``);
- predicates apply in order, and a positional predicate re-ranks the
  list filtered so far;
- a trailing ``text()`` step selects the text-node children of the final
  element set.

Results are returned in document order without duplicates.
"""

from __future__ import annotations

from repro.htmldom.dom import Document, ElementNode, Node, TextNode
from repro.xpathlang.ast import (
    AttributePredicate,
    Axis,
    LocationPath,
    PositionPredicate,
    Step,
)
from repro.xpathlang.parser import parse_xpath


def evaluate(path: LocationPath | str, document: Document) -> list[Node]:
    """Evaluate ``path`` against ``document``; return matched nodes in document order."""
    if isinstance(path, str):
        path = parse_xpath(path)
    context: list[ElementNode] = [document.root]
    for index, step in enumerate(path.steps):
        if index == 0:
            # The (implicit) document node sits above the root element, so
            # the first step can select the root element itself: "/html"
            # addresses it directly and "//div" may match it via
            # descendant-or-self.
            root_group = (
                [document.root]
                if step.test in ("*", document.root.tag)
                else []
            )
            matched = _apply_predicates(root_group, step.predicates)
            if step.axis is Axis.DESCENDANT:
                matched = matched + _apply_step(context, step)
            context = _document_order_elements(matched)
        else:
            context = _apply_step(context, step)
        if not context:
            break
    if path.selects_text:
        found: list[Node] = []
        for element in context:
            found.extend(c for c in element.children if isinstance(c, TextNode))
        return _document_order(found, document)
    return _document_order(list(context), document)


def _apply_step(context: list[ElementNode], step: Step) -> list[ElementNode]:
    """Apply one location step to the current context node list."""
    results: list[ElementNode] = []
    seen: set[int] = set()
    for node in context:
        if step.axis is Axis.DESCENDANT:
            groups = _descendant_groups(node, step.test)
        else:
            groups = [_select_children(node, step.test)]
        for group in groups:
            for matched in _apply_predicates(group, step.predicates):
                if id(matched) not in seen:
                    seen.add(id(matched))
                    results.append(matched)
    return results


def _select_children(parent: ElementNode, test: str) -> list[ElementNode]:
    return [
        c
        for c in parent.children
        if isinstance(c, ElementNode) and (test == "*" or c.tag == test)
    ]


def _descendant_groups(node: ElementNode, test: str) -> list[list[ElementNode]]:
    """Matching descendants of ``node``, grouped by parent (document order).

    Grouping by parent is what gives positional predicates their XPath
    meaning under the ``//`` axis.  ``node`` itself participates as a
    parent (descendant-or-self), but is never a result.
    """
    groups: list[list[ElementNode]] = []
    for element in node.iter_elements():
        group = _select_children(element, test)
        if group:
            groups.append(group)
    return groups


def _apply_predicates(group: list[ElementNode], predicates: tuple) -> list[ElementNode]:
    current = group
    for predicate in predicates:
        if isinstance(predicate, PositionPredicate):
            index = predicate.position - 1
            current = [current[index]] if 0 <= index < len(current) else []
        else:
            assert isinstance(predicate, AttributePredicate)
            current = [
                n for n in current if n.attrs.get(predicate.name) == predicate.value
            ]
    return current


def _document_order(nodes: list[Node], document: Document) -> list[Node]:
    """Sort ``nodes`` by pre-order index and drop duplicates."""
    unique: dict[int, Node] = {}
    for node in nodes:
        unique.setdefault(id(node), node)
    return sorted(unique.values(), key=lambda n: n.node_id.preorder)


def _document_order_elements(nodes: list[ElementNode]) -> list[ElementNode]:
    """Deduplicate elements, preserving document order by pre-order index."""
    unique: dict[int, ElementNode] = {}
    for node in nodes:
        unique.setdefault(id(node), node)
    return sorted(unique.values(), key=lambda n: n.node_id.preorder)
