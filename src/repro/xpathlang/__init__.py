"""XPath substrate: the fragment of xpath used by the XPATH wrapper family.

The paper (Sec. 5, following Dalvi et al., SIGMOD'09) uses a simple
fragment: child steps (``/``), descendant steps (``//``), the wildcard
name test (``*``), attribute filters (``[@class='x']``), child-number
filters (``td[2]``) and a trailing ``text()`` step.  This subpackage
provides a parser to an AST and two evaluators over
:class:`repro.htmldom.Document` trees: the tree-walking reference
interpreter (:func:`evaluate`) and the compiled, index-backed evaluator
(:func:`compile_xpath` / :class:`CompiledPath`) used by the evaluation
engine, which memoizes per ``(path, page)`` and is node-for-node
equivalent to the interpreter.
"""

from repro.xpathlang.ast import (
    AttributePredicate,
    LocationPath,
    PositionPredicate,
    Step,
)
from repro.xpathlang.compiled import CompiledPath, compile_xpath, evaluate_compiled
from repro.xpathlang.evaluator import evaluate
from repro.xpathlang.parser import XPathSyntaxError, parse_xpath

__all__ = [
    "AttributePredicate",
    "CompiledPath",
    "LocationPath",
    "PositionPredicate",
    "Step",
    "XPathSyntaxError",
    "compile_xpath",
    "evaluate",
    "evaluate_compiled",
    "parse_xpath",
]
