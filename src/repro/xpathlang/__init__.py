"""XPath substrate: the fragment of xpath used by the XPATH wrapper family.

The paper (Sec. 5, following Dalvi et al., SIGMOD'09) uses a simple
fragment: child steps (``/``), descendant steps (``//``), the wildcard
name test (``*``), attribute filters (``[@class='x']``), child-number
filters (``td[2]``) and a trailing ``text()`` step.  This subpackage
provides a parser to an AST and an evaluator over
:class:`repro.htmldom.Document` trees.
"""

from repro.xpathlang.ast import (
    AttributePredicate,
    LocationPath,
    PositionPredicate,
    Step,
)
from repro.xpathlang.evaluator import evaluate
from repro.xpathlang.parser import XPathSyntaxError, parse_xpath

__all__ = [
    "AttributePredicate",
    "LocationPath",
    "PositionPredicate",
    "Step",
    "XPathSyntaxError",
    "evaluate",
    "parse_xpath",
]
